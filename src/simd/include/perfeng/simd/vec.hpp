#pragma once

/// \file vec.hpp
/// The explicit vector layer: fixed-width `Vec<T, N>` with compile-time
/// backend dispatch.
///
/// The paper's lesson is that performance engineering exploits *all*
/// levels of the hardware; this is the level between the scalar core and
/// the memory hierarchy. Kernels write their inner loops against
/// `Vec<T, N>` (typically `VecD` = the widest native double vector) and
/// get the AVX2+FMA backend when the build compiled it in (`__AVX2__`,
/// see PERFENG_SIMD_NATIVE in the top-level CMakeLists.txt) or the
/// portable generic backend everywhere else — same semantics, tested
/// bit-identical lane-wise, so a kernel is written once and is correct on
/// both. Raw intrinsics are confined to the backend headers by
/// perfeng-lint's `simd-isolation` rule; everything else goes through
/// this surface. The runtime side (what the *host* supports, as opposed
/// to what the binary was compiled for) lives in caps.hpp and is recorded
/// into `pe::machine::Machine` calibrations.

#include <cstddef>

#include "perfeng/simd/backend_generic.hpp"

#if defined(__AVX2__)
#include "perfeng/simd/backend_avx2.hpp"
#endif

namespace pe::simd {

/// Lane counts of the preferred native vectors. With the AVX2 backend the
/// register is 256 bits; the generic backend mirrors the same widths so a
/// kernel's blocking (e.g. the 4x8 matmul register tile) is identical on
/// both and only codegen differs.
inline constexpr std::size_t kDoubleLanes = 4;
inline constexpr std::size_t kFloatLanes = 8;

/// The preferred double/float vectors kernels should use.
using VecD = Vec<double, kDoubleLanes>;
using VecF = Vec<float, kFloatLanes>;

/// Name of the backend this TU was compiled against.
[[nodiscard]] constexpr const char* compiled_backend_name() {
#if defined(__AVX2__)
  return "avx2";
#else
  return "generic";
#endif
}

/// Vector register width the binary was compiled for, in bits (256 for
/// the AVX2 backend, 0 for the generic fallback — "no hardware vectors
/// assumed").
[[nodiscard]] constexpr unsigned compiled_width_bits() {
#if defined(__AVX2__)
  return 256;
#else
  return 0;
#endif
}

/// True when `VecD::mul_add` rounds once (hardware FMA compiled in).
/// Callers that must match a scalar mul-then-add reference bit-for-bit
/// (the SpMV format zoo) avoid mul_add when they cannot afford the
/// different rounding; callers chasing the FLOP roof (matmul, triad)
/// embrace it and their tests build fma-aware references.
[[nodiscard]] constexpr bool fused_mul_add() { return VecD::kFusedMulAdd; }

}  // namespace pe::simd
