#pragma once

/// \file backend_generic.hpp
/// Portable lane backend for `pe::simd::Vec<T, N>`.
///
/// The primary template: an array of N lanes and plain scalar loops. It
/// compiles on every target and is the reference semantics for every
/// specialized backend — each operation is defined lane-wise in IEEE
/// arithmetic, `mul_add` is an *unfused* multiply-then-add (the repo builds
/// with -ffp-contract=off, so the compiler cannot silently fuse it), and
/// `hsum` reduces in a fixed binary tree. A hardware backend may only
/// deviate where the trait constants say so (`kFusedMulAdd`), which is what
/// lets the tests demand exact equality instead of tolerances.

#include <cstddef>

namespace pe::simd {

/// Fixed-width vector of N lanes of T. Specializations (see
/// backend_avx2.hpp) overlay hardware registers; this primary template is
/// the portable fallback with identical semantics.
template <typename T, std::size_t N>
struct Vec {
  static_assert(N >= 1 && (N & (N - 1)) == 0, "lane count must be a power "
                                              "of two");
  static constexpr std::size_t lanes = N;
  /// True when mul_add(a, b, c) rounds once (hardware FMA); the generic
  /// backend multiplies then adds, rounding twice.
  static constexpr bool kFusedMulAdd = false;

  T lane[N];

  /// All lanes zero.
  [[nodiscard]] static Vec zero() {
    Vec v;
    for (std::size_t i = 0; i < N; ++i) v.lane[i] = T(0);
    return v;
  }

  /// All lanes = s.
  [[nodiscard]] static Vec broadcast(T s) {
    Vec v;
    for (std::size_t i = 0; i < N; ++i) v.lane[i] = s;
    return v;
  }

  /// Load N contiguous elements (no alignment requirement).
  [[nodiscard]] static Vec load(const T* p) {
    Vec v;
    for (std::size_t i = 0; i < N; ++i) v.lane[i] = p[i];
    return v;
  }

  /// Store N contiguous elements (no alignment requirement).
  void store(T* p) const {
    for (std::size_t i = 0; i < N; ++i) p[i] = lane[i];
  }

  [[nodiscard]] T get(std::size_t i) const { return lane[i]; }

  [[nodiscard]] Vec operator+(const Vec& o) const {
    Vec v;
    for (std::size_t i = 0; i < N; ++i) v.lane[i] = lane[i] + o.lane[i];
    return v;
  }

  [[nodiscard]] Vec operator-(const Vec& o) const {
    Vec v;
    for (std::size_t i = 0; i < N; ++i) v.lane[i] = lane[i] - o.lane[i];
    return v;
  }

  [[nodiscard]] Vec operator*(const Vec& o) const {
    Vec v;
    for (std::size_t i = 0; i < N; ++i) v.lane[i] = lane[i] * o.lane[i];
    return v;
  }

  /// this*b + c, lane-wise. Unfused here (two roundings); the AVX2+FMA
  /// backend fuses (one rounding) and says so via kFusedMulAdd.
  [[nodiscard]] Vec mul_add(const Vec& b, const Vec& c) const {
    Vec v;
    for (std::size_t i = 0; i < N; ++i)
      v.lane[i] = lane[i] * b.lane[i] + c.lane[i];
    return v;
  }

  /// Horizontal sum in a fixed stride-halving tree — for N=4 that is
  /// (l0+l2) + (l1+l3) — the order every backend must reproduce so
  /// reductions are bit-stable across backends.
  [[nodiscard]] T hsum() const {
    T partial[N];
    for (std::size_t i = 0; i < N; ++i) partial[i] = lane[i];
    for (std::size_t width = N; width > 1; width /= 2)
      for (std::size_t i = 0; i < width / 2; ++i)
        partial[i] = partial[i] + partial[i + width / 2];
    return partial[0];
  }
};

}  // namespace pe::simd
