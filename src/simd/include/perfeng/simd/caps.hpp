#pragma once

/// \file caps.hpp
/// Runtime SIMD capability probe.
///
/// `compiled_backend_name()` (vec.hpp) answers "what did the *binary*
/// assume"; this header answers "what does the *host* support". The two
/// differ when a generic-backend binary lands on an AVX2 machine (or a
/// native binary is moved — which traps, hence the build runs a
/// check_cxx_source_runs probe before enabling -mavx2). The probe result
/// is recorded into `pe::machine::Machine` calibrations (the "simd" JSON
/// section) so the calibration hash pins down which vector hardware a
/// measurement was taken on.

#include <string>

namespace pe::simd {

/// What the executing CPU reports. All fields false / 0 on non-x86.
struct SimdCaps {
  bool sse2 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;

  /// Widest usable vector register in bits (0 if none detected).
  [[nodiscard]] unsigned width_bits() const {
    if (avx512f) return 512;
    if (avx2 || avx) return 256;
    if (sse2) return 128;
    return 0;
  }

  /// Human-readable one-liner, e.g. "avx2+fma (256-bit)".
  [[nodiscard]] std::string summary() const;
};

/// Probe the executing CPU (cached after the first call; cheap to call).
[[nodiscard]] SimdCaps runtime_simd_caps();

}  // namespace pe::simd
