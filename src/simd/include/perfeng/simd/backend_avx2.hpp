#pragma once

/// \file backend_avx2.hpp
/// AVX2(+FMA) backend: `Vec<double, 4>` and `Vec<float, 8>` over 256-bit
/// registers.
///
/// Only included by vec.hpp when the TU is compiled with `__AVX2__`
/// available (the build enables -mavx2 -mfma project-wide when the
/// compiler and host support it, keeping the backend choice consistent
/// across every TU — see PERFENG_SIMD_NATIVE in the top-level
/// CMakeLists.txt). This header and backend_generic.hpp are the *only*
/// places raw intrinsics may appear; perfeng-lint's `simd-isolation` rule
/// holds everything else to the `Vec<T, N>` surface.
///
/// Semantics contract (tested in tests/test_simd.cpp): every lane-wise
/// operation produces bit-identical results to the generic backend, and
/// `hsum` reduces in the same fixed binary tree. The one sanctioned
/// difference is `mul_add`, which fuses into a single rounding when FMA is
/// compiled in — advertised through `kFusedMulAdd` so callers that need
/// scalar-exact results (the SpMV format zoo) use mul-then-add instead.

#include <immintrin.h>

#include <cstddef>

#include "perfeng/simd/backend_generic.hpp"

namespace pe::simd {

#if defined(__FMA__)
inline constexpr bool kAvx2HasFma = true;
#else
inline constexpr bool kAvx2HasFma = false;
#endif

template <>
struct Vec<double, 4> {
  static constexpr std::size_t lanes = 4;
  static constexpr bool kFusedMulAdd = kAvx2HasFma;

  __m256d reg;

  [[nodiscard]] static Vec zero() { return {_mm256_setzero_pd()}; }
  [[nodiscard]] static Vec broadcast(double s) {
    return {_mm256_set1_pd(s)};
  }
  [[nodiscard]] static Vec load(const double* p) {
    return {_mm256_loadu_pd(p)};
  }
  void store(double* p) const { _mm256_storeu_pd(p, reg); }

  [[nodiscard]] double get(std::size_t i) const {
    double tmp[4];
    _mm256_storeu_pd(tmp, reg);
    return tmp[i];
  }

  [[nodiscard]] Vec operator+(const Vec& o) const {
    return {_mm256_add_pd(reg, o.reg)};
  }
  [[nodiscard]] Vec operator-(const Vec& o) const {
    return {_mm256_sub_pd(reg, o.reg)};
  }
  [[nodiscard]] Vec operator*(const Vec& o) const {
    return {_mm256_mul_pd(reg, o.reg)};
  }

  /// this*b + c; fused (one rounding) when FMA is compiled in.
  [[nodiscard]] Vec mul_add(const Vec& b, const Vec& c) const {
#if defined(__FMA__)
    return {_mm256_fmadd_pd(reg, b.reg, c.reg)};
#else
    return {_mm256_add_pd(_mm256_mul_pd(reg, b.reg), c.reg)};
#endif
  }

  /// Same fixed stride-halving tree as the generic backend:
  /// (l0+l2) + (l1+l3) — backends must agree bit-for-bit.
  [[nodiscard]] double hsum() const {
    const __m128d lo = _mm256_castpd256_pd128(reg);
    const __m128d hi = _mm256_extractf128_pd(reg, 1);
    const __m128d pair = _mm_add_pd(lo, hi);  // {l0+l2, l1+l3}
    const __m128d swap = _mm_unpackhi_pd(pair, pair);
    return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
  }
};

template <>
struct Vec<float, 8> {
  static constexpr std::size_t lanes = 8;
  static constexpr bool kFusedMulAdd = kAvx2HasFma;

  __m256 reg;

  [[nodiscard]] static Vec zero() { return {_mm256_setzero_ps()}; }
  [[nodiscard]] static Vec broadcast(float s) {
    return {_mm256_set1_ps(s)};
  }
  [[nodiscard]] static Vec load(const float* p) {
    return {_mm256_loadu_ps(p)};
  }
  void store(float* p) const { _mm256_storeu_ps(p, reg); }

  [[nodiscard]] float get(std::size_t i) const {
    float tmp[8];
    _mm256_storeu_ps(tmp, reg);
    return tmp[i];
  }

  [[nodiscard]] Vec operator+(const Vec& o) const {
    return {_mm256_add_ps(reg, o.reg)};
  }
  [[nodiscard]] Vec operator-(const Vec& o) const {
    return {_mm256_sub_ps(reg, o.reg)};
  }
  [[nodiscard]] Vec operator*(const Vec& o) const {
    return {_mm256_mul_ps(reg, o.reg)};
  }

  [[nodiscard]] Vec mul_add(const Vec& b, const Vec& c) const {
#if defined(__FMA__)
    return {_mm256_fmadd_ps(reg, b.reg, c.reg)};
#else
    return {_mm256_add_ps(_mm256_mul_ps(reg, b.reg), c.reg)};
#endif
  }

  [[nodiscard]] float hsum() const {
    float tmp[8];
    _mm256_storeu_ps(tmp, reg);
    // Same fixed binary tree as the generic backend.
    for (std::size_t width = 8; width > 1; width /= 2)
      for (std::size_t i = 0; i < width / 2; ++i)
        tmp[i] = tmp[i] + tmp[i + width / 2];
    return tmp[0];
  }
};

}  // namespace pe::simd
