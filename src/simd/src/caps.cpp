#include "perfeng/simd/caps.hpp"

namespace pe::simd {

std::string SimdCaps::summary() const {
  std::string s;
  if (avx512f) {
    s = "avx512f";
  } else if (avx2) {
    s = "avx2";
  } else if (avx) {
    s = "avx";
  } else if (sse2) {
    s = "sse2";
  } else {
    return "scalar (no SIMD detected)";
  }
  if (fma) s += "+fma";
  s += " (" + std::to_string(width_bits()) + "-bit)";
  return s;
}

namespace {

SimdCaps probe() {
  SimdCaps caps;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  caps.sse2 = __builtin_cpu_supports("sse2") != 0;
  caps.avx = __builtin_cpu_supports("avx") != 0;
  caps.avx2 = __builtin_cpu_supports("avx2") != 0;
  caps.fma = __builtin_cpu_supports("fma") != 0;
  caps.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return caps;
}

}  // namespace

SimdCaps runtime_simd_caps() {
  static const SimdCaps caps = probe();
  return caps;
}

}  // namespace pe::simd
