#pragma once

/// \file export.hpp
/// Trace exporters: collapsed flame-graph stacks and Chrome trace_event.
///
/// `write_collapsed` emits the folded-stack format every standard
/// flame-graph tool consumes (`flamegraph.pl`, speedscope, inferno):
/// semicolon-joined frames, a space, and a weight — here microseconds of
/// executed chunk (or parked) time. `write_chrome_trace` emits the Chrome
/// `trace_event` JSON timeline (load it in `chrome://tracing` or Perfetto):
/// one complete ("X") slice per executed chunk and park interval, instant
/// events for submits and steals, and thread-name metadata per lane.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "perfeng/observe/trace.hpp"

namespace pe::observe {

/// Folded stacks with weights — the flame-graph interchange structure.
using FoldedStacks = std::map<std::string, std::uint64_t>;

/// Collapse a captured trace into duration-weighted folded stacks:
/// `pool;lane <L>;<frame>` where the leaf frame is the loop's provenance
/// site (`parallel_for@file:line`), `task` for submit-path jobs, or
/// `idle.park` for parked time. Weights are microseconds (minimum 1).
[[nodiscard]] FoldedStacks collapse(const Trace& trace);

/// Write folded stacks in collapsed format, one stack per line.
void write_collapsed(std::ostream& out, const FoldedStacks& stacks);
void write_collapsed(std::ostream& out, const Trace& trace);

/// Write the Chrome trace_event JSON timeline of a captured trace.
void write_chrome_trace(std::ostream& out, const Trace& trace);

/// Render the provenance frame of one record (`parallel_for@file:line`).
[[nodiscard]] std::string provenance_frame(const char* file,
                                           std::uint32_t line);

}  // namespace pe::observe
