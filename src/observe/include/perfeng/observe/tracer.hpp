#pragma once

/// \file tracer.hpp
/// The always-on scheduler tracer: a TraceHook backed by per-lane rings.
///
/// Install a `Tracer` (via `ScopedTrace`), run the parallel code under
/// observation, uninstall, then `take()` the captured `Trace`. Emission is
/// wait-free — one claim `fetch_add` plus one release store into the
/// emitting lane's private ring — so tracing stays on during measurement
/// runs; the disabled path (no hook installed) is one relaxed atomic load
/// and a branch at each site (measure it with `bench/scheduler_trace
/// --check`).
///
/// The tracer also maintains a per-lane *current activity* slot (the chunk
/// and provenance site a lane is executing right now), which is what the
/// `SamplingProfiler` snapshots to build flame graphs without touching the
/// event stream.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "perfeng/common/trace_hook.hpp"
#include "perfeng/observe/ring_buffer.hpp"
#include "perfeng/observe/trace.hpp"

namespace pe::observe {

/// What one lane is executing right now; published by the tracer, read by
/// the sampling profiler. A seqlock over individually-atomic fields (so
/// the pattern is ThreadSanitizer-clean): `seq` is odd while the slot is
/// being written, and a reader retries until it sees the same even value
/// on both sides of its read.
struct LaneActivity {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<const char*> file{nullptr};  ///< loop site (static storage)
  std::atomic<std::uint32_t> line{0};
  std::atomic<std::uint64_t> lo{0}, hi{0};  ///< executing chunk bounds
  std::atomic<bool> parked{false};  ///< lane is parked, not executing
};

/// Tracer configuration.
struct TracerConfig {
  /// Lanes to record (pool workers + 1 external lane is typical). Events
  /// from lanes >= `lanes` share the last ring.
  std::size_t lanes = 0;  ///< 0 = hardware_concurrency + 1
  /// Per-lane ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = EventRing::kDefaultCapacity;
  /// Clock returning nanoseconds; null = steady_clock. Tests inject a
  /// deterministic simulated clock here.
  std::uint64_t (*now_ns)() = nullptr;
};

/// Lock-free scheduler tracer; install with `ScopedTrace`.
class Tracer final : public TraceHook {
 public:
  explicit Tracer(TracerConfig config = {});

  // TraceHook interface (called by the runtime; not for direct use).
  void on_event(TraceEventKind kind, const void* obj, std::uint64_t a,
                std::uint64_t b, std::size_t lane, const char* file,
                std::uint32_t line) noexcept override;

  /// Drain every lane ring into a time-sorted Trace. Call after the traced
  /// region has quiesced (tracer uninstalled, or the pool idle).
  [[nodiscard]] Trace take() const;

  /// Forget everything captured so far.
  void reset() noexcept;

  /// Lanes (rings) the tracer was sized for.
  [[nodiscard]] std::size_t lanes() const noexcept { return rings_.size(); }

  /// Current-activity slot of one lane (sampling profiler input).
  [[nodiscard]] const LaneActivity& activity(std::size_t lane) const noexcept {
    return activities_[lane < rings_.size() ? lane : rings_.size() - 1];
  }

  /// Nanosecond timestamp on the tracer's clock.
  [[nodiscard]] std::uint64_t now() const noexcept;

 private:
  void publish_activity(std::size_t slot, TraceEventKind kind,
                        std::uint64_t a, std::uint64_t b, const char* file,
                        std::uint32_t line) noexcept;

  std::vector<std::unique_ptr<EventRing>> rings_;   // one per lane
  std::vector<LaneActivity> activities_;            // one per lane
  std::uint64_t (*now_ns_)();                       // null = steady_clock
};

/// RAII installer: makes `tracer` the process-wide TraceHook for the
/// scope's lifetime. Only one hook may be active at a time (nesting
/// throws pe::Error — overlapping trace scopes are a harness bug).
class ScopedTrace {
 public:
  explicit ScopedTrace(Tracer& tracer);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Tracer& tracer_;
};

}  // namespace pe::observe
