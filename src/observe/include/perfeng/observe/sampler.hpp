#pragma once

/// \file sampler.hpp
/// Sampling profiler: periodic snapshots of in-flight lane provenance.
///
/// The event stream answers "what happened"; the sampler answers "where
/// does time go" at a fixed cost independent of event rate. A background
/// thread wakes every `period` and reads each lane's current-activity
/// seqlock (the chunk and provenance site the lane is executing right
/// now, maintained by the `Tracer`), folding the observations into
/// flame-graph stacks. Output is the same collapsed format as
/// `pe::observe::collapse`, with sample counts as weights.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <thread>

#include "perfeng/observe/export.hpp"
#include "perfeng/observe/tracer.hpp"

namespace pe::observe {

/// Sampling-profiler settings.
struct SamplerConfig {
  std::chrono::microseconds period{100};  ///< snapshot interval
};

/// Periodically snapshots a tracer's per-lane activity into folded stacks.
/// Start/stop explicitly (or let the destructor stop); read `folded()`
/// only after `stop()`.
class SamplingProfiler {
 public:
  explicit SamplingProfiler(const Tracer& tracer, SamplerConfig config = {});
  ~SamplingProfiler();

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Launch the sampling thread (idempotent).
  void start();

  /// Stop and join the sampling thread (idempotent).
  void stop();

  /// Snapshots taken so far.
  [[nodiscard]] std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_acquire);
  }

  /// Folded stacks accumulated by the sampler; stable only after stop().
  [[nodiscard]] const FoldedStacks& folded() const noexcept {
    return folded_;
  }

  /// Write the accumulated stacks in collapsed flame-graph format.
  void write_collapsed(std::ostream& out) const;

 private:
  void sample_once();

  const Tracer& tracer_;
  SamplerConfig config_;
  FoldedStacks folded_;
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace pe::observe
