#pragma once

/// \file analysis.hpp
/// Scheduler-trace analysis: latency histograms and contention profiles.
///
/// Distribution-level evidence, not means: the latency monitor reports
/// p50/p95/p99 of the submit→start gap (one sample per job copy a worker
/// claimed), and the contention profile counts contended lock acquisitions,
/// park cycles with their durations, and steals per lane. `summarize`
/// reduces a trace to the aggregate row that travels with experiment
/// provenance next to the machine hash.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perfeng/common/table.hpp"
#include "perfeng/measure/experiment.hpp"
#include "perfeng/measure/statistics.hpp"
#include "perfeng/observe/trace.hpp"

namespace pe::observe {

/// One bucket of a log2 latency histogram: [lo_ns, hi_ns).
struct HistogramBucket {
  std::uint64_t lo_ns = 0;
  std::uint64_t hi_ns = 0;
  std::size_t count = 0;
};

/// Power-of-two bucketing of nanosecond samples (first bucket [0, 1)).
[[nodiscard]] std::vector<HistogramBucket> log2_histogram(
    const std::vector<double>& samples_ns);

/// Submit→start scheduler-dispatch latency distribution.
struct LatencyReport {
  std::vector<double> samples_ns;  ///< one per worker-claimed job copy
  SampleSummary summary;           ///< of samples_ns
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  std::size_t unmatched_starts = 0;  ///< starts with no prior submit seen
                                     ///< (ring overwrote the submit event)

  /// Rendered histogram + percentile table.
  [[nodiscard]] Table to_table() const;
};

/// Match every kTaskStart against the latest preceding kSubmit with the
/// same correlation key and report the gap distribution.
[[nodiscard]] LatencyReport scheduler_latency(const Trace& trace);

/// Park/steal/lock-contention counters of one lane.
struct LaneContention {
  std::size_t lane = 0;
  std::size_t parks = 0;          ///< completed park→unpark cycles
  double park_ns = 0.0;           ///< total parked time
  std::size_t contended = 0;      ///< lock acquisitions that had to wait
  std::size_t steals = 0;         ///< jobs taken from another lane's deque
};

/// Per-lane contention profile (one entry per lane that emitted events).
struct ContentionReport {
  std::vector<LaneContention> lanes;
  std::size_t total_parks = 0;
  double total_park_ns = 0.0;
  std::size_t total_contended = 0;
  std::size_t total_steals = 0;

  [[nodiscard]] Table to_table() const;
};

[[nodiscard]] ContentionReport contention_profile(const Trace& trace);

/// Aggregate row of one trace — the provenance record experiments carry.
struct TraceSummary {
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  double latency_p50_ns = 0.0;
  double latency_p95_ns = 0.0;
  double latency_p99_ns = 0.0;
  std::size_t parks = 0;
  double park_ns = 0.0;
  std::size_t contended = 0;
  std::size_t steals = 0;

  [[nodiscard]] std::string one_line() const;
};

[[nodiscard]] TraceSummary summarize(const Trace& trace);

/// Attach the summary as provenance columns of an experiment (rendered
/// next to the machine name and calibration hash): sched_p50_ns,
/// sched_p99_ns, parks, steals, contended, trace_dropped.
void annotate(Experiment& experiment, const TraceSummary& summary);

}  // namespace pe::observe
