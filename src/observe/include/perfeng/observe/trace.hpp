#pragma once

/// \file trace.hpp
/// A captured scheduler trace: the drained, time-sorted event stream.
///
/// `Trace` is the interchange type between the tracer (which fills it), the
/// analysis passes (latency histograms, contention profiles), and the
/// exporters (collapsed stacks, Chrome trace_event JSON). Traces serialize
/// to a line-oriented JSON format (one event object per line after a header
/// line) so `tools/trace_export` can post-process captures offline; see
/// docs/observability.md for the format.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "perfeng/observe/ring_buffer.hpp"

namespace pe::observe {

/// A drained trace: events sorted by timestamp, plus overflow accounting.
struct Trace {
  std::vector<TraceRecord> events;  ///< time-sorted
  std::uint64_t recorded = 0;       ///< events emitted while tracing
  std::uint64_t dropped = 0;        ///< events lost to ring overwrites
  std::size_t lanes = 0;            ///< lanes the tracer was sized for

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Count of events of one kind.
  [[nodiscard]] std::size_t count(TraceEventKind kind) const noexcept;

  /// Write the line-oriented JSON capture format.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;

  /// Parse a capture written by `save`. Interned strings (provenance
  /// files) are stored in the returned trace's string pool, so records
  /// stay valid for the trace's lifetime. Throws pe::Error with a
  /// line-numbered message on malformed input.
  [[nodiscard]] static Trace load(std::istream& in);
  [[nodiscard]] static Trace load_file(const std::string& path);

  /// Owning storage for provenance strings of loaded traces; untouched
  /// for live captures (whose `file` pointers are static storage).
  std::vector<std::string> string_pool;
};

}  // namespace pe::observe
