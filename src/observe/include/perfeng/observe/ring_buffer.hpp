#pragma once

/// \file ring_buffer.hpp
/// Lock-free per-lane event ring buffers for the scheduler tracer.
///
/// One `EventRing` holds the events of one worker lane. Producers claim a
/// slot with a single `fetch_add` on the head cursor, write the record, and
/// publish it by storing the slot's sequence number with release ordering —
/// no locks, no waiting, so emission never perturbs the scheduling it
/// observes. The ring overwrites its oldest entries when full and counts
/// every overwritten record (`dropped()`): a trace either holds the tail of
/// the run or says exactly how much of the head it lost. Draining is only
/// defined after the traced region has quiesced (the tracer is uninstalled
/// or the pool is idle); per-slot sequence numbers let the drain detect and
/// discard records that were being overwritten mid-read.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "perfeng/common/error.hpp"
#include "perfeng/common/trace_hook.hpp"

namespace pe::observe {

/// One recorded scheduler event (see TraceEventKind for the catalog).
/// POD: records are copied in and out of rings by value.
struct TraceRecord {
  std::uint64_t ns = 0;       ///< tracer-clock timestamp
  std::uint64_t a = 0;        ///< kind-specific payload (chunk lo, counts)
  std::uint64_t b = 0;        ///< kind-specific payload (chunk hi)
  const void* obj = nullptr;  ///< correlation key (job arg / loop record)
  const char* file = nullptr; ///< provenance site, static storage or null
  std::uint32_t line = 0;
  std::uint32_t lane = 0;     ///< emitting lane
  TraceEventKind kind = TraceEventKind::kSubmit;
};

/// Fixed-capacity, overwrite-oldest, lock-free MPSC event ring.
///
/// Worker lanes have exactly one producer (the worker thread), but the
/// external lane is shared by every non-pool thread, so the claim protocol
/// is multi-producer-safe: `fetch_add` hands out distinct slots even under
/// concurrent emission. There is no consumer while producers run; `drain`
/// is a post-quiesce operation.
class EventRing {
 public:
  /// `capacity` is rounded up to a power of two (slot indexing is a mask).
  explicit EventRing(std::size_t capacity = kDefaultCapacity) {
    PE_REQUIRE(capacity >= 2, "ring needs at least two slots");
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    slots_ = std::vector<Slot>(cap);
  }

  /// Record one event; never blocks, never fails. Overwrites the oldest
  /// record when the ring is full.
  void push(const TraceRecord& record) noexcept {
    const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[idx & (slots_.size() - 1)];
    // Mark the slot in-progress (odd) so a concurrent drain of a lapped
    // slot can tell it is torn, then publish (idx + 1, even baseline) with
    // release so the payload is visible to the acquire-reading drain.
    slot.seq.store(0, std::memory_order_relaxed);
    slot.record = record;
    slot.seq.store(idx + 1, std::memory_order_release);
  }

  /// Events recorded since construction/reset (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Events lost to overwriting — `recorded() - capacity`, clamped at 0.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t n = recorded();
    const std::uint64_t cap = slots_.size();
    return n > cap ? n - cap : 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Copy the surviving records (oldest first) into `out`. Only meaningful
  /// after producers have quiesced; slots whose sequence number does not
  /// match their claim index (torn by a concurrent overwrite) are skipped.
  void drain(std::vector<TraceRecord>& out) const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t cap = slots_.size();
    const std::uint64_t first = head > cap ? head - cap : 0;
    for (std::uint64_t idx = first; idx < head; ++idx) {
      const Slot& slot = slots_[idx & (cap - 1)];
      if (slot.seq.load(std::memory_order_acquire) != idx + 1) continue;
      out.push_back(slot.record);
    }
  }

  /// Forget everything recorded so far. Not safe concurrently with push.
  void reset() noexcept {
    head_.store(0, std::memory_order_release);
    for (Slot& slot : slots_) slot.seq.store(0, std::memory_order_release);
  }

  /// Default per-lane capacity: 64Ki events (~4 MiB per lane) holds several
  /// seconds of bulk-loop dispatch on current hosts.
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< claim index + 1 once published
    TraceRecord record;
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace pe::observe
