#include "perfeng/observe/export.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <string_view>
#include <vector>

namespace pe::observe {

std::string provenance_frame(const char* file, std::uint32_t line) {
  if (file == nullptr) return "task";
  std::string frame = "parallel_for@";
  // Frames keep only the repo-relative tail of __FILE__-style paths so
  // flame graphs from different build trees merge.
  std::string_view path(file);
  const std::size_t src = path.rfind("/src/");
  const std::size_t bench = path.rfind("/bench/");
  const std::size_t tests = path.rfind("/tests/");
  std::size_t cut = std::string_view::npos;
  for (const std::size_t pos : {src, bench, tests})
    if (pos != std::string_view::npos && (cut == std::string_view::npos ||
                                          pos < cut))
      cut = pos;
  if (cut != std::string_view::npos) path.remove_prefix(cut + 1);
  frame.append(path);
  frame.push_back(':');
  frame.append(std::to_string(line));
  return frame;
}

namespace {

/// Per-lane interval reconstruction shared by both exporters: pairs
/// start/finish events of chunks, tasks, and parks in time order.
struct Interval {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t lane = 0;
  std::string frame;
  std::uint64_t lo = 0, hi = 0;  ///< chunk payload (0 for parks/tasks)
};

std::vector<Interval> reconstruct_intervals(const Trace& trace) {
  struct Open {
    std::uint64_t ns = 0;
    std::string frame;
    std::uint64_t lo = 0, hi = 0;
    bool active = false;
  };
  std::map<std::uint32_t, Open> open_chunk, open_task, open_park;
  std::vector<Interval> out;
  const auto close = [&out](std::map<std::uint32_t, Open>& open,
                            const TraceRecord& e) {
    Open& o = open[e.lane];
    if (!o.active) return;
    out.push_back({o.ns, e.ns, e.lane, std::move(o.frame), o.lo, o.hi});
    o.active = false;
  };
  for (const TraceRecord& e : trace.events) {
    switch (e.kind) {
      case TraceEventKind::kChunkStart:
        open_chunk[e.lane] =
            {e.ns, provenance_frame(e.file, e.line), e.a, e.b, true};
        break;
      case TraceEventKind::kChunkFinish:
        close(open_chunk, e);
        break;
      case TraceEventKind::kTaskStart:
        // Bulk job copies immediately open chunk scopes; track the task
        // span anyway so submit-path jobs (no chunks) get a frame.
        open_task[e.lane] = {e.ns, "task", 0, 0, true};
        break;
      case TraceEventKind::kTaskFinish:
        close(open_task, e);
        break;
      case TraceEventKind::kPark:
        open_park[e.lane] = {e.ns, "idle.park", 0, 0, true};
        break;
      case TraceEventKind::kUnpark:
        close(open_park, e);
        break;
      default:
        break;
    }
  }
  return out;
}

/// Chunk intervals subsume the task interval that hosts them; drop task
/// intervals that overlap any chunk interval on the same lane so folded
/// weights are not double-counted.
std::vector<Interval> deduplicated(std::vector<Interval> intervals) {
  std::vector<Interval> chunks;
  for (const Interval& iv : intervals)
    if (iv.frame != "task" && iv.frame != "idle.park") chunks.push_back(iv);
  std::vector<Interval> out;
  for (Interval& iv : intervals) {
    if (iv.frame == "task") {
      const bool hosts_chunk = std::any_of(
          chunks.begin(), chunks.end(), [&iv](const Interval& c) {
            return c.lane == iv.lane && c.start_ns < iv.end_ns &&
                   iv.start_ns < c.end_ns;
          });
      if (hosts_chunk) continue;
    }
    out.push_back(std::move(iv));
  }
  return out;
}

void escape_json(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

FoldedStacks collapse(const Trace& trace) {
  FoldedStacks stacks;
  for (const Interval& iv : deduplicated(reconstruct_intervals(trace))) {
    const std::uint64_t us = std::max<std::uint64_t>(
        1, (iv.end_ns - iv.start_ns) / 1000);
    stacks["pool;lane " + std::to_string(iv.lane) + ";" + iv.frame] += us;
  }
  return stacks;
}

void write_collapsed(std::ostream& out, const FoldedStacks& stacks) {
  for (const auto& [stack, weight] : stacks)
    out << stack << " " << weight << "\n";
}

void write_collapsed(std::ostream& out, const Trace& trace) {
  write_collapsed(out, collapse(trace));
}

void write_chrome_trace(std::ostream& out, const Trace& trace) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  // Thread-name metadata: one row per lane seen in the trace.
  std::map<std::uint32_t, bool> lanes_seen;
  for (const TraceRecord& e : trace.events) lanes_seen[e.lane] = true;
  for (const auto& [lane, seen] : lanes_seen) {
    (void)seen;
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << lane
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"lane " << lane
        << (lane + 1 == trace.lanes ? " (external)" : "") << "\"}}";
  }
  for (const Interval& iv : reconstruct_intervals(trace)) {
    sep();
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << iv.lane << ",\"name\":\"";
    escape_json(out, iv.frame);
    out << "\",\"ts\":" << static_cast<double>(iv.start_ns) / 1000.0
        << ",\"dur\":"
        << static_cast<double>(iv.end_ns - iv.start_ns) / 1000.0;
    if (iv.hi > iv.lo)
      out << ",\"args\":{\"lo\":" << iv.lo << ",\"hi\":" << iv.hi << "}";
    out << "}";
  }
  for (const TraceRecord& e : trace.events) {
    if (e.kind != TraceEventKind::kSubmit &&
        e.kind != TraceEventKind::kSteal &&
        e.kind != TraceEventKind::kContended)
      continue;
    sep();
    out << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << e.lane
        << ",\"name\":\"" << trace_event_kind_name(e.kind)
        << "\",\"ts\":" << static_cast<double>(e.ns) / 1000.0 << "}";
  }
  out << "\n]}\n";
}

}  // namespace pe::observe
