#include "perfeng/observe/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "perfeng/common/error.hpp"

namespace pe::observe {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Tracer::Tracer(TracerConfig config)
    : now_ns_(config.now_ns != nullptr ? config.now_ns : &steady_now_ns) {
  std::size_t lanes = config.lanes;
  if (lanes == 0)
    lanes = std::max<std::size_t>(1, std::thread::hardware_concurrency()) + 1;
  rings_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i)
    rings_.push_back(std::make_unique<EventRing>(config.ring_capacity));
  activities_ = std::vector<LaneActivity>(lanes);
}

std::uint64_t Tracer::now() const noexcept { return now_ns_(); }

void Tracer::publish_activity(std::size_t slot, TraceEventKind kind,
                              std::uint64_t a, std::uint64_t b,
                              const char* file,
                              std::uint32_t line) noexcept {
  LaneActivity& act = activities_[slot];
  // Seqlock write: odd while mid-update; release publish on both stores so
  // the sampler's acquire reads see a consistent slot or retry. The fields
  // themselves are relaxed atomics — ordering comes from seq.
  const std::uint64_t seq = act.seq.load(std::memory_order_relaxed);
  act.seq.store(seq + 1, std::memory_order_release);
  switch (kind) {
    case TraceEventKind::kChunkStart:
      act.file.store(file, std::memory_order_relaxed);
      act.line.store(line, std::memory_order_relaxed);
      act.lo.store(a, std::memory_order_relaxed);
      act.hi.store(b, std::memory_order_relaxed);
      act.parked.store(false, std::memory_order_relaxed);
      break;
    case TraceEventKind::kChunkFinish:
      act.file.store(nullptr, std::memory_order_relaxed);
      act.line.store(0, std::memory_order_relaxed);
      act.lo.store(0, std::memory_order_relaxed);
      act.hi.store(0, std::memory_order_relaxed);
      act.parked.store(false, std::memory_order_relaxed);
      break;
    case TraceEventKind::kPark:
      act.parked.store(true, std::memory_order_relaxed);
      break;
    case TraceEventKind::kUnpark:
      act.parked.store(false, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  act.seq.store(seq + 2, std::memory_order_release);
}

void Tracer::on_event(TraceEventKind kind, const void* obj, std::uint64_t a,
                      std::uint64_t b, std::size_t lane, const char* file,
                      std::uint32_t line) noexcept {
  const std::size_t slot = lane < rings_.size() ? lane : rings_.size() - 1;
  TraceRecord record;
  record.ns = now_ns_();
  record.a = a;
  record.b = b;
  record.obj = obj;
  record.file = file;
  record.line = line;
  record.lane = static_cast<std::uint32_t>(lane);
  record.kind = kind;
  rings_[slot]->push(record);
  switch (kind) {
    case TraceEventKind::kChunkStart:
    case TraceEventKind::kChunkFinish:
    case TraceEventKind::kPark:
    case TraceEventKind::kUnpark:
      publish_activity(slot, kind, a, b, file, line);
      break;
    default:
      break;
  }
}

Trace Tracer::take() const {
  Trace trace;
  trace.lanes = rings_.size();
  for (const auto& ring : rings_) {
    ring->drain(trace.events);
    trace.recorded += ring->recorded();
    trace.dropped += ring->dropped();
  }
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const TraceRecord& x, const TraceRecord& y) {
                     return x.ns < y.ns;
                   });
  return trace;
}

void Tracer::reset() noexcept {
  for (const auto& ring : rings_) ring->reset();
  for (LaneActivity& act : activities_) {
    const std::uint64_t seq = act.seq.load(std::memory_order_relaxed);
    act.seq.store(seq + 1, std::memory_order_release);
    act.file.store(nullptr, std::memory_order_relaxed);
    act.line.store(0, std::memory_order_relaxed);
    act.lo.store(0, std::memory_order_relaxed);
    act.hi.store(0, std::memory_order_relaxed);
    act.parked.store(false, std::memory_order_relaxed);
    act.seq.store(seq + 2, std::memory_order_release);
  }
}

ScopedTrace::ScopedTrace(Tracer& tracer) : tracer_(tracer) {
  if (trace_hook() != nullptr)
    throw Error("ScopedTrace: a trace hook is already installed");
  set_trace_hook(&tracer_);
}

ScopedTrace::~ScopedTrace() {
  set_trace_hook(nullptr);
}

}  // namespace pe::observe
