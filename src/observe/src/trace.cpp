#include "perfeng/observe/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "perfeng/common/error.hpp"

// Capture format (docs/observability.md): line 1 is a header object, every
// further line is one event object. Flat objects, fixed keys, no nesting —
// a deliberate subset of JSON so offline tooling (jq, python) reads it
// directly while the in-repo parser stays a page long:
//
//   {"pe_trace":1,"lanes":9,"recorded":1234,"dropped":0,"events":1234}
//   {"ns":17,"kind":"chunk_start","lane":3,"obj":"0x7ffd","a":0,"b":128,
//    "file":"bench/x.cpp","line":42}

namespace pe::observe {

std::size_t Trace::count(TraceEventKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [kind](const TraceRecord& e) { return e.kind == kind; }));
}

namespace {

void write_event(std::ostream& out, const TraceRecord& e) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"ns\":%" PRIu64 ",\"kind\":\"%s\",\"lane\":%u,"
                "\"obj\":\"%p\",\"a\":%" PRIu64 ",\"b\":%" PRIu64,
                e.ns, trace_event_kind_name(e.kind), e.lane,
                e.obj, e.a, e.b);
  out << buf;
  if (e.file != nullptr) {
    out << ",\"file\":\"" << e.file << "\",\"line\":" << e.line;
  }
  out << "}\n";
}

/// Minimal scanner for one flat JSON object line: fills string and number
/// fields keyed by name. Unknown keys are skipped (forward compatibility).
class FlatObject {
 public:
  FlatObject(std::string_view line, std::size_t lineno) {
    std::size_t i = skip_ws(line, 0);
    if (i >= line.size() || line[i] != '{') fail(lineno, "expected '{'");
    ++i;
    for (;;) {
      i = skip_ws(line, i);
      if (i < line.size() && line[i] == '}') return;
      if (i >= line.size() || line[i] != '"')
        fail(lineno, "expected a quoted key");
      std::string key;
      i = read_string(line, i, lineno, key);
      i = skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') fail(lineno, "expected ':'");
      i = skip_ws(line, i + 1);
      if (i < line.size() && line[i] == '"') {
        std::string value;
        i = read_string(line, i, lineno, value);
        strings_[key] = std::move(value);
      } else {
        const std::size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
        std::uint64_t v = 0;
        const std::string digits(line.substr(start, i - start));
        if (std::sscanf(digits.c_str(), "%" SCNu64, &v) != 1)
          fail(lineno, "expected a number for key '" + key + "'");
        numbers_[key] = v;
      }
      i = skip_ws(line, i);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') return;
      fail(lineno, "expected ',' or '}'");
    }
  }

  [[nodiscard]] std::uint64_t number(const std::string& key,
                                     std::size_t lineno) const {
    const auto it = numbers_.find(key);
    if (it == numbers_.end()) fail(lineno, "missing key '" + key + "'");
    return it->second;
  }

  [[nodiscard]] std::uint64_t number_or(const std::string& key,
                                        std::uint64_t fallback) const {
    const auto it = numbers_.find(key);
    return it == numbers_.end() ? fallback : it->second;
  }

  [[nodiscard]] const std::string* string_or_null(
      const std::string& key) const {
    const auto it = strings_.find(key);
    return it == strings_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::string& string(const std::string& key,
                                          std::size_t lineno) const {
    const std::string* s = string_or_null(key);
    if (s == nullptr) fail(lineno, "missing key '" + key + "'");
    return *s;
  }

 private:
  [[noreturn]] static void fail(std::size_t lineno, const std::string& what) {
    throw Error("trace capture line " + std::to_string(lineno) + ": " + what);
  }

  static std::size_t skip_ws(std::string_view s, std::size_t i) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    return i;
  }

  static std::size_t read_string(std::string_view s, std::size_t i,
                                 std::size_t lineno, std::string& out) {
    ++i;  // opening quote
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out.push_back(s[i]);
      ++i;
    }
    if (i >= s.size()) fail(lineno, "unterminated string");
    return i + 1;  // closing quote
  }

  std::map<std::string, std::uint64_t> numbers_;
  std::map<std::string, std::string> strings_;
};

TraceEventKind kind_from_name(const std::string& name, std::size_t lineno) {
  for (std::size_t k = 0; k < kTraceEventKinds; ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    if (name == trace_event_kind_name(kind)) return kind;
  }
  throw Error("trace capture line " + std::to_string(lineno) +
              ": unknown event kind '" + name + "'");
}

}  // namespace

void Trace::save(std::ostream& out) const {
  out << "{\"pe_trace\":1,\"lanes\":" << lanes << ",\"recorded\":" << recorded
      << ",\"dropped\":" << dropped << ",\"events\":" << events.size()
      << "}\n";
  for (const TraceRecord& e : events) write_event(out, e);
}

void Trace::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open trace capture '" + path + "' to write");
  save(out);
}

Trace Trace::load(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t lineno = 0;
  // Interned provenance strings: many events share the same site, and the
  // records carry raw pointers, so alias them into one owning pool.
  std::map<std::string, std::size_t> interned;
  // Reserve generously: the pool must never reallocate once a record
  // points into it, so the deque-like guarantee comes from indexing after
  // the full parse instead.
  std::vector<std::string> files_in_order;
  std::vector<std::size_t> file_of_event;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const FlatObject obj(line, lineno);
    if (lineno == 1) {
      if (obj.number("pe_trace", lineno) != 1)
        throw Error("trace capture: unsupported pe_trace version");
      trace.lanes = static_cast<std::size_t>(obj.number("lanes", lineno));
      trace.recorded = obj.number("recorded", lineno);
      trace.dropped = obj.number("dropped", lineno);
      continue;
    }
    TraceRecord e;
    e.ns = obj.number("ns", lineno);
    e.kind = kind_from_name(obj.string("kind", lineno), lineno);
    e.lane = static_cast<std::uint32_t>(obj.number("lane", lineno));
    e.a = obj.number_or("a", 0);
    e.b = obj.number_or("b", 0);
    if (const std::string* objkey = obj.string_or_null("obj")) {
      std::uint64_t ptr = 0;
      std::sscanf(objkey->c_str(), "%" SCNx64, &ptr);
      e.obj = reinterpret_cast<const void*>(  // NOLINT: correlation key only
          static_cast<std::uintptr_t>(ptr));
    }
    if (const std::string* file = obj.string_or_null("file")) {
      const auto it = interned.find(*file);
      std::size_t idx;
      if (it == interned.end()) {
        idx = files_in_order.size();
        files_in_order.push_back(*file);
        interned.emplace(*file, idx);
      } else {
        idx = it->second;
      }
      file_of_event.push_back(idx);
      e.line = static_cast<std::uint32_t>(obj.number_or("line", 0));
    } else {
      file_of_event.push_back(files_in_order.size());  // sentinel: none
    }
    trace.events.push_back(e);
  }
  if (lineno == 0) throw Error("trace capture: empty input");
  // Fix up provenance pointers now that the pool is complete and stable.
  trace.string_pool = std::move(files_in_order);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const std::size_t idx = file_of_event[i];
    trace.events[i].file =
        idx < trace.string_pool.size() ? trace.string_pool[idx].c_str()
                                       : nullptr;
  }
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const TraceRecord& x, const TraceRecord& y) {
                     return x.ns < y.ns;
                   });
  return trace;
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open trace capture '" + path + "'");
  return load(in);
}

}  // namespace pe::observe
