#include "perfeng/observe/sampler.hpp"

#include <ostream>
#include <string>

namespace pe::observe {

SamplingProfiler::SamplingProfiler(const Tracer& tracer, SamplerConfig config)
    : tracer_(tracer), config_(config) {}

SamplingProfiler::~SamplingProfiler() { stop(); }

void SamplingProfiler::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      sample_once();
      std::this_thread::sleep_for(config_.period);
    }
  });
}

void SamplingProfiler::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
}

void SamplingProfiler::sample_once() {
  for (std::size_t lane = 0; lane < tracer_.lanes(); ++lane) {
    const LaneActivity& act = tracer_.activity(lane);
    // Seqlock read: retry while the tracer is mid-update (odd) or the
    // sequence moved under us; give up after a few spins — a torn sample
    // is simply skipped, never misattributed.
    const char* file = nullptr;
    std::uint32_t line = 0;
    bool parked = false;
    bool idle = true;
    bool consistent = false;
    for (int attempt = 0; attempt < 4 && !consistent; ++attempt) {
      const std::uint64_t before = act.seq.load(std::memory_order_acquire);
      if ((before & 1) != 0) continue;
      file = act.file.load(std::memory_order_relaxed);
      line = act.line.load(std::memory_order_relaxed);
      parked = act.parked.load(std::memory_order_relaxed);
      idle = file == nullptr && !parked;
      const std::uint64_t after = act.seq.load(std::memory_order_acquire);
      consistent = before == after;
    }
    if (!consistent || idle) continue;
    const std::string stack =
        "pool;lane " + std::to_string(lane) + ";" +
        (parked ? std::string("idle.park") : provenance_frame(file, line));
    ++folded_[stack];
  }
  samples_.fetch_add(1, std::memory_order_acq_rel);
}

void SamplingProfiler::write_collapsed(std::ostream& out) const {
  pe::observe::write_collapsed(out, folded_);
}

}  // namespace pe::observe
