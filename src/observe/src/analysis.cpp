#include "perfeng/observe/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace pe::observe {

std::vector<HistogramBucket> log2_histogram(
    const std::vector<double>& samples_ns) {
  std::vector<HistogramBucket> buckets;
  if (samples_ns.empty()) return buckets;
  const double top = *std::max_element(samples_ns.begin(), samples_ns.end());
  std::uint64_t hi = 1;
  buckets.push_back({0, 1, 0});
  while (static_cast<double>(hi) <= top) {
    buckets.push_back({hi, hi * 2, 0});
    hi *= 2;
  }
  for (double s : samples_ns) {
    const auto v = static_cast<std::uint64_t>(std::max(0.0, s));
    std::size_t b = 0;
    while (b + 1 < buckets.size() && v >= buckets[b].hi_ns) ++b;
    ++buckets[b].count;
  }
  return buckets;
}

LatencyReport scheduler_latency(const Trace& trace) {
  LatencyReport report;
  // Latest submit timestamp per correlation key. Stack-allocated loop
  // records are reused across loops, so "latest preceding submit" (the
  // events are time-sorted) is the correct match, not "first".
  std::map<const void*, std::uint64_t> last_submit;
  for (const TraceRecord& e : trace.events) {
    if (e.kind == TraceEventKind::kSubmit) {
      last_submit[e.obj] = e.ns;
    } else if (e.kind == TraceEventKind::kTaskStart) {
      const auto it = last_submit.find(e.obj);
      if (it == last_submit.end() || it->second > e.ns) {
        ++report.unmatched_starts;
        continue;
      }
      report.samples_ns.push_back(static_cast<double>(e.ns - it->second));
    }
  }
  if (!report.samples_ns.empty()) {
    report.summary = pe::summarize(report.samples_ns);
    report.p50_ns = percentile(report.samples_ns, 50.0);
    report.p95_ns = percentile(report.samples_ns, 95.0);
    report.p99_ns = percentile(report.samples_ns, 99.0);
  }
  return report;
}

Table LatencyReport::to_table() const {
  Table t({"submit->start (ns)", "count"});
  for (const HistogramBucket& b : log2_histogram(samples_ns)) {
    if (b.count == 0) continue;
    t.add_row({"[" + std::to_string(b.lo_ns) + ", " +
                   std::to_string(b.hi_ns) + ")",
               std::to_string(b.count)});
  }
  t.add_row({"p50", format_sig(p50_ns, 4)});
  t.add_row({"p95", format_sig(p95_ns, 4)});
  t.add_row({"p99", format_sig(p99_ns, 4)});
  return t;
}

ContentionReport contention_profile(const Trace& trace) {
  struct LaneState {
    LaneContention out;
    std::uint64_t park_since = 0;
    bool parked = false;
  };
  std::map<std::uint32_t, LaneState> lanes;
  for (const TraceRecord& e : trace.events) {
    LaneState& state = lanes[e.lane];
    state.out.lane = e.lane;
    switch (e.kind) {
      case TraceEventKind::kPark:
        state.parked = true;
        state.park_since = e.ns;
        break;
      case TraceEventKind::kUnpark:
        if (state.parked) {
          ++state.out.parks;
          state.out.park_ns += static_cast<double>(e.ns - state.park_since);
          state.parked = false;
        }
        break;
      case TraceEventKind::kContended:
        ++state.out.contended;
        break;
      case TraceEventKind::kSteal:
        ++state.out.steals;
        break;
      default:
        break;
    }
  }
  ContentionReport report;
  for (const auto& [lane, state] : lanes) {
    report.lanes.push_back(state.out);
    report.total_parks += state.out.parks;
    report.total_park_ns += state.out.park_ns;
    report.total_contended += state.out.contended;
    report.total_steals += state.out.steals;
  }
  return report;
}

Table ContentionReport::to_table() const {
  Table t({"lane", "parks", "park us", "contended", "steals"});
  for (const LaneContention& lane : lanes)
    t.add_row({std::to_string(lane.lane), std::to_string(lane.parks),
               format_sig(lane.park_ns / 1e3, 4),
               std::to_string(lane.contended), std::to_string(lane.steals)});
  t.add_row({"total", std::to_string(total_parks),
             format_sig(total_park_ns / 1e3, 4),
             std::to_string(total_contended), std::to_string(total_steals)});
  return t;
}

TraceSummary summarize(const Trace& trace) {
  TraceSummary s;
  s.events = trace.events.size();
  s.dropped = trace.dropped;
  const LatencyReport latency = scheduler_latency(trace);
  s.latency_p50_ns = latency.p50_ns;
  s.latency_p95_ns = latency.p95_ns;
  s.latency_p99_ns = latency.p99_ns;
  const ContentionReport contention = contention_profile(trace);
  s.parks = contention.total_parks;
  s.park_ns = contention.total_park_ns;
  s.contended = contention.total_contended;
  s.steals = contention.total_steals;
  return s;
}

std::string TraceSummary::one_line() const {
  std::ostringstream ss;
  ss << events << " events (" << dropped << " dropped), submit->start p50 "
     << format_sig(latency_p50_ns, 3) << " ns / p95 "
     << format_sig(latency_p95_ns, 3) << " ns / p99 "
     << format_sig(latency_p99_ns, 3) << " ns, " << parks << " parks ("
     << format_sig(park_ns / 1e6, 3) << " ms), " << contended
     << " contended acquisitions, " << steals << " steals";
  return ss.str();
}

void annotate(Experiment& experiment, const TraceSummary& summary) {
  experiment.set_provenance("sched_p50_ns", format_sig(summary.latency_p50_ns, 4));
  experiment.set_provenance("sched_p99_ns", format_sig(summary.latency_p99_ns, 4));
  experiment.set_provenance("parks", std::to_string(summary.parks));
  experiment.set_provenance("steals", std::to_string(summary.steals));
  experiment.set_provenance("contended", std::to_string(summary.contended));
  experiment.set_provenance("trace_dropped", std::to_string(summary.dropped));
}

}  // namespace pe::observe
