#pragma once

/// \file race_report.hpp
/// Structured result of an AccessChecker run.
///
/// A conflict is two chunks of the *same* parallel loop whose recorded
/// byte intervals on the same buffer overlap, with at least one side
/// writing. Chunks of different loops never conflict (the loop's
/// completion barrier orders them), and overlapping reads are harmless.

#include <cstddef>
#include <string>
#include <vector>

namespace pe::analysis {

/// One step of a chunk's loop-nesting path: which loop, and which chunk
/// of that loop, the execution was inside at that nesting depth.
struct ChunkStep {
  std::size_t loop = 0;   ///< 1-based loop sequence number in this run
  std::size_t chunk = 0;  ///< chunk sequence number within the run
};

/// Identity of one executed chunk: which loop it belonged to, its claimed
/// iteration range, the lane (worker index, or `pool.size()` for the
/// submitting thread) that ran it, and the loop-nesting path from the
/// outermost loop down to this chunk (`path.back()` is this chunk's own
/// step). Two chunks may run concurrently exactly when their paths first
/// diverge *within* one loop — same loop, different chunks — at some
/// depth; diverging across loops means a completion barrier ordered them,
/// and a path that is a prefix of the other is an enclosing chunk, which
/// blocks until its inner loop completes.
struct ChunkProvenance {
  std::size_t loop = 0;   ///< 1-based loop sequence number in this run
  std::size_t index = 0;  ///< chunk sequence number within the run
  std::size_t lo = 0;     ///< first claimed iteration
  std::size_t hi = 0;     ///< one past the last claimed iteration
  std::size_t lane = 0;   ///< executing lane
  std::vector<ChunkStep> path;  ///< outermost-first; ends at this chunk
};

/// Concurrency eligibility from nesting paths (see ChunkProvenance).
[[nodiscard]] bool chunks_may_race(const ChunkProvenance& a,
                                   const ChunkProvenance& b) noexcept;

/// One detected cross-chunk overlap. `first`/`second` are the offending
/// chunk pair; `lo_byte`/`hi_byte` is the first overlapping byte range
/// found on `buffer` (relative to the buffer base).
struct Conflict {
  std::string buffer;          ///< tag given at the instrumentation site
  const void* base = nullptr;  ///< buffer base pointer
  std::size_t lo_byte = 0;
  std::size_t hi_byte = 0;
  bool write_write = false;  ///< both sides wrote (else write/read)
  bool same_lane = false;    ///< chunks happened to run on one lane: the
                             ///< overlap did not race *this* run, but the
                             ///< partition is still broken (latent race)
  ChunkProvenance first;
  ChunkProvenance second;
  std::string first_where;   ///< file:line of the first side's record
  std::string second_where;  ///< file:line of the second side's record
};

/// Everything the checker saw, plus the conflicts it found.
struct RaceReport {
  std::vector<Conflict> conflicts;
  std::size_t loops = 0;      ///< parallel loops observed
  std::size_t chunks = 0;     ///< chunks observed across all loops
  std::size_t intervals = 0;  ///< coalesced access intervals recorded
  std::size_t unscoped_records = 0;  ///< records outside any chunk (ignored)

  [[nodiscard]] bool clean() const noexcept { return conflicts.empty(); }

  /// Human-readable multi-line summary, one line per conflict.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace pe::analysis
