#pragma once

/// \file access_checker.hpp
/// Interval-based race lint for data-parallel loops.
///
/// The checker is a lockset-free race detector tailored to the one pattern
/// the toolbox's `parallel_for` family promises: *chunks of one loop write
/// disjoint ranges*. While installed (via `ScopedAccessCheck`), the
/// parallel runtime announces every loop and chunk, and instrumented code
/// — the shipped kernels via `pe::access_record`, student code via
/// `checked_span` — announces the byte ranges each chunk reads and writes.
/// `report()` then diffs the per-chunk interval sets and returns a
/// `RaceReport` naming the exact conflicting chunk pairs, buffers, byte
/// ranges, and source locations.
///
/// Because the check is on the *partition*, not on this run's thread
/// timing, it also catches latent races: two overlapping chunks that
/// happened to execute on the same lane are still reported (flagged
/// `same_lane`) — a dynamic scheduler could legally have raced them.
///
/// Scope and limits: each chunk carries its full loop-nesting path (the
/// chain of enclosing loops and chunks down from the outermost loop), so
/// two chunks are diffed exactly when their paths first diverge within
/// one loop — which covers chunks of one flat loop *and* chunks of two
/// inner loops launched from concurrently-running chunks of the same
/// outer loop. Paths diverging across different loops are ordered by the
/// earlier loop's completion barrier, and an enclosing chunk never races
/// its own nested loop (it blocks until the inner loop drains).
/// Lane-indexed private scratch (e.g. the packed-matmul A panels) is
/// intentionally outside the model — it is partitioned by lane, not by
/// chunk — and should not be recorded. See docs/analysis.md.

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "perfeng/common/access_hook.hpp"
#include "perfeng/analysis/race_report.hpp"

namespace pe::analysis {

/// Records chunk/interval provenance while installed as the process-wide
/// AccessHook; thread-safe (chunks fire from pool workers). Install with
/// `ScopedAccessCheck`, run the loops under test, then call `report()`.
class AccessChecker final : public AccessHook {
 public:
  AccessChecker() = default;

  // AccessHook interface (called by the runtime; not for direct use).
  std::size_t begin_loop(std::size_t begin,
                         std::size_t end) noexcept override;
  void end_loop(std::size_t loop_token) noexcept override;
  void begin_chunk(std::size_t loop_token, std::size_t lo, std::size_t hi,
                   std::size_t lane) noexcept override;
  void end_chunk() noexcept override;
  void record(const void* base, std::size_t lo_byte, std::size_t hi_byte,
              bool is_write, const char* tag, const char* file,
              unsigned line) noexcept override;

  /// Diff the per-chunk interval sets recorded so far. Safe to call after
  /// the loops under test have completed (not concurrently with them).
  [[nodiscard]] RaceReport report() const;

  /// Drop everything recorded so far (loop/chunk counters restart).
  void reset();

 private:
  /// One coalesced access interval of one chunk.
  struct Interval {
    const void* base;
    const char* tag;
    std::size_t lo_byte, hi_byte;
    bool write;
    const char* file;
    unsigned line;
  };

  /// Everything one executed chunk touched. Appended to by exactly one
  /// thread (the one that announced the chunk), read by report().
  struct ChunkLog {
    ChunkProvenance id;
    std::vector<Interval> intervals;
  };

  /// Nesting prefix of one announced loop: the path of the chunk the
  /// launching thread was executing when it called begin_loop (empty for
  /// a top-level loop).
  struct LoopInfo {
    std::vector<ChunkStep> prefix;
  };

  mutable std::mutex mutex_;        // guards chunks_/loops_/counters below
  std::deque<ChunkLog> chunks_;     // deque: stable addresses for the
                                    // per-thread active-chunk stack
  std::deque<LoopInfo> loop_infos_; // index = loop token - 1
  std::size_t next_chunk_ = 0;
  std::size_t loops_ = 0;
  std::atomic<std::size_t> unscoped_records_{0};
};

/// RAII installer: makes `checker` the process-wide AccessHook for the
/// scope's lifetime. Only one hook may be active at a time (nesting
/// throws pe::Error — overlapping checker scopes are a test bug).
class ScopedAccessCheck {
 public:
  explicit ScopedAccessCheck(AccessChecker& checker);
  ~ScopedAccessCheck();

  ScopedAccessCheck(const ScopedAccessCheck&) = delete;
  ScopedAccessCheck& operator=(const ScopedAccessCheck&) = delete;

 private:
  AccessChecker& checker_;
};

}  // namespace pe::analysis
