#pragma once

/// \file checked_span.hpp
/// Shadow-access span for student kernels: records every element read and
/// write through the installed AccessHook (no-op, one relaxed atomic load,
/// when no checker is active), so wrapping a loop body's arrays in
/// `checked_span` is all it takes to race-lint a hand-written kernel:
///
///     pe::analysis::checked_span<double> y(out.data(), out.size(), "y");
///     pe::parallel_for(pool, 0, n, [&](std::size_t i) { y[i] = f(i); });
///
/// Consecutive accesses coalesce inside the checker, so sequential sweeps
/// cost one interval per chunk. Bounds are checked with PE_ASSERT; the
/// span captures its construction site so conflicts point at the wrapping
/// line, not at this header.

#include <cstddef>
#include <source_location>
#include <type_traits>

#include "perfeng/common/access_hook.hpp"
#include "perfeng/common/error.hpp"

namespace pe::analysis {

/// Non-owning view of `size` elements at `data`, announcing accesses to
/// the installed race checker. Use `checked_span<const T>` for read-only
/// operands.
template <typename T>
class checked_span {
 public:
  using value_type = std::remove_const_t<T>;

  checked_span(T* data, std::size_t size, const char* tag,
               std::source_location loc = std::source_location::current())
      : data_(data), size_(size), tag_(tag), loc_(loc) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] T* data() const noexcept { return data_; }

  /// Read element `i`, recording the access.
  [[nodiscard]] value_type read(std::size_t i) const {
    note(i, i + 1, false);
    return data_[i];
  }

  /// Write element `i`, recording the access.
  void write(std::size_t i, value_type v) const
    requires(!std::is_const_v<T>)
  {
    note(i, i + 1, true);
    data_[i] = v;
  }

  /// Announce a range access without touching the data — for bodies that
  /// hand a whole sub-range to uninstrumented code (memcpy, BLAS, ...).
  void note(std::size_t lo, std::size_t hi, bool is_write) const {
    PE_ASSERT(lo <= hi && hi <= size_, "checked_span range out of bounds");
    if (AccessHook* hook = ::pe::detail::access_hook_fast())
      hook->record(data_, lo * sizeof(value_type), hi * sizeof(value_type),
                   is_write, tag_, loc_.file_name(),
                   static_cast<unsigned>(loc_.line()));
  }

  /// Element proxy: reads record on conversion, writes on assignment, and
  /// compound updates record both sides.
  class reference {
   public:
    operator value_type() const {  // NOLINT(google-explicit-constructor)
      return span_->read(i_);
    }
    reference& operator=(value_type v)
      requires(!std::is_const_v<T>)
    {
      span_->write(i_, v);
      return *this;
    }
    reference& operator+=(value_type v)
      requires(!std::is_const_v<T>)
    {
      span_->write(i_, span_->read(i_) + v);
      return *this;
    }
    reference& operator-=(value_type v)
      requires(!std::is_const_v<T>)
    {
      span_->write(i_, span_->read(i_) - v);
      return *this;
    }

   private:
    friend class checked_span;
    reference(const checked_span* span, std::size_t i)
        : span_(span), i_(i) {}
    const checked_span* span_;
    std::size_t i_;
  };

  [[nodiscard]] reference operator[](std::size_t i) const {
    PE_ASSERT(i < size_, "checked_span index out of bounds");
    return reference(this, i);
  }

 private:
  T* data_;
  std::size_t size_;
  const char* tag_;
  std::source_location loc_;
};

}  // namespace pe::analysis
