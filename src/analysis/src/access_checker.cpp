#include "perfeng/analysis/access_checker.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "perfeng/common/error.hpp"

namespace pe::analysis {

namespace {

/// Active-chunk stack of the calling thread. A stack (not a single slot)
/// so nested parallel loops attribute records to the innermost chunk.
/// Process-wide is safe: only one checker can be installed at a time.
thread_local std::vector<void*> t_active_chunks;

std::string where_string(const char* file, unsigned line) {
  if (file == nullptr || *file == '\0') return "<unknown>";
  return std::string(file) + ":" + std::to_string(line);
}

}  // namespace

std::size_t AccessChecker::begin_loop(std::size_t /*begin*/,
                                      std::size_t /*end*/) noexcept {
  // begin_loop fires on the launching thread, so the innermost chunk on
  // this thread's stack — if any — is the chunk the new loop is nested
  // inside; its path becomes the new loop's prefix.
  LoopInfo info;
  if (!t_active_chunks.empty())
    info.prefix =
        static_cast<ChunkLog*>(t_active_chunks.back())->id.path;
  std::lock_guard lock(mutex_);
  ++loops_;
  loop_infos_.push_back(std::move(info));
  return loops_;  // 1-based token; 0 stays "no loop"
}

void AccessChecker::end_loop(std::size_t /*loop_token*/) noexcept {}

void AccessChecker::begin_chunk(std::size_t loop_token, std::size_t lo,
                                std::size_t hi, std::size_t lane) noexcept {
  ChunkLog* log = nullptr;
  {
    std::lock_guard lock(mutex_);
    chunks_.emplace_back();
    log = &chunks_.back();
    log->id.loop = loop_token;
    log->id.index = next_chunk_++;
    log->id.lo = lo;
    log->id.hi = hi;
    log->id.lane = lane;
    if (loop_token >= 1 && loop_token <= loop_infos_.size())
      log->id.path = loop_infos_[loop_token - 1].prefix;
    log->id.path.push_back({loop_token, log->id.index});
  }
  t_active_chunks.push_back(log);
}

void AccessChecker::end_chunk() noexcept {
  if (!t_active_chunks.empty()) t_active_chunks.pop_back();
}

void AccessChecker::record(const void* base, std::size_t lo_byte,
                           std::size_t hi_byte, bool is_write,
                           const char* tag, const char* file,
                           unsigned line) noexcept {
  if (lo_byte >= hi_byte) return;  // empty ranges carry no information
  if (t_active_chunks.empty()) {
    // Outside any chunk: sequential with every loop, so never a race.
    unscoped_records_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto& log = *static_cast<ChunkLog*>(t_active_chunks.back());
  // The log belongs to this thread until end_chunk, so no lock. Coalesce
  // with the previous interval when a sequential sweep extends it.
  if (!log.intervals.empty()) {
    Interval& last = log.intervals.back();
    if (last.base == base && last.write == is_write && last.tag == tag &&
        lo_byte <= last.hi_byte && lo_byte >= last.lo_byte) {
      last.hi_byte = std::max(last.hi_byte, hi_byte);
      return;
    }
  }
  log.intervals.push_back({base, tag, lo_byte, hi_byte, is_write, file,
                           line});
}

RaceReport AccessChecker::report() const {
  RaceReport rep;
  std::lock_guard lock(mutex_);
  rep.loops = loops_;
  rep.chunks = chunks_.size();
  rep.unscoped_records = unscoped_records_.load(std::memory_order_relaxed);

  // Group intervals by (root loop, buffer): everything under one
  // top-level loop shares a concurrency scope (nested loops included);
  // different root loops are barrier-separated. Whether two chunks in a
  // group can actually race is decided per pair from their nesting paths.
  struct Item {
    const Interval* iv;
    const ChunkLog* chunk;
  };
  std::map<std::pair<std::size_t, const void*>, std::vector<Item>> groups;
  for (const ChunkLog& chunk : chunks_) {
    rep.intervals += chunk.intervals.size();
    const std::size_t root =
        chunk.id.path.empty() ? chunk.id.loop : chunk.id.path.front().loop;
    for (const Interval& iv : chunk.intervals)
      groups[{root, iv.base}].push_back({&iv, &chunk});
  }

  for (auto& [key, items] : groups) {
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      return a.iv->lo_byte < b.iv->lo_byte;
    });
    // Left-to-right sweep with an active set; one conflict per chunk pair.
    std::vector<Item> active;
    std::set<std::pair<std::size_t, std::size_t>> reported;
    for (const Item& item : items) {
      std::erase_if(active, [&](const Item& a) {
        return a.iv->hi_byte <= item.iv->lo_byte;
      });
      for (const Item& other : active) {
        if (other.chunk == item.chunk) continue;
        if (!other.iv->write && !item.iv->write) continue;
        if (!chunks_may_race(other.chunk->id, item.chunk->id)) continue;
        const auto pair = std::minmax(other.chunk->id.index,
                                      item.chunk->id.index);
        if (!reported.insert(pair).second) continue;
        // Deterministic order: the lower chunk index reports first.
        const Item& first =
            other.chunk->id.index < item.chunk->id.index ? other : item;
        const Item& second = &first == &other ? item : other;
        Conflict c;
        c.buffer = item.iv->tag != nullptr ? item.iv->tag : "<unnamed>";
        c.base = key.second;
        c.lo_byte = std::max(other.iv->lo_byte, item.iv->lo_byte);
        c.hi_byte = std::min(other.iv->hi_byte, item.iv->hi_byte);
        c.write_write = other.iv->write && item.iv->write;
        c.same_lane = other.chunk->id.lane == item.chunk->id.lane;
        c.first = first.chunk->id;
        c.second = second.chunk->id;
        c.first_where = where_string(first.iv->file, first.iv->line);
        c.second_where = where_string(second.iv->file, second.iv->line);
        rep.conflicts.push_back(std::move(c));
      }
      active.push_back(item);
    }
  }

  std::sort(rep.conflicts.begin(), rep.conflicts.end(),
            [](const Conflict& a, const Conflict& b) {
              if (a.first.loop != b.first.loop)
                return a.first.loop < b.first.loop;
              if (a.first.index != b.first.index)
                return a.first.index < b.first.index;
              return a.second.index < b.second.index;
            });
  return rep;
}

void AccessChecker::reset() {
  std::lock_guard lock(mutex_);
  PE_REQUIRE(t_active_chunks.empty(),
             "reset while a chunk is active on this thread");
  chunks_.clear();
  loop_infos_.clear();
  next_chunk_ = 0;
  loops_ = 0;
  unscoped_records_.store(0, std::memory_order_relaxed);
}

ScopedAccessCheck::ScopedAccessCheck(AccessChecker& checker)
    : checker_(checker) {
  PE_REQUIRE(access_hook() == nullptr,
             "another access hook is already installed");
  set_access_hook(&checker_);
}

ScopedAccessCheck::~ScopedAccessCheck() { set_access_hook(nullptr); }

}  // namespace pe::analysis
