#include "perfeng/analysis/race_report.hpp"

#include <cstddef>
#include <sstream>
#include <string>

namespace pe::analysis {

namespace {

void append_chunk(std::ostream& os, const ChunkProvenance& c,
                  const std::string& where) {
  os << "chunk #" << c.index << " (loop " << c.loop << ", iters [" << c.lo
     << ", " << c.hi << "), lane " << c.lane << ", recorded at " << where
     << ")";
}

}  // namespace

std::string RaceReport::to_string() const {
  std::ostringstream os;
  os << "RaceReport: " << conflicts.size() << " conflict(s) across "
     << loops << " loop(s), " << chunks << " chunk(s), " << intervals
     << " interval(s)";
  if (unscoped_records > 0)
    os << ", " << unscoped_records << " unscoped record(s) ignored";
  os << "\n";
  std::size_t n = 0;
  for (const Conflict& c : conflicts) {
    os << "  [" << ++n << "] " << (c.write_write ? "write/write" : "write/read")
       << " overlap on '" << c.buffer << "' bytes [" << c.lo_byte << ", "
       << c.hi_byte << ")";
    if (c.same_lane) os << " [latent: both chunks ran on one lane]";
    os << ": ";
    append_chunk(os, c.first, c.first_where);
    os << " vs ";
    append_chunk(os, c.second, c.second_where);
    os << "\n";
  }
  return os.str();
}

}  // namespace pe::analysis
