#include "perfeng/analysis/race_report.hpp"

#include <cstddef>
#include <sstream>
#include <string>

namespace pe::analysis {

namespace {

void append_chunk(std::ostream& os, const ChunkProvenance& c,
                  const std::string& where) {
  os << "chunk #" << c.index << " (loop " << c.loop << ", iters [" << c.lo
     << ", " << c.hi << "), lane " << c.lane;
  if (c.path.size() > 1) {
    os << ", nested via";
    for (std::size_t i = 0; i + 1 < c.path.size(); ++i)
      os << " loop " << c.path[i].loop << "/chunk #" << c.path[i].chunk;
  }
  os << ", recorded at " << where << ")";
}

}  // namespace

bool chunks_may_race(const ChunkProvenance& a,
                     const ChunkProvenance& b) noexcept {
  for (std::size_t i = 0; i < a.path.size() && i < b.path.size(); ++i) {
    const ChunkStep& sa = a.path[i];
    const ChunkStep& sb = b.path[i];
    if (sa.loop == sb.loop && sa.chunk == sb.chunk) continue;  // descend
    // First divergence. Same loop, different chunks: concurrent — the
    // entire subtrees under them may overlap in time. Different loops
    // launched from the same context: the earlier loop's completion
    // barrier ordered them.
    return sa.loop == sb.loop;
  }
  // One path is a prefix of the other (enclosing chunk vs. descendant:
  // the enclosing chunk blocks in run_bulk until the inner loop drains),
  // or the paths are identical (same chunk). Never concurrent.
  return false;
}

std::string RaceReport::to_string() const {
  std::ostringstream os;
  os << "RaceReport: " << conflicts.size() << " conflict(s) across "
     << loops << " loop(s), " << chunks << " chunk(s), " << intervals
     << " interval(s)";
  if (unscoped_records > 0)
    os << ", " << unscoped_records << " unscoped record(s) ignored";
  os << "\n";
  std::size_t n = 0;
  for (const Conflict& c : conflicts) {
    os << "  [" << ++n << "] " << (c.write_write ? "write/write" : "write/read")
       << " overlap on '" << c.buffer << "' bytes [" << c.lo_byte << ", "
       << c.hi_byte << ")";
    if (c.same_lane) os << " [latent: both chunks ran on one lane]";
    os << ": ";
    append_chunk(os, c.first, c.first_where);
    os << " vs ";
    append_chunk(os, c.second, c.second_where);
    os << "\n";
  }
  return os.str();
}

}  // namespace pe::analysis
