#include "perfeng/parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <latch>

#include "perfeng/common/error.hpp"
#include "perfeng/common/fault_hook.hpp"
#include "perfeng/common/trace_hook.hpp"

// Happens-before protocol (the TSan gate in docs/analysis.md holds the
// whole suite to zero reports against these edges):
//
//   publish → steal    every deque operation, own or stolen, happens under
//                      that deque's mutex — job payloads cross threads
//                      through the lock, never bare.
//   submit → park      `pending_` and `sleepers_` are seq_cst so the
//                      "increment pending, then check sleepers" producer
//                      and the "register sleeper, then re-check pending"
//                      consumer cannot both miss each other; the cv wait
//                      re-checks both under `mutex_`.
//   work → completion  bulk loops retire chunks with a release
//                      fetch_sub on `remaining` and the waiter re-reads
//                      it acquire (run_on_all uses std::latch), so chunk
//                      side effects are visible to whoever observes zero.
//   stats              `steals_` / absorbed-fault counters are relaxed:
//                      monotonic telemetry, never used for ordering.

namespace pe {

namespace {

/// Identity of the current thread within a pool, so `submit` can route to
/// the caller's own deque and `this_lane` can index lane-private scratch.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity t_worker;

/// Per-thread xorshift for randomized victim selection; cheaper and less
/// contended than a shared RNG, and stealing needs no reproducibility.
std::size_t next_victim_seed() {
  thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ULL ^
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return static_cast<std::size_t>(state);
}

/// Deque lock that reports contention to an installed tracer: a failed
/// try_lock means this acquisition had to wait behind another lane. The
/// uncontended path costs the same single CAS as a plain lock.
std::unique_lock<std::mutex> lock_traced(std::mutex& mu, std::size_t lane) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    PE_TRACE_EMIT(TraceEventKind::kContended, &mu, 0, 0, lane);
    lock.lock();
  }
  return lock;
}

}  // namespace

// --- ring-buffer deque ------------------------------------------------------

void ThreadPool::Deque::push_bottom_locked(Job job) {
  if (ring.empty()) ring.resize(64);
  const std::size_t cap = ring.size();
  if (bottom - top == cap) {
    // Grow geometrically so steady-state pushes never allocate.
    std::vector<Job> bigger(cap * 2);
    for (std::size_t k = top; k != bottom; ++k)
      bigger[k & (bigger.size() - 1)] = ring[k & (cap - 1)];
    ring = std::move(bigger);
  }
  ring[bottom & (ring.size() - 1)] = job;
  ++bottom;
}

ThreadPool::Job ThreadPool::Deque::pop_bottom(std::size_t lane) {
  const auto lock = lock_traced(mu, lane);
  if (bottom == top) return {};
  --bottom;
  return ring[bottom & (ring.size() - 1)];
}

ThreadPool::Job ThreadPool::Deque::steal_top(std::size_t lane) {
  const auto lock = lock_traced(mu, lane);
  if (bottom == top) return {};
  Job job = ring[top & (ring.size() - 1)];
  ++top;
  return job;
}

std::size_t ThreadPool::Deque::purge_locked(const void* arg) {
  const std::size_t mask = ring.empty() ? 0 : ring.size() - 1;
  std::size_t write = top;
  for (std::size_t read = top; read != bottom; ++read) {
    const Job job = ring[read & mask];
    if (job.arg != arg) {
      ring[write & mask] = job;
      ++write;
    }
  }
  const std::size_t removed = bottom - write;
  bottom = write;
  return removed;
}

// --- pool lifecycle ---------------------------------------------------------

ThreadPool::ThreadPool(std::size_t threads) {
  PE_REQUIRE(threads >= 1, "pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.push_back(std::make_unique<Worker>());
  for (std::size_t i = 0; i < threads; ++i)
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    closing_.store(true, std::memory_order_seq_cst);
  }
  cv_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

void ThreadPool::ensure_open() const {
  if (closing_.load(std::memory_order_acquire))
    throw Error("ThreadPool: submit after shutdown");
}

std::size_t ThreadPool::default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::this_lane() const noexcept {
  return t_worker.pool == this ? t_worker.index : workers_.size();
}

// --- submission -------------------------------------------------------------

void ThreadPool::enqueue(Job job) {
  ensure_open();
  // Count the job before it becomes stealable: a consumer may pop it the
  // instant it lands, and `pending_` must never underflow.
  pending_.fetch_add(1, std::memory_order_seq_cst);
  // Emit before the push: a worker may claim the job the instant it lands,
  // and its kTaskStart must find this kSubmit earlier in the trace.
  PE_TRACE_EMIT(TraceEventKind::kSubmit, job.arg, 1, 0, this_lane());
  if (t_worker.pool == this) {
    Deque& mine = workers_[t_worker.index]->deque;
    const auto lock = lock_traced(mine.mu, t_worker.index);
    mine.push_bottom_locked(job);
  } else {
    std::lock_guard lock(mutex_);
    inbox_.push_back(job);
  }
  announce(1);
}

std::size_t ThreadPool::bulk_broadcast(Job job) {
  ensure_open();
  const std::size_t copies = workers_.size();
  pending_.fetch_add(copies, std::memory_order_seq_cst);
  // Emit before the pushes (see enqueue): claimed copies' kTaskStart
  // events must sort after the one kSubmit they all correlate with.
  PE_TRACE_EMIT(TraceEventKind::kSubmit, job.arg, copies, 0, this_lane());
  for (auto& w : workers_) {
    const auto lock = lock_traced(w->deque.mu, this_lane());
    w->deque.push_bottom_locked(job);
  }
  announce(copies);
  return copies;
}

std::size_t ThreadPool::bulk_purge(const void* arg) {
  std::size_t removed = 0;
  for (auto& w : workers_) {
    std::lock_guard lock(w->deque.mu);
    removed += w->deque.purge_locked(arg);
  }
  {
    std::lock_guard lock(mutex_);
    const auto is_mine = [arg](const Job& job) { return job.arg == arg; };
    const auto cut = std::remove_if(inbox_.begin(), inbox_.end(), is_mine);
    removed += static_cast<std::size_t>(inbox_.end() - cut);
    inbox_.erase(cut, inbox_.end());
  }
  if (removed > 0) pending_.fetch_sub(removed, std::memory_order_seq_cst);
  return removed;
}

void ThreadPool::enqueue_pinned(std::size_t worker, Job job) {
  // Pinned jobs are deliberately *not* counted in pending_: only their
  // owner can run them, so waking thieves for them would spin the pool.
  {
    std::lock_guard lock(workers_[worker]->pinned_mu);
    workers_[worker]->pinned.push_back(job);
  }
  std::lock_guard lock(mutex_);
  cv_.notify_all();
}

void ThreadPool::announce(std::size_t jobs) noexcept {
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  std::lock_guard lock(mutex_);
  if (jobs == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

// --- worker loop ------------------------------------------------------------

ThreadPool::Job ThreadPool::find_work(std::size_t index) {
  Worker& me = *workers_[index];
  {
    std::lock_guard lock(me.pinned_mu);
    if (!me.pinned.empty()) {
      Job job = me.pinned.front();
      me.pinned.pop_front();
      return job;
    }
  }
  if (Job job = me.deque.pop_bottom(index)) {
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    return job;
  }
  {
    std::lock_guard lock(mutex_);
    if (!inbox_.empty()) {
      Job job = inbox_.front();
      inbox_.pop_front();
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      return job;
    }
  }
  const std::size_t n = workers_.size();
  if (n > 1) {
    const std::size_t start = next_victim_seed() % n;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t victim = (start + k) % n;
      if (victim == index) continue;
      if (Job job = workers_[victim]->deque.steal_top(index)) {
        pending_.fetch_sub(1, std::memory_order_seq_cst);
        steals_.fetch_add(1, std::memory_order_relaxed);
        PE_TRACE_EMIT(TraceEventKind::kSteal, job.arg, victim, 0, index);
        return job;
      }
    }
  }
  return {};
}

void ThreadPool::run_job(Job job) noexcept {
  // Chaos site: an injected worker fault is absorbed (and counted), never
  // allowed to drop the job — dropping would leave a future forever
  // unready, or a bulk loop's completion latch forever short.
  try {
    fault_point(fault_sites::kPoolWorker);
  } catch (...) {
    absorbed_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  // Packaged tasks carry their exceptions through the future and bulk jobs
  // capture theirs in the loop record; anything that escapes anyway must
  // not take down this worker.
  PE_TRACE_EMIT(TraceEventKind::kTaskStart, job.arg, 0, 0, t_worker.index);
  try {
    job.fn(job.arg, t_worker.index);
  } catch (...) {
    escaped_exceptions_.fetch_add(1, std::memory_order_relaxed);
  }
  PE_TRACE_EMIT(TraceEventKind::kTaskFinish, job.arg, 0, 0, t_worker.index);
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker = {this, index};
  unsigned idle_rounds = 0;
  for (;;) {
    if (Job job = find_work(index)) {
      idle_rounds = 0;
      run_job(job);
      continue;
    }
    // Exponential backoff: rescan a few times, then yield increasingly
    // often, then park on the condition variable.
    ++idle_rounds;
    if (idle_rounds <= 4) continue;
    if (idle_rounds <= 32) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock lock(mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    PE_TRACE_EMIT(TraceEventKind::kPark, this, 0, 0, index);
    cv_.wait(lock, [&] {
      if (closing_.load(std::memory_order_seq_cst)) return true;
      if (pending_.load(std::memory_order_seq_cst) > 0) return true;
      std::lock_guard pinned_lock(workers_[index]->pinned_mu);
      return !workers_[index]->pinned.empty();
    });
    PE_TRACE_EMIT(TraceEventKind::kUnpark, this, 0, 0, index);
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (closing_.load(std::memory_order_seq_cst) &&
        pending_.load(std::memory_order_seq_cst) == 0) {
      std::lock_guard pinned_lock(workers_[index]->pinned_mu);
      if (workers_[index]->pinned.empty()) return;
    }
    idle_rounds = 0;
  }
}

// --- run_on_all -------------------------------------------------------------

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& fn) {
  ensure_open();
  const std::size_t n = workers_.size();
  struct RunAllState {
    const std::function<void(std::size_t)>& fn;
    std::latch all_started;
    std::atomic<std::size_t> remaining;
    std::mutex error_mu;
    std::exception_ptr first_error;
    RunAllState(const std::function<void(std::size_t)>& f, std::size_t lanes)
        : fn(f),
          all_started(static_cast<std::ptrdiff_t>(lanes)),
          remaining(lanes) {}
  };
  RunAllState state(fn, n);
  const Job job{+[](void* arg, std::size_t lane) {
                  auto& s = *static_cast<RunAllState*>(arg);
                  // Block until every worker holds its pinned job, so each
                  // of the n activities runs on a distinct thread.
                  s.all_started.arrive_and_wait();
                  try {
                    s.fn(lane);
                  } catch (...) {
                    std::lock_guard lock(s.error_mu);
                    if (!s.first_error)
                      s.first_error = std::current_exception();
                  }
                  s.remaining.fetch_sub(1, std::memory_order_release);
                  s.remaining.notify_one();
                },
                &state};
  for (std::size_t w = 0; w < n; ++w) enqueue_pinned(w, job);
  // Wait for every lane before rethrowing: returning (or unwinding) early
  // would destroy the state and `fn` while workers still use them.
  for (;;) {
    const std::size_t left = state.remaining.load(std::memory_order_acquire);
    if (left == 0) break;
    state.remaining.wait(left, std::memory_order_acquire);
  }
  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace pe
