#include "perfeng/parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <latch>

#include "perfeng/common/error.hpp"
#include "perfeng/common/fault_hook.hpp"

namespace pe {

ThreadPool::ThreadPool(std::size_t threads) {
  PE_REQUIRE(threads >= 1, "pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    closing_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ensure_open_locked() const {
  if (closing_) throw Error("ThreadPool: submit after shutdown");
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return closing_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closing_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Chaos site: an injected worker fault is absorbed (and counted), never
    // allowed to drop the task — dropping would leave its future forever
    // unready and wedge the submitter.
    try {
      fault_point(fault_sites::kPoolWorker);
    } catch (...) {
      absorbed_faults_.fetch_add(1, std::memory_order_relaxed);
    }
    // Tasks are packaged, so their exceptions travel through the future;
    // anything that escapes anyway must not take down this worker.
    try {
      task();
    } catch (...) {
      escaped_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& fn) {
  const std::size_t n = workers_.size();
  std::latch all_started(static_cast<std::ptrdiff_t>(n));
  std::vector<std::future<void>> done;
  done.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    done.push_back(submit([&, i] {
      // Block until every worker holds one of these tasks, so each of the n
      // tasks is guaranteed to run on a distinct thread.
      all_started.arrive_and_wait();
      fn(i);
    }));
  }
  // Wait for every lane before rethrowing: returning (or unwinding) early
  // would destroy the latch and `fn` while other workers still use them.
  std::exception_ptr first_error;
  for (auto& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace pe
