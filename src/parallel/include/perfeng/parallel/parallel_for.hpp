#pragma once

/// \file parallel_for.hpp
/// Data-parallel loops and reductions over a ThreadPool.
///
/// Two scheduling policies mirror OpenMP's `schedule(static)` and
/// `schedule(dynamic)`: static partitioning gives each worker one contiguous
/// block (good for uniform work, and the policy whose imbalance the
/// load-imbalance performance pattern in Assignment 4 demonstrates); dynamic
/// scheduling hands out fixed-size chunks from an atomic counter (good for
/// irregular work such as power-law SpMV rows).

#include <atomic>
#include <cstddef>
#include <future>
#include <vector>

#include "perfeng/common/error.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace pe {

/// Loop scheduling policy.
enum class Schedule { kStatic, kDynamic };

/// Execute `body(i)` for every i in [begin, end) on the pool.
///
/// `chunk` is the dynamic-scheduling grain; ignored for static scheduling
/// (where the range is split into pool.size() contiguous blocks).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, Schedule schedule = Schedule::kStatic,
                  std::size_t chunk = 64) {
  PE_REQUIRE(begin <= end, "empty or inverted range");
  PE_REQUIRE(chunk >= 1, "chunk must be positive");
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t workers = pool.size();
  if (workers == 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::vector<std::future<void>> futures;
  if (schedule == Schedule::kStatic) {
    const std::size_t block = (n + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t lo = begin + w * block;
      if (lo >= end) break;
      const std::size_t hi = std::min(end, lo + block);
      futures.push_back(pool.submit([lo, hi, &body] {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }));
    }
  } else {
    auto next = std::make_shared<std::atomic<std::size_t>>(begin);
    for (std::size_t w = 0; w < workers; ++w) {
      futures.push_back(pool.submit([next, begin, end, chunk, &body] {
        (void)begin;
        for (;;) {
          const std::size_t lo =
              next->fetch_add(chunk, std::memory_order_relaxed);
          if (lo >= end) return;
          const std::size_t hi = std::min(end, lo + chunk);
          for (std::size_t i = lo; i < hi; ++i) body(i);
        }
      }));
    }
  }
  for (auto& f : futures) f.get();  // propagate exceptions
}

/// Parallel reduction: returns combine-fold of `map(i)` over [begin, end),
/// starting from `identity`. `combine` must be associative.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  T identity, Map&& map, Combine&& combine) {
  PE_REQUIRE(begin <= end, "empty or inverted range");
  const std::size_t n = end - begin;
  if (n == 0) return identity;
  const std::size_t workers = pool.size();
  if (workers == 1) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  const std::size_t block = (n + workers - 1) / workers;
  std::vector<std::future<T>> futures;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * block;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + block);
    futures.push_back(pool.submit([lo, hi, identity, &map, &combine] {
      T acc = identity;
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
      return acc;
    }));
  }
  T acc = identity;
  for (auto& f : futures) acc = combine(acc, f.get());
  return acc;
}

}  // namespace pe
