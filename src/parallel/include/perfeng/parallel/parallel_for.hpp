#pragma once

/// \file parallel_for.hpp
/// Data-parallel loops and reductions over a ThreadPool.
///
/// Three scheduling policies mirror OpenMP's `schedule(static | dynamic |
/// guided)`: static partitioning gives each worker one contiguous
/// balanced block (good for uniform work, and the policy whose imbalance the
/// load-imbalance performance pattern in Assignment 4 demonstrates); dynamic
/// scheduling hands out fixed-size chunks from an atomic counter (good for
/// irregular work such as power-law SpMV rows); guided scheduling starts
/// with large chunks and halves them as the range drains, trading dynamic's
/// dispatch frequency against static's tail imbalance.
///
/// Every loop uses the pool's bulk-submission fast path: one shared loop
/// record on the caller's stack (an atomic chunk cursor plus a completion
/// latch), one POD job broadcast per worker, and the calling thread
/// executing chunks itself instead of blocking in `future::get`. There are
/// **zero per-chunk heap allocations** — no `packaged_task`, no futures —
/// so per-chunk dispatch costs tens of nanoseconds instead of a global-lock
/// handoff plus an allocation (measure it with `bench/scheduler_overhead`).
/// Exceptions thrown by loop bodies are captured in the loop record, stop
/// further chunk claims, and the first one is rethrown on the calling
/// thread once the loop has quiesced.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <source_location>
#include <utility>
#include <vector>

#include "perfeng/common/access_hook.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/common/trace_hook.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace pe {

/// Loop scheduling policy.
enum class Schedule { kStatic, kDynamic, kGuided };

namespace detail {

/// Balanced static partition of `n` iterations (offset by `begin`) into
/// `parts` contiguous blocks: every block gets `n / parts` iterations and
/// the remainder is distributed one-per-block from the front, so block
/// sizes never differ by more than one. (The previous ceil-division
/// partition could leave the last worker with up to `parts - 1` fewer
/// iterations — or no block at all — when `n` was slightly above a
/// multiple of `parts`.)
inline std::pair<std::size_t, std::size_t> static_block(std::size_t begin,
                                                        std::size_t n,
                                                        std::size_t parts,
                                                        std::size_t b) {
  const std::size_t base = n / parts;
  const std::size_t rem = n % parts;
  const std::size_t lo = begin + b * base + std::min(b, rem);
  return {lo, lo + base + (b < rem ? 1 : 0)};
}

/// Shared record of one bulk loop: lives on the submitting thread's stack;
/// workers reach it through the broadcast job's `arg` pointer. Claiming a
/// chunk is one atomic RMW on `cursor`; completion is tracked by counting
/// retired job copies (executed to completion or reclaimed by purge), so
/// the record can be safely destroyed as soon as the wait returns.
template <typename ChunkFn>
struct BulkLoop {
  const std::size_t begin, n;
  ChunkFn& chunk_fn;
  const Schedule schedule;
  const std::size_t grain;  ///< dynamic chunk size / guided minimum
  const std::size_t parts;  ///< static block count
  const std::size_t lanes;  ///< executors: workers + submitting thread
  const std::size_t limit;  ///< cursor bound (parts or n); cancel target
  const std::size_t loop_token;  ///< race-checker loop identity (0 = none)
  const char* file;         ///< submitting call site, for trace provenance
  const std::uint32_t line;

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> retired{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;

  BulkLoop(std::size_t begin_, std::size_t n_, ChunkFn& fn, Schedule sched,
           std::size_t grain_, std::size_t workers, std::size_t loop_token_,
           const char* file_, std::uint32_t line_)
      : begin(begin_),
        n(n_),
        chunk_fn(fn),
        schedule(sched),
        grain(grain_),
        parts(std::min(workers, n_)),
        lanes(workers + 1),
        limit(sched == Schedule::kStatic ? std::min(workers, n_) : n_),
        loop_token(loop_token_),
        file(file_),
        line(line_) {}

  /// Claim the next chunk; {x, x} means the range is drained (static block
  /// sizes are monotone non-increasing, so the first empty block implies
  /// every later one is empty too).
  std::pair<std::size_t, std::size_t> claim() {
    switch (schedule) {
      case Schedule::kStatic: {
        const std::size_t b =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (b >= parts) return {0, 0};
        return static_block(begin, n, parts, b);
      }
      case Schedule::kDynamic: {
        const std::size_t off =
            cursor.fetch_add(grain, std::memory_order_relaxed);
        if (off >= n) return {0, 0};
        return {begin + off, begin + std::min(n, off + grain)};
      }
      case Schedule::kGuided: {
        std::size_t off = cursor.load(std::memory_order_relaxed);
        for (;;) {
          if (off >= n) return {0, 0};
          const std::size_t remaining = n - off;
          const std::size_t size =
              std::min(remaining, std::max(grain, remaining / (2 * lanes)));
          if (cursor.compare_exchange_weak(off, off + size,
                                           std::memory_order_relaxed))
            return {begin + off, begin + off + size};
        }
      }
    }
    return {0, 0};
  }

  void record_error() {
    {
      std::lock_guard lock(error_mu);
      if (!error) error = std::current_exception();
    }
    failed.store(true, std::memory_order_release);
    // Stop handing out chunks; claims already in flight still run.
    cursor.store(limit, std::memory_order_relaxed);
  }

  void execute(std::size_t lane) {
    // One hook load per claimed job copy, amortized over all its chunks:
    // the disabled per-chunk cost is two register branches, not two atomic
    // loads (bench/scheduler_trace --check holds this under 2% of chunk
    // dispatch).
    TraceHook* const trace = detail::trace_hook_fast();
    for (;;) {
      const auto [lo, hi] = claim();
      if (lo >= hi) return;
      // The chunk scope tells an installed race checker (see
      // perfeng/analysis) which [lo, hi) this thread claims; a no-op
      // otherwise. RAII so the announcement closes even on a throw.
      AccessChunkScope scope(loop_token, lo, hi, lane);
      PE_TRACE_EMIT_CACHED(trace, TraceEventKind::kChunkStart, this, lo, hi,
                           lane, file, line);
      try {
        chunk_fn(lo, hi, lane);
      } catch (...) {
        record_error();
      }
      PE_TRACE_EMIT_CACHED(trace, TraceEventKind::kChunkFinish, this, lo, hi,
                           lane, file, line);
    }
  }

  /// Job entry point run by workers; the submitting thread calls
  /// `execute` directly instead.
  static void run(void* arg, std::size_t lane) {
    auto& loop = *static_cast<BulkLoop*>(arg);
    loop.execute(lane);
    loop.retired.fetch_add(1, std::memory_order_release);
    loop.retired.notify_one();
  }
};

/// RAII loop announcement for an installed race checker. The checker
/// hands back a loop token tying every chunk to this loop; because
/// `begin_loop` fires on the launching thread — inside the launching
/// chunk, for a nested loop — the checker can reconstruct the full
/// loop-nesting path and diff inner loops launched from concurrent outer
/// chunks against each other (see docs/analysis.md).
struct AccessLoopScope {
  AccessLoopScope(std::size_t begin, std::size_t end) noexcept
      : token_(access_begin_loop(begin, end)) {}
  ~AccessLoopScope() { access_end_loop(token_); }
  AccessLoopScope(const AccessLoopScope&) = delete;
  AccessLoopScope& operator=(const AccessLoopScope&) = delete;

  [[nodiscard]] std::size_t token() const noexcept { return token_; }

 private:
  std::size_t token_;
};

/// Drive one bulk loop to completion: broadcast, participate, reclaim
/// unstarted copies, wait for the stragglers, rethrow the first error.
template <typename ChunkFn>
void run_bulk(ThreadPool& pool, std::size_t begin, std::size_t end,
              ChunkFn&& chunk_fn, Schedule schedule, std::size_t grain,
              std::source_location loc = std::source_location::current()) {
  const std::size_t n = end - begin;
  const std::size_t workers = pool.size();
  AccessLoopScope loop_scope(begin, end);
  if (workers == 1 || n == 1) {
    // Inline: a 1-worker pool (or a single chunk) gains nothing from
    // dispatch, and inline execution keeps iteration order sequential.
    const std::size_t lane = pool.this_lane();
    AccessChunkScope scope(loop_scope.token(), begin, end, lane);
    PE_TRACE_EMIT_SITE(TraceEventKind::kLoopBegin, &chunk_fn, begin, end,
                       lane, loc.file_name(), loc.line());
    PE_TRACE_EMIT_SITE(TraceEventKind::kChunkStart, &chunk_fn, begin, end,
                       lane, loc.file_name(), loc.line());
    chunk_fn(begin, end, lane);
    PE_TRACE_EMIT_SITE(TraceEventKind::kChunkFinish, &chunk_fn, begin, end,
                       lane, loc.file_name(), loc.line());
    PE_TRACE_EMIT_SITE(TraceEventKind::kLoopEnd, &chunk_fn, begin, end,
                       lane, loc.file_name(), loc.line());
    return;
  }
  BulkLoop<ChunkFn> loop(begin, n, chunk_fn, schedule, grain, workers,
                         loop_scope.token(), loc.file_name(), loc.line());
  PE_TRACE_EMIT_SITE(TraceEventKind::kLoopBegin, &loop, begin, end,
                     pool.this_lane(), loc.file_name(), loc.line());
  const std::size_t pushed =
      pool.bulk_broadcast({&BulkLoop<ChunkFn>::run, &loop});
  loop.execute(pool.this_lane());
  // Own execution returned, so the cursor is drained: copies still queued
  // can contribute nothing — reclaim them instead of waiting for busy
  // workers to get around to them (this is also what makes nested
  // parallel_for deadlock-free on a fully occupied pool).
  const std::size_t purged = pool.bulk_purge(&loop);
  std::size_t done =
      loop.retired.fetch_add(purged, std::memory_order_acq_rel) + purged;
  while (done < pushed) {
    loop.retired.wait(done, std::memory_order_acquire);
    done = loop.retired.load(std::memory_order_acquire);
  }
  PE_TRACE_EMIT_SITE(TraceEventKind::kLoopEnd, &loop, begin, end,
                     pool.this_lane(), loc.file_name(), loc.line());
  if (loop.failed.load(std::memory_order_acquire))
    std::rethrow_exception(loop.error);
}

}  // namespace detail

/// Execute `fn(lo, hi, lane)` over contiguous chunks covering [begin, end).
///
/// The chunk-level sibling of `parallel_for`, for bodies that amortize
/// per-chunk setup or keep lane-private state: `lane` is the executing
/// worker's index, or `pool.size()` when the chunk runs on the submitting
/// thread — size lane-indexed scratch `pool.size() + 1`. `chunk` is the
/// dynamic grain / guided minimum; static scheduling produces one balanced
/// block per worker.
template <typename ChunkFn>
void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end, ChunkFn&& fn,
    Schedule schedule = Schedule::kStatic, std::size_t chunk = 64,
    std::source_location loc = std::source_location::current()) {
  PE_REQUIRE(begin <= end, "empty or inverted range");
  PE_REQUIRE(chunk >= 1, "chunk must be positive");
  if (begin == end) return;
  detail::run_bulk(pool, begin, end, std::forward<ChunkFn>(fn), schedule,
                   chunk, loc);
}

/// Execute `body(i)` for every i in [begin, end) on the pool.
///
/// `chunk` is the dynamic-scheduling grain (and the guided minimum);
/// ignored for static scheduling (where the range is split into
/// `pool.size()` contiguous balanced blocks).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, Schedule schedule = Schedule::kStatic,
                  std::size_t chunk = 64,
                  std::source_location loc = std::source_location::current()) {
  parallel_for_chunks(
      pool, begin, end,
      [&body](std::size_t lo, std::size_t hi, std::size_t /*lane*/) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      schedule, chunk, loc);
}

/// Parallel reduction: returns combine-fold of `map(i)` over [begin, end),
/// starting from `identity`. `combine` must be associative.
///
/// Ordering guarantee: the range is split into `min(pool.size(), n)`
/// balanced blocks; each block is folded left-to-right from a copy of
/// `identity`, and the block partials are folded left-to-right in block
/// order. For a fixed pool size the grouping is therefore *deterministic*
/// (bit-identical floating-point results run-to-run, regardless of thread
/// timing) — but the grouping, and hence the rounding, changes with
/// `pool.size()`. Use `parallel_reduce_ordered` when the result must also
/// be independent of the worker count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  T identity, Map&& map, Combine&& combine) {
  PE_REQUIRE(begin <= end, "empty or inverted range");
  const std::size_t n = end - begin;
  if (n == 0) return identity;
  const std::size_t workers = pool.size();
  if (workers == 1) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  const std::size_t parts = std::min(workers, n);
  std::vector<T> partials(parts, identity);
  parallel_for(
      pool, 0, parts,
      [&](std::size_t b) {
        const auto [lo, hi] = detail::static_block(begin, n, parts, b);
        T acc = identity;
        for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
        partials[b] = std::move(acc);
      },
      Schedule::kStatic);
  T acc = std::move(identity);
  for (T& partial : partials) acc = combine(acc, std::move(partial));
  return acc;
}

/// Deterministic-order parallel reduction: like `parallel_reduce`, but the
/// grouping is fixed blocks of `block` iterations folded in ascending
/// block order — so for a given `block` the result is **bit-identical
/// across runs and across pool sizes** (it depends only on the grouping,
/// never on thread count or timing). This is the variant statmodel fitting
/// uses so repeated fits reproduce exactly. It is not bit-identical to the
/// serial fold unless `combine` is exactly associative; the grouping is
/// simply fixed.
template <typename T, typename Map, typename Combine>
T parallel_reduce_ordered(ThreadPool& pool, std::size_t begin,
                          std::size_t end, T identity, Map&& map,
                          Combine&& combine, std::size_t block = 1024) {
  PE_REQUIRE(begin <= end, "empty or inverted range");
  PE_REQUIRE(block >= 1, "block must be positive");
  const std::size_t n = end - begin;
  if (n == 0) return identity;
  const std::size_t blocks = (n + block - 1) / block;
  std::vector<T> partials(blocks, identity);
  parallel_for(
      pool, 0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = begin + b * block;
        const std::size_t hi = std::min(end, lo + block);
        T acc = identity;
        for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
        partials[b] = std::move(acc);
      },
      Schedule::kDynamic, 1);
  T acc = std::move(identity);
  for (T& partial : partials) acc = combine(acc, std::move(partial));
  return acc;
}

}  // namespace pe
