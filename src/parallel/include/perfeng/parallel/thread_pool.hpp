#pragma once

/// \file thread_pool.hpp
/// The toolbox's shared-memory parallel substrate.
///
/// The course targets OpenMP/CUDA; this repository substitutes a from-scratch
/// thread pool so that every parallel kernel, scaling experiment, and
/// load-imbalance pattern runs on any host with only the standard library.
/// The pool is a fixed set of workers with a shared FIFO queue; `parallel_for`
/// style helpers are layered on top in parallel_for.hpp.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pe {

/// Fixed-size worker pool executing submitted tasks FIFO.
///
/// Thread-safe: `submit` may be called concurrently from any thread,
/// including from inside tasks (but a task must not block on work that can
/// only run on the pool it occupies a lane of, or it may deadlock when the
/// pool has one thread).
///
/// Exception-safe: a task that throws delivers its exception through the
/// submitter's future and never takes down the worker thread; anything
/// that still escapes task invocation itself is absorbed and counted
/// (`escaped_exceptions()`) rather than terminating the process. The
/// worker loop also hosts the `pool.worker` fault site: injected worker
/// faults are absorbed and counted (`absorbed_faults()`) without dropping
/// the task, so chaos runs exercise worker recovery without wedging
/// futures.
class ThreadPool {
 public:
  /// Create a pool with `threads` workers (>= 1). Defaults to the hardware
  /// concurrency, with a floor of 1.
  explicit ThreadPool(std::size_t threads = default_thread_count());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future carries the task's result or
  /// exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      ensure_open_locked();
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `fn(worker_index)` once on each of the pool's threads and wait.
  /// Used by microbenchmarks that need one pinned activity per worker.
  /// Waits for *every* lane to finish even when some throw (so `fn` is
  /// never referenced after return), then rethrows the first exception.
  void run_on_all(const std::function<void(std::size_t)>& fn);

  /// Default worker count: hardware_concurrency with a floor of 1.
  static std::size_t default_thread_count();

  /// Exceptions that escaped a task invocation (not the normal
  /// through-the-future path) and were absorbed by a worker.
  [[nodiscard]] std::size_t escaped_exceptions() const noexcept {
    return escaped_exceptions_.load(std::memory_order_relaxed);
  }

  /// Injected `pool.worker` faults absorbed by the worker loop.
  [[nodiscard]] std::size_t absorbed_faults() const noexcept {
    return absorbed_faults_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  void ensure_open_locked() const;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool closing_ = false;
  std::atomic<std::size_t> escaped_exceptions_{0};
  std::atomic<std::size_t> absorbed_faults_{0};
};

}  // namespace pe
