#pragma once

/// \file thread_pool.hpp
/// The toolbox's shared-memory parallel substrate.
///
/// The course targets OpenMP/CUDA; this repository substitutes a from-scratch
/// thread pool so that every parallel kernel, scaling experiment, and
/// load-imbalance pattern runs on any host with only the standard library.
/// The pool is a fixed set of workers with a shared FIFO queue; `parallel_for`
/// style helpers are layered on top in parallel_for.hpp.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pe {

/// Fixed-size worker pool executing submitted tasks FIFO.
///
/// Thread-safe: `submit` may be called concurrently from any thread,
/// including from inside tasks (but a task must not block on work that can
/// only run on the pool it occupies a lane of, or it may deadlock when the
/// pool has one thread).
class ThreadPool {
 public:
  /// Create a pool with `threads` workers (>= 1). Defaults to the hardware
  /// concurrency, with a floor of 1.
  explicit ThreadPool(std::size_t threads = default_thread_count());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future carries the task's result or
  /// exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      ensure_open_locked();
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `fn(worker_index)` once on each of the pool's threads and wait.
  /// Used by microbenchmarks that need one pinned activity per worker.
  void run_on_all(const std::function<void(std::size_t)>& fn);

  /// Default worker count: hardware_concurrency with a floor of 1.
  static std::size_t default_thread_count();

 private:
  void worker_loop();
  void ensure_open_locked() const;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool closing_ = false;
};

}  // namespace pe
