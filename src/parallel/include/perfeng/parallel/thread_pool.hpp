#pragma once

/// \file thread_pool.hpp
/// The toolbox's shared-memory parallel substrate: a work-stealing pool.
///
/// The course targets OpenMP/CUDA; this repository substitutes a from-scratch
/// scheduler so that every parallel kernel, scaling experiment, and
/// load-imbalance pattern runs on any host with only the standard library.
/// The original substrate was a single mutex-guarded FIFO queue, which meant
/// scaling experiments measured global-lock handoffs as much as the kernel
/// under study. The rebuilt pool is Cilk-style (Blumofe & Leiserson): each
/// worker owns a ring-buffer deque — the owner pushes and pops LIFO at the
/// bottom, thieves steal FIFO at the top under a light per-deque lock — with
/// randomized victim selection, exponential backoff, and a condition-variable
/// park for idle workers.
///
/// Two submission paths share the substrate:
///  - `submit` keeps the classic task-per-future contract (one heap-allocated
///    `packaged_task` per task). Tasks submitted from a worker thread go to
///    that worker's own deque (LIFO, cache-warm); external submissions land
///    in a shared inbox.
///  - `bulk_broadcast`/`bulk_purge` back the low-overhead `parallel_for`
///    fast path in parallel_for.hpp: one POD job record is replicated into
///    every worker deque (no heap allocation, no futures) and the submitting
///    thread participates in execution instead of blocking in `future::get`.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pe {

/// Work-stealing worker pool.
///
/// Thread-safe: `submit`, `bulk_broadcast`, and `bulk_purge` may be called
/// concurrently from any thread, including from inside tasks. A task must
/// not block on work that can only run on the pool it occupies a lane of
/// (the bulk path never does: the submitting thread executes chunks itself
/// and reclaims unstarted job copies, so nested `parallel_for` cannot
/// deadlock even when every other worker is busy).
///
/// Exception-safe: a task that throws delivers its exception through the
/// submitter's future (or, on the bulk path, through the loop's shared
/// record) and never takes down the worker thread; anything that still
/// escapes task invocation itself is absorbed and counted
/// (`escaped_exceptions()`) rather than terminating the process. The worker
/// loop also hosts the `pool.worker` fault site: injected worker faults are
/// absorbed and counted (`absorbed_faults()`) without dropping the task, so
/// chaos runs exercise worker recovery without wedging futures or the bulk
/// completion latch.
class ThreadPool {
 public:
  /// One schedulable unit. POD on purpose: bulk jobs are replicated by value
  /// into worker deques with no heap allocation. `fn` receives `arg` and the
  /// executing lane (worker index, or `size()` when run by an external
  /// participant thread).
  struct Job {
    void (*fn)(void* arg, std::size_t lane) = nullptr;
    void* arg = nullptr;

    explicit operator bool() const noexcept { return fn != nullptr; }
  };

  /// Create a pool with `threads` workers (>= 1). Defaults to the hardware
  /// concurrency, with a floor of 1.
  explicit ThreadPool(std::size_t threads = default_thread_count());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future carries the task's result or
  /// exception. Tasks submitted from a worker of this pool go to that
  /// worker's own deque (LIFO); external submissions go to the shared inbox.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto* task = new std::packaged_task<R()>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    try {
      enqueue(Job{&run_packaged<R>, task});
    } catch (...) {
      delete task;
      throw;
    }
    return result;
  }

  /// Run `fn(worker_index)` once on each of the pool's threads and wait.
  /// Used by microbenchmarks that need one pinned activity per worker; the
  /// per-worker jobs go to non-stealable pinned lanes, so each of the n
  /// activities is guaranteed its own thread. Waits for *every* lane to
  /// finish even when some throw (so `fn` is never referenced after
  /// return), then rethrows the first exception.
  void run_on_all(const std::function<void(std::size_t)>& fn);

  // --- bulk-submission fast path (used by parallel_for) -------------------

  /// Replicate `job` into every worker deque and wake the workers. Returns
  /// the number of copies pushed (== size()). No heap allocation. The
  /// caller owns `job.arg` and must keep it alive until every copy has been
  /// retired: executed to completion, or reclaimed with `bulk_purge`.
  std::size_t bulk_broadcast(Job job);

  /// Remove every not-yet-started copy of the job identified by `arg` from
  /// the worker deques and the inbox; returns how many were removed. After
  /// `bulk_purge(arg)` returns, copies are either retired-by-purge (counted
  /// here) or were already claimed by a worker that will run them to
  /// completion — so `purged + completed == pushed` is the safe-to-free
  /// condition for `arg`.
  std::size_t bulk_purge(const void* arg);

  /// Lane index of the calling thread: the worker index when called from a
  /// worker of this pool, `size()` otherwise. Lane-indexed scratch arrays
  /// (accumulators, private tables, pack buffers) should be sized
  /// `size() + 1` so external participants get the last slot.
  [[nodiscard]] std::size_t this_lane() const noexcept;

  /// Default worker count: hardware_concurrency with a floor of 1.
  static std::size_t default_thread_count();

  /// Exceptions that escaped a task invocation (not the normal
  /// through-the-future path) and were absorbed by a worker.
  [[nodiscard]] std::size_t escaped_exceptions() const noexcept {
    return escaped_exceptions_.load(std::memory_order_relaxed);
  }

  /// Injected `pool.worker` faults absorbed by the worker loop.
  [[nodiscard]] std::size_t absorbed_faults() const noexcept {
    return absorbed_faults_.load(std::memory_order_relaxed);
  }

  /// Successful steals (a worker executed a job taken from another worker's
  /// deque). Exposed for the scheduler's own tests and microbenchmarks.
  [[nodiscard]] std::size_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  /// Ring-buffer deque under a light lock: the owner pushes/pops at the
  /// bottom (LIFO), thieves steal from the top (FIFO). The ring grows
  /// geometrically, so steady-state pushes never allocate.
  struct Deque {
    std::mutex mu;
    std::vector<Job> ring;     // capacity is a power of two
    std::size_t top = 0;       // next steal slot
    std::size_t bottom = 0;    // next push slot; bottom - top == count

    void push_bottom_locked(Job job);
    [[nodiscard]] Job pop_bottom(std::size_t lane);
    [[nodiscard]] Job steal_top(std::size_t lane);
    std::size_t purge_locked(const void* arg);
  };

  /// Per-worker state. The pinned queue backs run_on_all and is never
  /// stolen from.
  struct Worker {
    Deque deque;
    std::mutex pinned_mu;
    std::deque<Job> pinned;
    std::thread thread;
  };

  template <typename R>
  static void run_packaged(void* arg, std::size_t /*lane*/) {
    std::unique_ptr<std::packaged_task<R()>> task(
        static_cast<std::packaged_task<R()>*>(arg));
    (*task)();
  }

  void worker_loop(std::size_t index);
  [[nodiscard]] Job find_work(std::size_t index);
  void enqueue(Job job);
  void enqueue_pinned(std::size_t worker, Job job);
  void announce(std::size_t jobs) noexcept;
  void run_job(Job job) noexcept;
  void ensure_open() const;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::deque<Job> inbox_;          // external submissions, guarded by mutex_
  mutable std::mutex mutex_;       // inbox + park/closing coordination
  std::condition_variable cv_;
  std::atomic<std::size_t> pending_{0};   // queued (not yet started) jobs
  std::atomic<std::size_t> sleepers_{0};  // workers parked on cv_
  std::atomic<bool> closing_{false};
  std::atomic<std::size_t> escaped_exceptions_{0};
  std::atomic<std::size_t> absorbed_faults_{0};
  std::atomic<std::size_t> steals_{0};
};

}  // namespace pe
