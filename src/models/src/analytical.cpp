#include "perfeng/models/analytical.hpp"

#include <algorithm>
#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe::models {

Calibration Calibration::from_machine(const machine::Machine& m) {
  m.check();
  Calibration calib;
  calib.peak_flops = m.peak_flops;
  calib.dram_bandwidth = m.dram_bandwidth();
  calib.cache_bandwidth = m.cache_bandwidth();
  calib.cache_bytes = m.largest_cache_bytes();
  calib.line_bytes = m.dram().line_bytes;
  return calib;
}

double traffic_time(double flops, double dram_bytes,
                    const Calibration& calib) {
  PE_REQUIRE(flops >= 0.0 && dram_bytes >= 0.0, "negative work");
  const double t_compute = flops / calib.peak_flops;
  const double t_memory = dram_bytes / calib.dram_bandwidth;
  return std::max(t_compute, t_memory);
}

// --------------------------------------------------------------- MatmulModel

MatmulModel::MatmulModel(std::size_t n, MatmulVariant variant,
                         Calibration calib)
    : n_(n), variant_(variant), calib_(calib) {
  PE_REQUIRE(n >= 1, "matrix order must be positive");
  PE_REQUIRE(calib.peak_flops > 0.0 && calib.dram_bandwidth > 0.0,
             "calibration must be positive");
}

double MatmulModel::flops() const {
  const double nd = static_cast<double>(n_);
  return 2.0 * nd * nd * nd;
}

std::size_t MatmulModel::tile_edge() const {
  std::size_t t = 8;
  while (3 * (t * 2) * (t * 2) * sizeof(double) <= calib_.cache_bytes)
    t *= 2;
  return std::min(t, n_);
}

double MatmulModel::dram_bytes() const {
  const double nd = static_cast<double>(n_);
  const double matrix_bytes = nd * nd * sizeof(double);
  const bool b_resident = matrix_bytes <= static_cast<double>(calib_.cache_bytes);
  // C is read and written once (write-allocate): 2 n^2 doubles of traffic.
  const double c_traffic = 2.0 * matrix_bytes;
  const double a_traffic = matrix_bytes;  // streamed row-wise with reuse

  switch (variant_) {
    case MatmulVariant::kNaiveIjk: {
      // B is walked down columns: one full line per element unless B is
      // cache-resident.
      const double b_traffic =
          b_resident ? matrix_bytes
                     : nd * nd * nd * static_cast<double>(calib_.line_bytes);
      return a_traffic + b_traffic + c_traffic;
    }
    case MatmulVariant::kInterchangedIkj: {
      // All streams sequential; B is re-streamed for every i unless
      // resident.
      const double b_traffic =
          b_resident ? matrix_bytes : nd * nd * nd * sizeof(double);
      return a_traffic + b_traffic + c_traffic;
    }
    case MatmulVariant::kTiled: {
      const double t = static_cast<double>(tile_edge());
      // Each A and B block is loaded n/t times over the computation.
      const double block_reloads = std::max(1.0, nd / t);
      const double ab_traffic = 2.0 * matrix_bytes * block_reloads;
      return ab_traffic + c_traffic;
    }
  }
  return 0.0;
}

double MatmulModel::predict_coarse() const {
  return flops() / calib_.peak_flops;
}

double MatmulModel::predict_traffic() const {
  return traffic_time(flops(), dram_bytes(), calib_);
}

double MatmulModel::predict_instruction(
    const microbench::OpCostTable& ops) const {
  // Inner loop: one multiply-add per step. In the naive column-walking
  // variant the dependency chain through the accumulator makes the FMA
  // *latency* visible; the interchanged/tiled variants expose independent
  // elements so the *throughput* cost applies.
  const auto& fma = ops.cost(microbench::Op::kFma);
  const double per_step = (variant_ == MatmulVariant::kNaiveIjk)
                              ? fma.latency_seconds
                              : fma.throughput_seconds;
  const double nd = static_cast<double>(n_);
  return nd * nd * nd * per_step;
}

// ------------------------------------------------------------ HistogramModel

HistogramModel::HistogramModel(std::size_t elements, std::size_t bins,
                               double zipf_skew, Calibration calib)
    : elements_(elements), bins_(bins), skew_(zipf_skew), calib_(calib) {
  PE_REQUIRE(elements >= 1, "need at least one element");
  PE_REQUIRE(bins >= 1, "need at least one bin");
  PE_REQUIRE(zipf_skew >= 0.0, "skew must be non-negative");
}

double HistogramModel::update_miss_probability() const {
  const double table_bytes =
      static_cast<double>(bins_) * sizeof(std::uint64_t);
  const double cache = static_cast<double>(calib_.cache_bytes);
  if (table_bytes <= cache) return 0.0;

  const std::size_t resident_bins =
      static_cast<std::size_t>(cache / sizeof(std::uint64_t));
  if (skew_ == 0.0) {
    // Uniform indices: hit probability is the resident fraction.
    return 1.0 - static_cast<double>(resident_bins) /
                     static_cast<double>(bins_);
  }
  // Zipf: probability mass of the `resident_bins` hottest bins,
  // P(rank <= k) = H_k,s / H_n,s, approximated with the integral form.
  auto harmonic = [this](double k) {
    if (std::abs(1.0 - skew_) < 1e-12) return std::log(k) + 0.5772156649;
    return (std::pow(k, 1.0 - skew_) - 1.0) / (1.0 - skew_) + 1.0;
  };
  const double covered = harmonic(static_cast<double>(resident_bins)) /
                         harmonic(static_cast<double>(bins_));
  return std::clamp(1.0 - covered, 0.0, 1.0);
}

double HistogramModel::dram_bytes() const {
  const double input_bytes = static_cast<double>(elements_) * sizeof(float);
  // A missing counter update costs a full line in and (eventually) out.
  const double miss_bytes = update_miss_probability() *
                            static_cast<double>(elements_) *
                            2.0 * static_cast<double>(calib_.line_bytes);
  return input_bytes + miss_bytes;
}

double HistogramModel::predict_coarse() const {
  // One load + one increment per element at cache speed.
  const double bytes_touched =
      static_cast<double>(elements_) * (sizeof(float) + 2.0 * sizeof(std::uint64_t));
  return bytes_touched / calib_.cache_bandwidth;
}

double HistogramModel::predict_traffic() const {
  const double cache_time = predict_coarse();
  const double dram_time = dram_bytes() / calib_.dram_bandwidth;
  return std::max(cache_time, dram_time);
}

// ----------------------------------------------------------------- SpmvModel

SpmvModel::SpmvModel(std::size_t rows, std::size_t cols, std::size_t nnz,
                     SpmvFormat format, double x_locality, Calibration calib)
    : rows_(rows),
      cols_(cols),
      nnz_(nnz),
      format_(format),
      x_locality_(x_locality),
      calib_(calib) {
  PE_REQUIRE(rows >= 1 && cols >= 1, "matrix must be non-empty");
  PE_REQUIRE(nnz >= 1, "need at least one non-zero");
  PE_REQUIRE(x_locality >= 0.0 && x_locality <= 1.0,
             "x locality must be in [0,1]");
}

double SpmvModel::flops() const { return 2.0 * static_cast<double>(nnz_); }

double SpmvModel::dram_bytes() const {
  const double nnz = static_cast<double>(nnz_);
  const double rows = static_cast<double>(rows_);
  const double cols = static_cast<double>(cols_);
  const double line = static_cast<double>(calib_.line_bytes);

  // Values are 8 bytes, indices 4 bytes, all streamed exactly once.
  double index_stream = 0.0;
  double vector_traffic = 0.0;
  switch (format_) {
    case SpmvFormat::kCsr:
      index_stream = nnz * 4.0 + (rows + 1.0) * 4.0;
      // y is written sequentially (read+write), x gathered per nnz.
      vector_traffic = rows * 16.0 +
                       nnz * ((1.0 - x_locality_) * line + x_locality_ * 0.0) +
                       cols * 8.0 * x_locality_;  // resident x read once
      break;
    case SpmvFormat::kCsc:
      index_stream = nnz * 4.0 + (cols + 1.0) * 4.0;
      // x is read sequentially, y scattered per nnz (read-modify-write).
      vector_traffic = cols * 8.0 +
                       nnz * ((1.0 - x_locality_) * 2.0 * line) +
                       rows * 16.0 * x_locality_;
      break;
    case SpmvFormat::kCoo:
      index_stream = nnz * 8.0;  // row and column index per entry
      vector_traffic = rows * 16.0 +
                       nnz * ((1.0 - x_locality_) * line) +
                       cols * 8.0 * x_locality_;
      break;
  }
  return nnz * 8.0 + index_stream + vector_traffic;
}

double SpmvModel::predict() const {
  return traffic_time(flops(), dram_bytes(), calib_);
}

namespace {

/// The shared shape of the adapters: a pure snapshot of (seconds, flops,
/// bytes) taken now, so later mutation of the model cannot skew a tree
/// that already captured the evaluation.
ModelEval traffic_eval(std::string name, double seconds, double flops,
                       double bytes) {
  Evaluation e;
  e.seconds = seconds;
  e.footprint.flops = flops;
  e.footprint.bytes = bytes;
  return ModelEval::constant(std::move(name), e);
}

}  // namespace

ModelEval MatmulModel::eval() const {
  const char* variant = "tiled";
  switch (variant_) {
    case MatmulVariant::kNaiveIjk: variant = "naive-ijk"; break;
    case MatmulVariant::kInterchangedIkj: variant = "interchanged-ikj"; break;
    case MatmulVariant::kTiled: variant = "tiled"; break;
  }
  return traffic_eval(std::string("analytical.matmul.") + variant,
                      predict_traffic(), flops(), dram_bytes());
}

ModelEval HistogramModel::eval() const {
  return traffic_eval("analytical.histogram", predict_traffic(),
                      static_cast<double>(elements_), dram_bytes());
}

ModelEval SpmvModel::eval() const {
  return traffic_eval("analytical.spmv", predict(), flops(), dram_bytes());
}

}  // namespace pe::models
