#include "perfeng/models/spmv_model.hpp"

#include <algorithm>

#include "perfeng/common/error.hpp"

namespace pe::models {

namespace {

constexpr double kValueBytes = 8.0;  // double
constexpr double kIndexBytes = 4.0;  // uint32_t

}  // namespace

SpmvFormatModel::SpmvFormatModel(double peak_flops, double dram_bandwidth)
    : peak_flops_(peak_flops), dram_bandwidth_(dram_bandwidth) {
  PE_REQUIRE(peak_flops > 0.0, "peak FLOP/s must be positive");
  PE_REQUIRE(dram_bandwidth > 0.0, "DRAM bandwidth must be positive");
}

SpmvFormatModel SpmvFormatModel::from_machine(const machine::Machine& m) {
  return SpmvFormatModel(m.peak_flops, m.dram_bandwidth());
}

const std::vector<std::string>& SpmvFormatModel::format_names() {
  static const std::vector<std::string> names = {"csr", "csc", "coo", "ell",
                                                 "sell"};
  return names;
}

double SpmvFormatModel::traffic_bytes(const SpmvShape& shape,
                                      const std::string& format) const {
  PE_REQUIRE(shape.rows > 0.0 && shape.cols > 0.0,
             "shape must be non-empty");
  const double nnz = shape.nnz;
  // Streaming x gathers hit at most every element of x once when locality
  // is good; cap at nnz for the hopeless fully-random case.
  const double x_bytes = kValueBytes * std::min(nnz, shape.cols);
  const double y_bytes = kValueBytes * shape.rows;

  if (format == "csr") {
    // values + col_idx once, row_ptr once, y written once.
    return nnz * (kValueBytes + kIndexBytes) +
           shape.rows * kIndexBytes + x_bytes + y_bytes;
  }
  if (format == "coo") {
    // Full triplets (row index travels with every entry) and y is
    // read-modify-written through memory in the worst case.
    return nnz * (kValueBytes + 2.0 * kIndexBytes) + x_bytes +
           2.0 * y_bytes;
  }
  if (format == "csc") {
    // Column-major: x streams, but y takes scattered read-modify-writes —
    // the dominant cost on wide matrices.
    return nnz * (kValueBytes + kIndexBytes) + shape.cols * kIndexBytes +
           x_bytes + 2.0 * kValueBytes * nnz;
  }
  if (format == "ell") {
    // Padding is real traffic: every stored slot streams through.
    return nnz * shape.ell_padding * (kValueBytes + kIndexBytes) + x_bytes +
           y_bytes;
  }
  if (format == "sell") {
    return nnz * shape.sell_padding * (kValueBytes + kIndexBytes) +
           shape.rows * kIndexBytes + x_bytes + y_bytes;
  }
  throw Error("spmv_model: unknown format '" + format + "'");
}

double SpmvFormatModel::predict_seconds(const SpmvShape& shape,
                                        const std::string& format) const {
  const double memory = traffic_bytes(shape, format) / dram_bandwidth_;
  const double compute = 2.0 * shape.nnz / peak_flops_;
  return std::max(memory, compute);
}

std::string SpmvFormatModel::choose(const SpmvShape& shape) const {
  std::string best;
  double best_seconds = 0.0;
  for (const std::string& f : format_names()) {
    const double s = predict_seconds(shape, f);
    if (best.empty() || s < best_seconds) {
      best = f;
      best_seconds = s;
    }
  }
  return best;
}

ModelEval SpmvFormatModel::eval(const SpmvShape& shape,
                                const std::string& format) const {
  const double seconds = predict_seconds(shape, format);
  Evaluation e;
  e.seconds = seconds;
  e.footprint.flops = 2.0 * shape.nnz;
  e.footprint.bytes = traffic_bytes(shape, format);
  e.footprint.cores = 1.0;
  return ModelEval::constant("spmv." + format, e);
}

}  // namespace pe::models
