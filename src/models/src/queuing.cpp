#include "perfeng/models/queuing.hpp"

#include <algorithm>
#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe::models {

QueueMetrics mm1(double arrival_rate, double service_rate) {
  PE_REQUIRE(arrival_rate > 0.0 && service_rate > 0.0,
             "rates must be positive");
  PE_REQUIRE(arrival_rate < service_rate, "M/M/1 requires rho < 1");
  const double rho = arrival_rate / service_rate;
  QueueMetrics m;
  m.utilization = rho;
  m.mean_wait = rho / (service_rate - arrival_rate);
  m.mean_response = 1.0 / (service_rate - arrival_rate);
  m.mean_queue_length = arrival_rate * m.mean_wait;
  m.mean_in_system = arrival_rate * m.mean_response;
  return m;
}

double erlang_c(double arrival_rate, double service_rate, unsigned servers) {
  PE_REQUIRE(arrival_rate > 0.0 && service_rate > 0.0,
             "rates must be positive");
  PE_REQUIRE(servers >= 1, "need at least one server");
  const double c = static_cast<double>(servers);
  const double a = arrival_rate / service_rate;  // offered load (Erlangs)
  PE_REQUIRE(a < c, "M/M/c requires rho < 1");

  // Sum a^k/k! for k < c, computed incrementally to avoid overflow.
  double term = 1.0;  // a^0/0!
  double sum = 1.0;
  for (unsigned k = 1; k < servers; ++k) {
    term *= a / static_cast<double>(k);
    sum += term;
  }
  const double last = term * a / c;  // a^c/c!
  const double rho = a / c;
  const double pw = (last / (1.0 - rho)) / (sum + last / (1.0 - rho));
  return pw;
}

QueueMetrics mmc(double arrival_rate, double service_rate, unsigned servers) {
  const double c = static_cast<double>(servers);
  const double rho = arrival_rate / (c * service_rate);
  const double pw = erlang_c(arrival_rate, service_rate, servers);
  QueueMetrics m;
  m.utilization = rho;
  m.mean_wait = pw / (c * service_rate - arrival_rate);
  m.mean_response = m.mean_wait + 1.0 / service_rate;
  m.mean_queue_length = arrival_rate * m.mean_wait;
  m.mean_in_system = arrival_rate * m.mean_response;
  return m;
}

QueueMetrics mg1(double arrival_rate, double service_rate, double scv) {
  PE_REQUIRE(arrival_rate > 0.0 && service_rate > 0.0,
             "rates must be positive");
  PE_REQUIRE(arrival_rate < service_rate, "M/G/1 requires rho < 1");
  PE_REQUIRE(scv >= 0.0, "squared CV must be non-negative");
  const double rho = arrival_rate / service_rate;
  QueueMetrics m;
  m.utilization = rho;
  // Pollaczek–Khinchine mean wait.
  m.mean_wait = rho * (1.0 + scv) / (2.0 * (1.0 - rho)) / service_rate;
  m.mean_response = m.mean_wait + 1.0 / service_rate;
  m.mean_queue_length = arrival_rate * m.mean_wait;
  m.mean_in_system = arrival_rate * m.mean_response;
  return m;
}

double littles_law_occupancy(double throughput, double response_time) {
  PE_REQUIRE(throughput >= 0.0 && response_time >= 0.0,
             "negative inputs");
  return throughput * response_time;
}

double interactive_response_time(double users, double throughput,
                                 double think_time) {
  PE_REQUIRE(users > 0.0 && throughput > 0.0, "inputs must be positive");
  PE_REQUIRE(think_time >= 0.0, "negative think time");
  return users / throughput - think_time;
}

ServiceModel ServiceModel::from_machine(const machine::Machine& m,
                                        double flops_per_request,
                                        double bytes_per_request) {
  m.check();
  PE_REQUIRE(flops_per_request >= 0.0 && bytes_per_request >= 0.0,
             "negative work per request");
  // Single-core Roofline time per request (max = full overlap).
  const double seconds =
      std::max(flops_per_request / m.peak_flops,
               bytes_per_request / m.dram_bandwidth());
  PE_REQUIRE(seconds > 0.0, "request needs some work");
  return {1.0 / seconds, m.cores};
}

QueueMetrics ServiceModel::mm1(double arrival_rate) const {
  return pe::models::mm1(arrival_rate, service_rate);
}

QueueMetrics ServiceModel::mmc(double arrival_rate) const {
  return pe::models::mmc(arrival_rate, service_rate, servers);
}

double ServiceModel::saturation_rate() const {
  return service_rate * static_cast<double>(servers);
}

ModelEval ServiceModel::eval_wait(double arrival_rate) const {
  Evaluation e;
  e.seconds = mmc(arrival_rate).mean_wait;
  e.footprint.cores = servers;
  return ModelEval::constant("queuing.wait", e);
}

ModelEval ServiceModel::eval_service() const {
  PE_REQUIRE(service_rate > 0.0, "service rate must be positive");
  Evaluation e;
  e.seconds = 1.0 / service_rate;
  return ModelEval::constant("queuing.service", e);
}

}  // namespace pe::models
