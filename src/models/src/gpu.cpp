#include "perfeng/models/gpu.hpp"

#include <algorithm>
#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe::models {

Occupancy occupancy(const GpuSmConfig& sm, const GpuKernelConfig& kernel) {
  PE_REQUIRE(kernel.threads_per_block >= 1, "empty thread block");
  PE_REQUIRE(sm.warp_size >= 1 && sm.max_warps >= 1 && sm.max_blocks >= 1,
             "bad SM configuration");

  const unsigned warps_per_block =
      (kernel.threads_per_block + sm.warp_size - 1) / sm.warp_size;
  PE_REQUIRE(warps_per_block <= sm.max_warps,
             "block alone exceeds the SM's warp capacity");

  // Each limit caps the number of resident blocks.
  const unsigned by_blocks = sm.max_blocks;
  const unsigned by_warps = sm.max_warps / warps_per_block;
  const std::uint64_t regs_per_block =
      std::uint64_t(kernel.registers_per_thread) * kernel.threads_per_block;
  const unsigned by_regs =
      regs_per_block == 0
          ? sm.max_blocks
          : static_cast<unsigned>(sm.registers / regs_per_block);
  const unsigned by_smem =
      kernel.shared_memory_per_block == 0
          ? sm.max_blocks
          : static_cast<unsigned>(sm.shared_memory /
                                  kernel.shared_memory_per_block);

  Occupancy occ;
  const struct {
    unsigned cap;
    const char* name;
  } limits[] = {{by_blocks, "blocks"},
                {by_warps, "warps"},
                {by_regs, "registers"},
                {by_smem, "smem"}};
  occ.blocks_per_sm = limits[0].cap;
  occ.limiter = limits[0].name;
  for (const auto& limit : limits) {
    if (limit.cap < occ.blocks_per_sm) {
      occ.blocks_per_sm = limit.cap;
      occ.limiter = limit.name;
    }
  }
  occ.warps_per_sm = occ.blocks_per_sm * warps_per_block;
  occ.fraction =
      static_cast<double>(occ.warps_per_sm) / sm.max_warps;
  return occ;
}

double achievable_bandwidth(double peak_bandwidth, unsigned num_sms,
                            unsigned warps_per_sm, double latency_seconds,
                            std::size_t bytes_per_access) {
  PE_REQUIRE(peak_bandwidth > 0.0, "peak bandwidth must be positive");
  PE_REQUIRE(num_sms >= 1, "need at least one SM");
  PE_REQUIRE(latency_seconds > 0.0, "latency must be positive");
  PE_REQUIRE(bytes_per_access >= 1, "access must move bytes");
  const double in_flight = static_cast<double>(num_sms) * warps_per_sm *
                           static_cast<double>(bytes_per_access);
  return std::min(peak_bandwidth, in_flight / latency_seconds);
}

unsigned warps_to_saturate(double peak_bandwidth, unsigned num_sms,
                           double latency_seconds,
                           std::size_t bytes_per_access) {
  PE_REQUIRE(peak_bandwidth > 0.0 && num_sms >= 1 &&
                 latency_seconds > 0.0 && bytes_per_access >= 1,
             "bad parameters");
  const double per_warp = static_cast<double>(num_sms) *
                          static_cast<double>(bytes_per_access) /
                          latency_seconds;
  return static_cast<unsigned>(std::ceil(peak_bandwidth / per_warp));
}

LatencyHidingModel LatencyHidingModel::from_machine(
    const machine::Machine& m) {
  m.check();
  PE_REQUIRE(m.dram().latency > 0.0,
             "machine needs a calibrated memory latency");
  return {m.dram_bandwidth(), m.dram().latency, m.cores};
}

double LatencyHidingModel::achievable(unsigned warps_per_sm,
                                      std::size_t bytes_per_access) const {
  return achievable_bandwidth(peak_bandwidth, num_sms, warps_per_sm,
                              memory_latency, bytes_per_access);
}

unsigned LatencyHidingModel::saturation_warps(
    std::size_t bytes_per_access) const {
  return warps_to_saturate(peak_bandwidth, num_sms, memory_latency,
                           bytes_per_access);
}

ModelEval LatencyHidingModel::eval(double bytes, unsigned warps_per_sm,
                                   std::size_t bytes_per_access) const {
  PE_REQUIRE(bytes >= 0.0, "bytes must be non-negative");
  Evaluation e;
  e.seconds = bytes / achievable(warps_per_sm, bytes_per_access);
  e.footprint.bytes = bytes;
  e.footprint.cores = num_sms;
  return ModelEval::constant("gpu.stream", e);
}

}  // namespace pe::models
