#include "perfeng/models/scaling.hpp"

#include <cmath>
#include <limits>

#include "perfeng/common/error.hpp"
#include "perfeng/measure/metrics.hpp"

namespace pe::models {

double amdahl_speedup(double serial_fraction, double workers) {
  PE_REQUIRE(serial_fraction >= 0.0 && serial_fraction <= 1.0,
             "serial fraction must be in [0,1]");
  PE_REQUIRE(workers >= 1.0, "workers must be >= 1");
  return 1.0 / (serial_fraction + (1.0 - serial_fraction) / workers);
}

double amdahl_limit(double serial_fraction) {
  PE_REQUIRE(serial_fraction >= 0.0 && serial_fraction <= 1.0,
             "serial fraction must be in [0,1]");
  if (serial_fraction == 0.0)
    return std::numeric_limits<double>::infinity();
  return 1.0 / serial_fraction;
}

double gustafson_speedup(double serial_fraction, double workers) {
  PE_REQUIRE(serial_fraction >= 0.0 && serial_fraction <= 1.0,
             "serial fraction must be in [0,1]");
  PE_REQUIRE(workers >= 1.0, "workers must be >= 1");
  return serial_fraction + (1.0 - serial_fraction) * workers;
}

double usl_speedup(double sigma, double kappa, double workers) {
  PE_REQUIRE(sigma >= 0.0 && kappa >= 0.0, "USL parameters non-negative");
  PE_REQUIRE(workers >= 1.0, "workers must be >= 1");
  const double p = workers;
  return p / (1.0 + sigma * (p - 1.0) + kappa * p * (p - 1.0));
}

double usl_peak_workers(double sigma, double kappa) {
  PE_REQUIRE(sigma >= 0.0 && kappa >= 0.0, "USL parameters non-negative");
  if (kappa == 0.0) return std::numeric_limits<double>::infinity();
  return std::sqrt((1.0 - sigma) / kappa);
}

UslFit fit_usl(std::span<const double> workers,
               std::span<const double> speedups) {
  PE_REQUIRE(workers.size() == speedups.size(), "length mismatch");
  PE_REQUIRE(workers.size() >= 3, "need at least three points");
  for (std::size_t i = 0; i < workers.size(); ++i) {
    PE_REQUIRE(workers[i] >= 1.0, "workers must be >= 1");
    PE_REQUIRE(speedups[i] > 0.0, "speedups must be positive");
  }

  auto sse = [&](double sigma, double kappa) {
    double acc = 0.0;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      const double d = usl_speedup(sigma, kappa, workers[i]) - speedups[i];
      acc += d * d;
    }
    return acc;
  };

  // Three rounds of grid refinement around the best cell.
  double lo_s = 0.0, hi_s = 1.0, lo_k = 0.0, hi_k = 0.1;
  double best_s = 0.0, best_k = 0.0,
         best = std::numeric_limits<double>::infinity();
  constexpr int kGrid = 40;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i <= kGrid; ++i) {
      const double s =
          lo_s + (hi_s - lo_s) * static_cast<double>(i) / kGrid;
      for (int j = 0; j <= kGrid; ++j) {
        const double k =
            lo_k + (hi_k - lo_k) * static_cast<double>(j) / kGrid;
        const double err = sse(s, k);
        if (err < best) {
          best = err;
          best_s = s;
          best_k = k;
        }
      }
    }
    const double span_s = (hi_s - lo_s) / kGrid * 2.0;
    const double span_k = (hi_k - lo_k) / kGrid * 2.0;
    lo_s = std::max(0.0, best_s - span_s);
    hi_s = std::min(1.0, best_s + span_s);
    lo_k = std::max(0.0, best_k - span_k);
    hi_k = best_k + span_k;
  }

  UslFit fit;
  fit.sigma = best_s;
  fit.kappa = best_k;
  std::vector<double> predicted(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i)
    predicted[i] = usl_speedup(best_s, best_k, workers[i]);
  fit.r2 = r_squared(predicted, speedups);
  return fit;
}

double karp_flatt(double speedup, double workers) {
  PE_REQUIRE(workers > 1.0, "Karp-Flatt needs more than one worker");
  PE_REQUIRE(speedup > 0.0, "speedup must be positive");
  return (1.0 / speedup - 1.0 / workers) / (1.0 - 1.0 / workers);
}

SpeedupProjection SpeedupProjection::from_machine(const machine::Machine& m) {
  m.check();
  return {static_cast<double>(m.cores)};
}

double SpeedupProjection::amdahl(double serial_fraction) const {
  return amdahl_speedup(serial_fraction, workers);
}

double SpeedupProjection::gustafson(double serial_fraction) const {
  return gustafson_speedup(serial_fraction, workers);
}

double SpeedupProjection::usl(double sigma, double kappa) const {
  return usl_speedup(sigma, kappa, workers);
}

ModelEval SpeedupProjection::eval_amdahl(double serial_seconds,
                                         double serial_fraction) const {
  PE_REQUIRE(serial_seconds > 0.0, "serial time must be positive");
  Evaluation e;
  e.seconds = serial_seconds / amdahl(serial_fraction);
  e.footprint.cores = workers;
  return ModelEval::constant("scaling.amdahl", e);
}

ModelEval SpeedupProjection::eval_usl(double serial_seconds, double sigma,
                                      double kappa) const {
  PE_REQUIRE(serial_seconds > 0.0, "serial time must be positive");
  Evaluation e;
  e.seconds = serial_seconds / usl(sigma, kappa);
  e.footprint.cores = workers;
  return ModelEval::constant("scaling.usl", e);
}

}  // namespace pe::models
