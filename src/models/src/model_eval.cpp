#include "perfeng/models/model_eval.hpp"

#include <algorithm>
#include <utility>

#include "perfeng/common/error.hpp"

namespace pe::models {

void Footprint::absorb(const Footprint& other) {
  flops += other.flops;
  bytes += other.bytes;
  cores = std::max(cores, other.cores);
  joules += other.joules;
}

ModelEval::ModelEval(std::string name, std::function<Evaluation()> fn)
    : name_(std::move(name)), fn_(std::move(fn)) {
  PE_REQUIRE(!name_.empty(), "ModelEval needs a name");
  PE_REQUIRE(static_cast<bool>(fn_), "ModelEval needs a callable");
}

ModelEval ModelEval::constant(std::string name, Evaluation e) {
  return ModelEval(std::move(name), [e] { return e; });
}

Evaluation ModelEval::evaluate() const { return fn_(); }

}  // namespace pe::models
