#include "perfeng/models/energy.hpp"

#include "perfeng/common/error.hpp"

namespace pe::models {

double PowerModel::power(double utilization) const {
  PE_REQUIRE(utilization >= 0.0 && utilization <= 1.0,
             "utilization must be in [0,1]");
  PE_REQUIRE(static_watts >= 0.0 && peak_dynamic_watts >= 0.0,
             "power must be non-negative");
  return static_watts + peak_dynamic_watts * utilization;
}

double PowerModel::energy(double seconds, double utilization) const {
  PE_REQUIRE(seconds >= 0.0, "negative duration");
  return power(utilization) * seconds;
}

PowerModel PowerModel::from_machine(const machine::Machine& m) {
  m.check();
  PE_REQUIRE(m.has_energy(),
             "machine carries no energy coefficients (see docs/machine.md)");
  return {m.static_watts, m.peak_dynamic_watts};
}

double EventEnergyModel::energy(
    const counters::CounterSet& counters) const {
  using namespace pe::counters;
  double joules = 0.0;
  joules += joules_per_instruction *
            static_cast<double>(counters.get_or_zero(kInstructions));
  joules += joules_per_l1_access *
            static_cast<double>(counters.get_or_zero(kMemAccesses));
  joules += joules_per_l2_access *
            static_cast<double>(counters.get_or_zero(kL1Misses));
  joules += joules_per_l3_access *
            static_cast<double>(counters.get_or_zero(kL2Misses));
  joules += joules_per_dram_access *
            static_cast<double>(counters.get_or_zero(kDramAccesses));
  return joules;
}

double EnergyReport::watts() const {
  return seconds > 0.0 ? joules / seconds : 0.0;
}

double EnergyReport::flops_per_joule() const {
  return joules > 0.0 ? flops / joules : 0.0;
}

double EnergyReport::energy_delay_product() const {
  return joules * seconds;
}

EnergyReport report_from_power(const PowerModel& power, double seconds,
                               double utilization, double flops) {
  PE_REQUIRE(seconds > 0.0, "duration must be positive");
  PE_REQUIRE(flops >= 0.0, "negative flop count");
  EnergyReport r;
  r.seconds = seconds;
  r.joules = power.energy(seconds, utilization);
  r.flops = flops;
  return r;
}

EnergyReport report_from_events(const EventEnergyModel& events,
                                const counters::CounterSet& counters,
                                double seconds, double flops) {
  PE_REQUIRE(seconds > 0.0, "duration must be positive");
  PE_REQUIRE(flops >= 0.0, "negative flop count");
  EnergyReport r;
  r.seconds = seconds;
  r.joules = events.energy(counters);
  r.flops = flops;
  return r;
}

double race_to_idle_ratio(const PowerModel& power, double baseline_seconds,
                          double baseline_utilization,
                          double optimized_seconds,
                          double optimized_utilization) {
  PE_REQUIRE(baseline_seconds > 0.0 && optimized_seconds > 0.0,
             "durations must be positive");
  const double baseline =
      power.energy(baseline_seconds, baseline_utilization);
  const double optimized =
      power.energy(optimized_seconds, optimized_utilization);
  return optimized / baseline;
}

ModelEval PowerModel::eval(double seconds, double utilization,
                           double flops) const {
  PE_REQUIRE(seconds >= 0.0, "negative duration");
  PE_REQUIRE(flops >= 0.0, "negative flop count");
  Evaluation e;
  e.seconds = seconds;
  e.footprint.flops = flops;
  e.footprint.joules = energy(seconds, utilization);
  return ModelEval::constant("energy.power", e);
}

}  // namespace pe::models
