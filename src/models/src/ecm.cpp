#include "perfeng/models/ecm.hpp"

#include <algorithm>

#include "perfeng/common/error.hpp"

namespace pe::models {

EcmModel::EcmModel(double core_seconds) : core_(core_seconds) {
  PE_REQUIRE(core_seconds >= 0.0, "core time must be non-negative");
}

EcmModel EcmModel::from_machine(const machine::Machine& m,
                                double unit_flops, double unit_bytes) {
  m.check();
  PE_REQUIRE(unit_flops >= 0.0 && unit_bytes >= 0.0, "negative work");
  EcmModel model(unit_flops / m.peak_flops);
  model.add_transfer(m.hierarchy.front().name, "core",
                     unit_bytes / m.hierarchy.front().bandwidth);
  for (std::size_t i = 1; i < m.hierarchy.size(); ++i) {
    model.add_transfer(m.hierarchy[i].name, m.hierarchy[i - 1].name,
                       unit_bytes / m.hierarchy[i].bandwidth);
  }
  model.unit_flops_ = unit_flops;
  model.unit_bytes_ = unit_bytes;
  return model;
}

void EcmModel::add_transfer(const std::string& from, const std::string& to,
                            double seconds) {
  PE_REQUIRE(seconds >= 0.0, "transfer time must be non-negative");
  transfers_.push_back({from, to, seconds});
}

double EcmModel::data_seconds() const {
  double total = 0.0;
  for (const auto& t : transfers_) total += t.seconds;
  return total;
}

double EcmModel::predict_overlapped() const {
  return std::max(core_, data_seconds());
}

double EcmModel::predict_serial() const { return core_ + data_seconds(); }

bool EcmModel::brackets(double measured_seconds, double slack) const {
  PE_REQUIRE(measured_seconds > 0.0, "measured time must be positive");
  PE_REQUIRE(slack >= 0.0, "slack must be non-negative");
  const double lo = predict_overlapped() * (1.0 - slack);
  const double hi = predict_serial() * (1.0 + slack);
  return measured_seconds >= lo && measured_seconds <= hi;
}

ModelEval EcmModel::eval(double units) const {
  PE_REQUIRE(units >= 0.0, "units must be non-negative");
  Evaluation e;
  e.seconds = units * predict_overlapped();
  e.footprint.flops = units * unit_flops_;
  e.footprint.bytes = units * unit_bytes_;
  return ModelEval::constant("ecm.stream", e);
}

}  // namespace pe::models
