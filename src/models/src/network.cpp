#include "perfeng/models/network.hpp"

#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe::models {

AlphaBetaModel AlphaBetaModel::from_machine(const machine::Machine& m) {
  m.check();
  PE_REQUIRE(m.has_link(),
             "machine carries no link coefficients (see docs/machine.md)");
  return {m.link_alpha, m.link_beta};
}

double AlphaBetaModel::p2p(std::size_t bytes) const {
  return alpha + beta * static_cast<double>(bytes);
}

double AlphaBetaModel::broadcast(unsigned ranks, std::size_t bytes) const {
  PE_REQUIRE(ranks >= 1, "need at least one rank");
  if (ranks == 1) return 0.0;
  const double steps = std::ceil(std::log2(static_cast<double>(ranks)));
  return steps * p2p(bytes);
}

double AlphaBetaModel::ring_allreduce(unsigned ranks,
                                      std::size_t bytes) const {
  PE_REQUIRE(ranks >= 1, "need at least one rank");
  if (ranks == 1) return 0.0;
  const std::size_t chunk = (bytes + ranks - 1) / ranks;
  return 2.0 * static_cast<double>(ranks - 1) * p2p(chunk);
}

double AlphaBetaModel::halo_exchange(std::size_t halo_bytes) const {
  // Both directions proceed concurrently; a rank's critical path is one
  // send overhead plus one inbound message.
  return alpha + p2p(halo_bytes);
}

double strong_scaling_time(const AlphaBetaModel& net, double flops,
                           double flops_per_second, unsigned ranks,
                           std::size_t halo_bytes) {
  PE_REQUIRE(flops > 0.0 && flops_per_second > 0.0,
             "work and rate must be positive");
  PE_REQUIRE(ranks >= 1, "need at least one rank");
  const double compute =
      flops / flops_per_second / static_cast<double>(ranks);
  // Per iteration: a halo swap (rank-count independent) plus a scalar
  // residual allreduce, whose 2(p-1) latency steps are what eventually
  // stops strong scaling.
  const double comm =
      ranks == 1 ? 0.0
                 : net.halo_exchange(halo_bytes) +
                       net.ring_allreduce(ranks, sizeof(double));
  return compute + comm;
}

unsigned strong_scaling_sweet_spot(const AlphaBetaModel& net, double flops,
                                   double flops_per_second,
                                   unsigned max_ranks,
                                   std::size_t halo_bytes) {
  PE_REQUIRE(max_ranks >= 1, "need at least one rank");
  double best_time =
      strong_scaling_time(net, flops, flops_per_second, 1, halo_bytes);
  unsigned best = 1;
  for (unsigned p = 2; p <= max_ranks; ++p) {
    const double t =
        strong_scaling_time(net, flops, flops_per_second, p, halo_bytes);
    if (t < best_time) {
      best_time = t;
      best = p;
    }
  }
  return best;
}

namespace {

ModelEval comm_eval(std::string name, double seconds, std::size_t bytes,
                    unsigned ranks) {
  Evaluation e;
  e.seconds = seconds;
  e.footprint.bytes = static_cast<double>(bytes);
  e.footprint.cores = ranks;
  return ModelEval::constant(std::move(name), e);
}

}  // namespace

ModelEval AlphaBetaModel::eval_p2p(std::size_t bytes) const {
  return comm_eval("network.p2p", p2p(bytes), bytes, 1);
}

ModelEval AlphaBetaModel::eval_broadcast(unsigned ranks,
                                         std::size_t bytes) const {
  return comm_eval("network.broadcast", broadcast(ranks, bytes), bytes,
                   ranks);
}

ModelEval AlphaBetaModel::eval_allreduce(unsigned ranks,
                                         std::size_t bytes) const {
  return comm_eval("network.allreduce", ring_allreduce(ranks, bytes), bytes,
                   ranks);
}

}  // namespace pe::models
