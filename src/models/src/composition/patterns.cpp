#include "perfeng/models/composition/patterns.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

// Private detail header, shared only by the composition .cpp files — it
// deliberately has no perfeng/ install path. perfeng-lint: allow(include-style)
#include "fold.hpp"
#include "perfeng/common/error.hpp"

namespace pe::models::composition {

namespace {

using detail::absorb_breakdown;
using detail::graham;

/// `k` instances of the same activity: time-like footprint fields scale,
/// concurrency (cores) does not.
Footprint scaled(const Footprint& f, double k) {
  Footprint s = f;
  s.flops *= k;
  s.bytes *= k;
  s.joules *= k;
  return s;
}

double min_width(unsigned workers, std::size_t tasks) {
  return static_cast<double>(
      std::min<std::size_t>(workers, std::max<std::size_t>(tasks, 1)));
}

/// Heterogeneous map: independent children on the context's workers.
class MapNode final : public Node {
 public:
  explicit MapNode(std::vector<NodePtr> children)
      : children_(std::move(children)) {
    PE_REQUIRE(!children_.empty(), "map needs at least one child");
    for (const auto& c : children_)
      PE_REQUIRE(c != nullptr, "map child must not be null");
  }

  Prediction predict(const Context& ctx) const override {
    Prediction p;
    const std::string prefix = label();
    for (const auto& child : children_) {
      const Prediction c = child->predict(ctx);
      p.work_seconds += c.work_seconds;
      p.span_seconds = std::max(p.span_seconds, c.span_seconds);
      p.comm_seconds += c.comm_seconds;
      p.dispatch_seconds += c.dispatch_seconds;
      p.footprint.absorb(c.footprint);
      absorb_breakdown(p.breakdown, prefix, c.breakdown);
    }
    if (ctx.workers > 1) {
      p.work_seconds += ctx.dispatch_seconds;
      p.span_seconds += ctx.dispatch_seconds;
      p.dispatch_seconds += ctx.dispatch_seconds;
    }
    p.seconds = graham(p.work_seconds, p.span_seconds, ctx.workers);
    p.latency_seconds = p.seconds;
    p.bottleneck_seconds = p.seconds;
    p.footprint.cores =
        std::max(p.footprint.cores, min_width(ctx.workers, children_.size()));
    return p;
  }

  std::string label() const override {
    return "map[" + std::to_string(children_.size()) + "]";
  }

 private:
  std::vector<NodePtr> children_;
};

/// Uniform map (a parallel-for): one body prediction, scaled.
class UniformMapNode final : public Node {
 public:
  UniformMapNode(NodePtr body, std::size_t iterations)
      : body_(std::move(body)), iterations_(iterations) {
    PE_REQUIRE(body_ != nullptr, "map body must not be null");
    PE_REQUIRE(iterations_ >= 1, "map needs at least one iteration");
  }

  Prediction predict(const Context& ctx) const override {
    const Prediction c = body_->predict(ctx);
    const double n = static_cast<double>(iterations_);
    Prediction p;
    p.work_seconds = n * c.work_seconds;
    p.span_seconds = c.span_seconds;
    p.comm_seconds = n * c.comm_seconds;
    p.dispatch_seconds = n * c.dispatch_seconds;
    p.footprint = scaled(c.footprint, n);
    absorb_breakdown(p.breakdown, label(), c.breakdown, n);
    if (ctx.workers > 1) {
      p.work_seconds += ctx.dispatch_seconds;
      p.span_seconds += ctx.dispatch_seconds;
      p.dispatch_seconds += ctx.dispatch_seconds;
    }
    p.seconds = graham(p.work_seconds, p.span_seconds, ctx.workers);
    p.latency_seconds = p.seconds;
    p.bottleneck_seconds = p.seconds;
    p.footprint.cores =
        std::max(p.footprint.cores, min_width(ctx.workers, iterations_));
    return p;
  }

  std::string label() const override {
    return "map[x" + std::to_string(iterations_) + "]";
  }

 private:
  NodePtr body_;
  std::size_t iterations_;
};

/// Task farm: `jobs` bodies served by min(replicas, workers) replicas.
class FarmNode final : public Node {
 public:
  FarmNode(NodePtr body, std::size_t jobs, unsigned replicas)
      : body_(std::move(body)), jobs_(jobs), replicas_(replicas) {
    PE_REQUIRE(body_ != nullptr, "farm body must not be null");
    PE_REQUIRE(jobs_ >= 1, "farm needs at least one job");
    PE_REQUIRE(replicas_ >= 1, "farm needs at least one replica");
  }

  Prediction predict(const Context& ctx) const override {
    const Prediction c = body_->predict(ctx);
    const unsigned width = std::min(replicas_, ctx.workers);
    const double n = static_cast<double>(jobs_);
    Prediction p;
    p.work_seconds = n * c.work_seconds;
    p.span_seconds = c.span_seconds;
    p.comm_seconds = n * c.comm_seconds;
    p.dispatch_seconds = n * c.dispatch_seconds;
    p.footprint = scaled(c.footprint, n);
    absorb_breakdown(p.breakdown, label(), c.breakdown, n);
    if (width > 1) {
      p.work_seconds += ctx.dispatch_seconds;
      p.span_seconds += ctx.dispatch_seconds;
      p.dispatch_seconds += ctx.dispatch_seconds;
    }
    p.seconds = graham(p.work_seconds, p.span_seconds, width);
    p.latency_seconds = p.seconds;
    // Steady state the farm accepts one job every body-time / replicas:
    // the service interval a surrounding pipeline stage is priced at.
    p.bottleneck_seconds = c.seconds / static_cast<double>(width);
    p.footprint.cores = std::max(p.footprint.cores,
                                 min_width(ctx.workers, width));
    return p;
  }

  std::string label() const override {
    return "farm[x" + std::to_string(jobs_) + "@" +
           std::to_string(replicas_) + "]";
  }

 private:
  NodePtr body_;
  std::size_t jobs_;
  unsigned replicas_;
};

/// Stream pipeline: latency is the sum, throughput is the bottleneck.
class PipelineNode final : public Node {
 public:
  PipelineNode(std::vector<NodePtr> stages, std::size_t items)
      : stages_(std::move(stages)), items_(items) {
    PE_REQUIRE(!stages_.empty(), "pipeline needs at least one stage");
    for (const auto& s : stages_)
      PE_REQUIRE(s != nullptr, "pipeline stage must not be null");
    PE_REQUIRE(items_ >= 1, "pipeline needs at least one item");
  }

  Prediction predict(const Context& ctx) const override {
    const double n = static_cast<double>(items_);
    Prediction p;
    double work_per_item = 0.0;
    double cores = 0.0;
    const std::string prefix = label();
    for (const auto& stage : stages_) {
      const Prediction s = stage->predict(ctx);
      p.latency_seconds += s.latency_seconds;
      p.bottleneck_seconds =
          std::max(p.bottleneck_seconds, s.bottleneck_seconds);
      work_per_item += s.work_seconds;
      p.comm_seconds += n * s.comm_seconds;
      p.dispatch_seconds += n * s.dispatch_seconds;
      p.footprint.absorb(scaled(s.footprint, n));
      cores += s.footprint.cores;
      absorb_breakdown(p.breakdown, prefix, s.breakdown, n);
    }
    // Fill, then drain one item per steady-state interval: the slowest
    // stage, or the whole item's work divided across the workers when
    // there are fewer workers than the stages could occupy (a pipeline
    // on one core cannot overlap at all — it degenerates exactly to the
    // serial sum). Folding the work term from the stage-work *sum* keeps
    // nesting a single-item pipeline as a stage associative, and no
    // dispatch of the pipeline's own is charged: stages carry theirs.
    p.bottleneck_seconds =
        std::max(p.bottleneck_seconds,
                 work_per_item / static_cast<double>(ctx.workers));
    p.seconds = p.latency_seconds + (n - 1.0) * p.bottleneck_seconds;
    p.work_seconds = n * work_per_item;
    p.span_seconds = p.seconds;
    p.footprint.cores = cores;  // stages are concurrently resident
    return p;
  }

  std::string label() const override {
    return "pipeline[x" + std::to_string(items_) + "]";
  }

 private:
  std::vector<NodePtr> stages_;
  std::size_t items_;
};

/// Combining tree: leaves - 1 combines, ceil(log2(leaves)) levels deep.
class ReduceNode final : public Node {
 public:
  ReduceNode(NodePtr combine, std::size_t leaves)
      : combine_(std::move(combine)), leaves_(leaves) {
    PE_REQUIRE(combine_ != nullptr, "reduce combine must not be null");
    PE_REQUIRE(leaves_ >= 1, "reduce needs at least one input");
  }

  Prediction predict(const Context& ctx) const override {
    const Prediction c = combine_->predict(ctx);
    const double combines = static_cast<double>(leaves_ - 1);
    unsigned depth = 0;
    for (std::size_t cap = 1; cap < leaves_; cap <<= 1) ++depth;
    Prediction p;
    p.work_seconds = combines * c.work_seconds;
    p.span_seconds = static_cast<double>(depth) * c.span_seconds;
    p.comm_seconds = combines * c.comm_seconds;
    p.dispatch_seconds = combines * c.dispatch_seconds;
    p.footprint = scaled(c.footprint, combines);
    absorb_breakdown(p.breakdown, label(), c.breakdown, combines);
    if (ctx.workers > 1 && leaves_ > 1) {
      p.work_seconds += ctx.dispatch_seconds;
      p.span_seconds += ctx.dispatch_seconds;
      p.dispatch_seconds += ctx.dispatch_seconds;
    }
    p.seconds = graham(p.work_seconds, p.span_seconds, ctx.workers);
    p.latency_seconds = p.seconds;
    p.bottleneck_seconds = p.seconds;
    p.footprint.cores = std::max(
        p.footprint.cores,
        min_width(ctx.workers, leaves_ > 1 ? (leaves_ + 1) / 2 : 1));
    return p;
  }

  std::string label() const override {
    return "reduce[x" + std::to_string(leaves_) + "]";
  }

 private:
  NodePtr combine_;
  std::size_t leaves_;
};

/// Branching-ary recursion: divide and merge at every internal node,
/// base at every leaf.
class DivideAndConquerNode final : public Node {
 public:
  DivideAndConquerNode(NodePtr divide, NodePtr base, NodePtr merge,
                       unsigned branching, unsigned depth)
      : divide_(std::move(divide)),
        base_(std::move(base)),
        merge_(std::move(merge)),
        branching_(branching),
        depth_(depth) {
    PE_REQUIRE(divide_ != nullptr && base_ != nullptr && merge_ != nullptr,
               "divide-and-conquer phases must not be null");
    PE_REQUIRE(branching_ >= 1, "branching factor must be at least one");
    PE_REQUIRE(depth_ <= 40, "recursion depth out of modeling range");
  }

  Prediction predict(const Context& ctx) const override {
    const Prediction d = divide_->predict(ctx);
    const Prediction b = base_->predict(ctx);
    const Prediction m = merge_->predict(ctx);
    const double bf = static_cast<double>(branching_);
    const double leaves = std::pow(bf, static_cast<double>(depth_));
    // Internal nodes: 1 + b + ... + b^(depth-1).
    double internal = 0.0;
    for (unsigned k = 0; k < depth_; ++k)
      internal += std::pow(bf, static_cast<double>(k));
    Prediction p;
    p.work_seconds = internal * (d.work_seconds + m.work_seconds) +
                     leaves * b.work_seconds;
    p.span_seconds =
        static_cast<double>(depth_) * (d.span_seconds + m.span_seconds) +
        b.span_seconds;
    p.comm_seconds = internal * (d.comm_seconds + m.comm_seconds) +
                     leaves * b.comm_seconds;
    p.dispatch_seconds =
        internal * (d.dispatch_seconds + m.dispatch_seconds) +
        leaves * b.dispatch_seconds;
    p.footprint = scaled(d.footprint, internal);
    p.footprint.absorb(scaled(m.footprint, internal));
    p.footprint.absorb(scaled(b.footprint, leaves));
    const std::string prefix = label();
    absorb_breakdown(p.breakdown, prefix + "/divide", d.breakdown, internal);
    absorb_breakdown(p.breakdown, prefix + "/base", b.breakdown, leaves);
    absorb_breakdown(p.breakdown, prefix + "/merge", m.breakdown, internal);
    if (ctx.workers > 1 && branching_ > 1 && depth_ >= 1) {
      // One parallel region per recursion level.
      const double charge =
          static_cast<double>(depth_) * ctx.dispatch_seconds;
      p.work_seconds += charge;
      p.span_seconds += charge;
      p.dispatch_seconds += charge;
    }
    p.seconds = graham(p.work_seconds, p.span_seconds, ctx.workers);
    p.latency_seconds = p.seconds;
    p.bottleneck_seconds = p.seconds;
    p.footprint.cores = std::max(
        p.footprint.cores,
        min_width(ctx.workers, static_cast<std::size_t>(
                                   std::min(leaves, 1e9))));
    return p;
  }

  std::string label() const override {
    return "dnc[b" + std::to_string(branching_) + ",d" +
           std::to_string(depth_) + "]";
  }

 private:
  NodePtr divide_;
  NodePtr base_;
  NodePtr merge_;
  unsigned branching_;
  unsigned depth_;
};

}  // namespace

NodePtr map(std::vector<NodePtr> children) {
  return std::make_shared<MapNode>(std::move(children));
}

NodePtr map(NodePtr body, std::size_t iterations) {
  return std::make_shared<UniformMapNode>(std::move(body), iterations);
}

NodePtr farm(NodePtr body, std::size_t jobs, unsigned replicas) {
  return std::make_shared<FarmNode>(std::move(body), jobs, replicas);
}

NodePtr pipeline(std::vector<NodePtr> stages, std::size_t items) {
  return std::make_shared<PipelineNode>(std::move(stages), items);
}

NodePtr reduce(NodePtr combine, std::size_t leaves) {
  return std::make_shared<ReduceNode>(std::move(combine), leaves);
}

NodePtr divide_and_conquer(NodePtr divide, NodePtr base, NodePtr merge,
                           unsigned branching, unsigned depth) {
  return std::make_shared<DivideAndConquerNode>(
      std::move(divide), std::move(base), std::move(merge), branching,
      depth);
}

}  // namespace pe::models::composition
