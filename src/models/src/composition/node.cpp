#include "perfeng/models/composition/node.hpp"

#include <sstream>
#include <utility>

// Private detail header, shared only by the composition .cpp files — it
// deliberately has no perfeng/ install path. perfeng-lint: allow(include-style)
#include "fold.hpp"
#include "perfeng/common/error.hpp"

namespace pe::models::composition {

Context Context::from_machine(const machine::Machine& m) {
  m.check();
  Context ctx;
  ctx.workers = m.cores;
  ctx.dispatch_seconds = m.bulk_dispatch_seconds();
  ctx.link_alpha = m.link_alpha;
  ctx.link_beta = m.link_beta;
  return ctx;
}

Context Context::serial() const {
  Context ctx = *this;
  ctx.workers = 1;
  return ctx;
}

namespace detail {

double graham(double work, double span, unsigned workers) {
  PE_REQUIRE(workers >= 1, "need at least one worker");
  PE_REQUIRE(work >= 0.0 && span >= 0.0 && work >= span,
             "fold invariant violated: need work >= span >= 0");
  if (workers == 1) return work;
  const double p = static_cast<double>(workers);
  return work / p + (1.0 - 1.0 / p) * span;
}

void absorb_breakdown(std::vector<BreakdownLine>& out,
                      const std::string& prefix,
                      const std::vector<BreakdownLine>& child,
                      double scale) {
  for (const auto& line : child)
    out.push_back({prefix + "/" + line.path, line.seconds * scale});
}

}  // namespace detail

namespace {

/// A retrofitted model evaluation as a degenerate (single-activity)
/// prediction: every composition quantity is the evaluation's seconds.
class LeafNode final : public Node {
 public:
  explicit LeafNode(ModelEval model) : model_(std::move(model)) {}

  Prediction predict(const Context&) const override {
    const Evaluation e = model_.evaluate();
    PE_REQUIRE(e.seconds >= 0.0,
               "leaf model predicted negative seconds: " + model_.name());
    Prediction p;
    p.seconds = e.seconds;
    p.work_seconds = e.seconds;
    p.span_seconds = e.seconds;
    p.latency_seconds = e.seconds;
    p.bottleneck_seconds = e.seconds;
    p.footprint = e.footprint;
    p.breakdown.push_back({label(), e.seconds});
    return p;
  }

  std::string label() const override { return "leaf:" + model_.name(); }

 private:
  ModelEval model_;
};

/// An alpha-beta transfer priced by the context's link coefficients.
class CommNode final : public Node {
 public:
  CommNode(std::string name, double bytes)
      : name_(std::move(name)), bytes_(bytes) {
    PE_REQUIRE(!name_.empty(), "comm node needs a name");
    PE_REQUIRE(bytes_ >= 0.0, "comm node needs non-negative bytes");
  }

  Prediction predict(const Context& ctx) const override {
    const double seconds =
        bytes_ == 0.0 ? 0.0 : ctx.link_alpha + ctx.link_beta * bytes_;
    Prediction p;
    p.seconds = seconds;
    p.work_seconds = seconds;
    p.span_seconds = seconds;
    p.latency_seconds = seconds;
    p.bottleneck_seconds = seconds;
    p.comm_seconds = seconds;
    p.footprint.bytes = bytes_;
    p.breakdown.push_back({label(), seconds});
    return p;
  }

  std::string label() const override { return "comm:" + name_; }

 private:
  std::string name_;
  double bytes_;
};

}  // namespace

NodePtr leaf(ModelEval model) {
  return std::make_shared<LeafNode>(std::move(model));
}

NodePtr comm(std::string name, double bytes) {
  return std::make_shared<CommNode>(std::move(name), bytes);
}

std::string format_prediction(const Prediction& p) {
  std::ostringstream out;
  out.setf(std::ios::scientific);
  out.precision(3);
  out << "predicted " << p.seconds << " s"
      << "  (work " << p.work_seconds << ", span " << p.span_seconds
      << ", latency " << p.latency_seconds << ", bottleneck "
      << p.bottleneck_seconds << ")\n";
  out << "  dispatch " << p.dispatch_seconds << " s, comm "
      << p.comm_seconds << " s\n";
  out << "  footprint: " << p.footprint.flops << " flops, "
      << p.footprint.bytes << " bytes, " << p.footprint.cores
      << " cores, " << p.footprint.joules << " J\n";
  if (!p.breakdown.empty()) {
    out << "  breakdown:\n";
    for (const auto& line : p.breakdown)
      out << "    " << line.seconds << " s  " << line.path << "\n";
  }
  return out.str();
}

}  // namespace pe::models::composition
