#pragma once

// Internal helpers shared by the composition pattern implementations.
// Not installed; the public surface is include/perfeng/models/composition.

#include <string>
#include <vector>

#include "perfeng/models/composition/node.hpp"

namespace pe::models::composition::detail {

/// The Graham/Brent makespan estimate for (work W, span S) on P workers:
/// exactly W at P == 1 (serial composition is summation), approaching S
/// as P grows. Requires W >= S >= 0, which every fold maintains.
[[nodiscard]] double graham(double work, double span, unsigned workers);

/// Append `child`'s breakdown lines to `out`, each path prefixed with
/// `prefix` + '/'. `scale` multiplies the seconds (e.g. a farm body
/// counted `jobs` times).
void absorb_breakdown(std::vector<BreakdownLine>& out,
                      const std::string& prefix,
                      const std::vector<BreakdownLine>& child,
                      double scale = 1.0);

}  // namespace pe::models::composition::detail
