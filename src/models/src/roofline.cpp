#include "perfeng/models/roofline.hpp"

#include <algorithm>
#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe::models {

RooflineModel::RooflineModel(double peak_flops, double memory_bandwidth)
    : peak_flops_(peak_flops), memory_bandwidth_(memory_bandwidth) {
  PE_REQUIRE(peak_flops > 0.0, "peak FLOP/s must be positive");
  PE_REQUIRE(memory_bandwidth > 0.0, "bandwidth must be positive");
  ceilings_.push_back({"peak", false, peak_flops});
  ceilings_.push_back({"DRAM", true, memory_bandwidth});
}

RooflineModel RooflineModel::from_machine(const machine::Machine& m) {
  m.check();
  RooflineModel model(m.peak_flops, m.dram_bandwidth());
  for (std::size_t i = 0; i + 1 < m.hierarchy.size(); ++i) {
    const machine::MemoryLevel& level = m.hierarchy[i];
    // The classic model already owns the "DRAM" label.
    if (level.name != "DRAM")
      model.add_bandwidth_ceiling(level.name, level.bandwidth);
  }
  return model;
}

void RooflineModel::add_bandwidth_ceiling(const std::string& label,
                                          double bandwidth) {
  PE_REQUIRE(bandwidth > 0.0, "bandwidth must be positive");
  require_unique_name(ceilings_, label, "ceiling label",
                      [](const Ceiling& c) -> const std::string& {
                        return c.label;
                      });
  ceilings_.push_back({label, true, bandwidth});
}

void RooflineModel::add_compute_ceiling(const std::string& label,
                                        double flops) {
  PE_REQUIRE(flops > 0.0, "FLOP/s must be positive");
  PE_REQUIRE(flops <= peak_flops_, "compute ceiling above the peak");
  require_unique_name(ceilings_, label, "ceiling label",
                      [](const Ceiling& c) -> const std::string& {
                        return c.label;
                      });
  ceilings_.push_back({label, false, flops});
}

double RooflineModel::ridge_intensity() const {
  return peak_flops_ / memory_bandwidth_;
}

double RooflineModel::attainable(double intensity) const {
  PE_REQUIRE(intensity > 0.0, "intensity must be positive");
  return std::min(peak_flops_, intensity * memory_bandwidth_);
}

double RooflineModel::attainable_at_level(double intensity,
                                          const std::string& label) const {
  PE_REQUIRE(intensity > 0.0, "intensity must be positive");
  for (const auto& c : ceilings_) {
    if (c.label == label) {
      PE_REQUIRE(c.is_bandwidth, "ceiling is not a bandwidth ceiling");
      return std::min(peak_flops_, intensity * c.value);
    }
  }
  throw Error("roofline: no ceiling labeled '" + label + "'");
}

Bound RooflineModel::bound_at(double intensity) const {
  return intensity < ridge_intensity() ? Bound::kMemory : Bound::kCompute;
}

double RooflineModel::efficiency(double intensity,
                                 double measured_flops) const {
  PE_REQUIRE(measured_flops >= 0.0, "negative measured FLOP/s");
  return measured_flops / attainable(intensity);
}

std::vector<RooflineModel::CurvePoint> RooflineModel::curve(
    double min_intensity, double max_intensity, int points) const {
  PE_REQUIRE(min_intensity > 0.0, "intensity must be positive");
  PE_REQUIRE(max_intensity > min_intensity, "empty intensity range");
  PE_REQUIRE(points >= 2, "need at least two curve points");
  std::vector<CurvePoint> out;
  out.reserve(static_cast<std::size_t>(points));
  const double log_lo = std::log(min_intensity);
  const double log_hi = std::log(max_intensity);
  for (int i = 0; i < points; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(points - 1);
    const double intensity = std::exp(log_lo + frac * (log_hi - log_lo));
    out.push_back({intensity, attainable(intensity)});
  }
  return out;
}

RooflinePlacement place_kernel(const RooflineModel& machine,
                               const KernelCharacterization& kernel,
                               double measured_seconds) {
  PE_REQUIRE(measured_seconds > 0.0, "measured time must be positive");
  PE_REQUIRE(kernel.flops > 0.0, "kernel needs a FLOP count");
  PE_REQUIRE(kernel.bytes > 0.0, "kernel needs a byte count");
  RooflinePlacement p;
  p.kernel = kernel;
  p.measured_flops = kernel.flops / measured_seconds;
  p.attainable_flops = machine.attainable(kernel.intensity());
  p.bound = machine.bound_at(kernel.intensity());
  p.efficiency = p.measured_flops / p.attainable_flops;
  return p;
}

ModelEval RooflineModel::eval(const KernelCharacterization& kernel) const {
  PE_REQUIRE(kernel.flops > 0.0, "kernel needs a FLOP count");
  PE_REQUIRE(kernel.bytes > 0.0, "kernel needs a byte count");
  Evaluation e;
  e.seconds = kernel.flops / attainable(kernel.intensity());
  e.footprint.flops = kernel.flops;
  e.footprint.bytes = kernel.bytes;
  return ModelEval::constant("roofline." + kernel.name, e);
}

}  // namespace pe::models
