#include "perfeng/models/interference.hpp"

#include <algorithm>
#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe::models {

SharedSystemModel SharedSystemModel::from_machine(
    const machine::Machine& m) {
  m.check();
  return {m.peak_flops, m.dram_bandwidth()};
}

double SharedSystemModel::tenant_bandwidth(unsigned tenants) const {
  PE_REQUIRE(tenants >= 1, "need at least one tenant");
  PE_REQUIRE(total_bandwidth > 0.0 && peak_flops > 0.0,
             "roofs must be positive");
  return total_bandwidth / static_cast<double>(tenants);
}

double SharedSystemModel::kernel_time(double flops, double bytes,
                                      unsigned tenants) const {
  PE_REQUIRE(flops >= 0.0 && bytes >= 0.0, "negative work");
  return std::max(flops / peak_flops, bytes / tenant_bandwidth(tenants));
}

double SharedSystemModel::slowdown(double flops, double bytes,
                                   unsigned tenants) const {
  const double alone = kernel_time(flops, bytes, 1);
  PE_REQUIRE(alone > 0.0, "kernel needs some work");
  return kernel_time(flops, bytes, tenants) / alone;
}

double SharedSystemModel::immunity_intensity(unsigned tenants) const {
  // Compute time >= shared memory time iff AI >= peak / (BW / tenants).
  return peak_flops / tenant_bandwidth(tenants);
}

unsigned SharedSystemModel::estimate_tenants(double flops, double bytes,
                                             double observed_slowdown,
                                             unsigned max_tenants) const {
  PE_REQUIRE(observed_slowdown >= 1.0, "slowdown must be >= 1");
  PE_REQUIRE(max_tenants >= 1, "need a positive tenant cap");
  unsigned best = 1;
  double best_err = std::abs(slowdown(flops, bytes, 1) - observed_slowdown);
  for (unsigned t = 2; t <= max_tenants; ++t) {
    const double err =
        std::abs(slowdown(flops, bytes, t) - observed_slowdown);
    if (err < best_err) {
      best_err = err;
      best = t;
    }
  }
  return best;
}

ModelEval SharedSystemModel::eval(double flops, double bytes,
                                  unsigned tenants) const {
  Evaluation e;
  e.seconds = kernel_time(flops, bytes, tenants);
  e.footprint.flops = flops;
  e.footprint.bytes = bytes;
  return ModelEval::constant("interference.shared", e);
}

}  // namespace pe::models
