#include "perfeng/models/offload.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "perfeng/common/error.hpp"

namespace pe::models {

DeviceModel DeviceModel::from_machine(const machine::Machine& m) {
  m.check();
  return {m.total_peak_flops(), m.dram_bandwidth()};
}

OffloadModel OffloadModel::from_machine(const machine::Machine& host,
                                        const machine::Machine& device) {
  PE_REQUIRE(device.has_link(),
             "device machine carries no transfer-link coefficients");
  return {DeviceModel::from_machine(host), DeviceModel::from_machine(device),
          {device.link_alpha, device.link_beta}};
}

double DeviceModel::kernel_time(double flops, double bytes) const {
  PE_REQUIRE(flops >= 0.0 && bytes >= 0.0, "negative work");
  PE_REQUIRE(peak_flops > 0.0 && bandwidth > 0.0,
             "device roofs must be positive");
  return std::max(flops / peak_flops, bytes / bandwidth);
}

double TransferLink::transfer_time(double bytes) const {
  PE_REQUIRE(bytes >= 0.0, "negative transfer size");
  PE_REQUIRE(alpha >= 0.0 && beta >= 0.0, "link costs must be non-negative");
  if (bytes == 0.0) return 0.0;
  return alpha + beta * bytes;
}

double OffloadModel::host_time(double flops, double bytes) const {
  return host.kernel_time(flops, bytes);
}

double OffloadModel::offload_time(double flops, double input_bytes,
                                  double output_bytes) const {
  // The transferred payload is also what the device kernel reads/writes.
  const double device_bytes = input_bytes + output_bytes;
  return link.transfer_time(input_bytes) +
         device.kernel_time(flops, device_bytes) +
         link.transfer_time(output_bytes);
}

double OffloadModel::offload_speedup(double flops, double input_bytes,
                                     double output_bytes) const {
  const double host_t = host_time(flops, input_bytes + output_bytes);
  const double dev_t = offload_time(flops, input_bytes, output_bytes);
  PE_REQUIRE(dev_t > 0.0, "degenerate offload time");
  return host_t / dev_t;
}

double OffloadModel::amortization_factor(double flops, double bytes,
                                         double input_bytes,
                                         double output_bytes) const {
  PE_REQUIRE(flops > 0.0, "work must be positive");
  const double host_unit = host.kernel_time(flops, bytes);
  const double device_unit = device.kernel_time(flops, bytes);
  if (device_unit >= host_unit)
    return std::numeric_limits<double>::infinity();
  const double transfers = link.transfer_time(input_bytes) +
                           link.transfer_time(output_bytes);
  // Solve w * host_unit = transfers + w * device_unit.
  return transfers / (host_unit - device_unit);
}

std::size_t offload_breakeven_matmul(const OffloadModel& m, std::size_t lo,
                                     std::size_t hi) {
  PE_REQUIRE(lo >= 1 && lo <= hi, "bad search range");
  for (std::size_t n = lo; n <= hi; ++n) {
    const double nd = static_cast<double>(n);
    const double flops = 2.0 * nd * nd * nd;
    const double in_bytes = 2.0 * nd * nd * sizeof(double);   // A and B
    const double out_bytes = nd * nd * sizeof(double);        // C
    if (m.offload_speedup(flops, in_bytes, out_bytes) > 1.0) return n;
  }
  return 0;
}

ModelEval OffloadModel::eval_host(double flops, double bytes) const {
  Evaluation e;
  e.seconds = host_time(flops, bytes);
  e.footprint.flops = flops;
  e.footprint.bytes = bytes;
  return ModelEval::constant("offload.host", e);
}

ModelEval OffloadModel::eval_offload(double flops, double input_bytes,
                                     double output_bytes) const {
  Evaluation e;
  e.seconds = offload_time(flops, input_bytes, output_bytes);
  e.footprint.flops = flops;
  e.footprint.bytes = input_bytes + output_bytes;
  return ModelEval::constant("offload.device", e);
}

}  // namespace pe::models
