#pragma once

/// \file composition/patterns.hpp
/// The pattern constructors: `map`, `farm`, `pipeline`, `reduce` and
/// `divide_and_conquer`, each a structured way to multiply and fold the
/// predictions of child nodes (leaves come from `node.hpp`).
///
/// Composition rules (W = work, S = span; see node.hpp for the fold):
///
///  * `map {c1..cn}`  — independent children on the context's workers:
///        W = sum Wi (+ dispatch),  S = max Si (+ dispatch),
///        seconds = Graham(W, S, workers).
///    At workers == 1 this is exactly `sum ci.seconds` — serial maps are
///    sums. Nesting maps is associative because sums and maxes are.
///  * `farm (body, jobs, replicas)` — `jobs` instances of `body` served
///    by R = min(replicas, workers) replicas:
///        W = jobs * W_body (+ dispatch),  S = S_body (+ dispatch),
///        seconds = Graham(W, S, R),
///        bottleneck = body.seconds / R   (steady-state service interval,
///                                         what a pipeline stage sees).
///  * `pipeline {s1..sk} x items` — stages process a stream:
///        latency    = sum stage latencies,
///        interval   = max(max stage bottlenecks,
///                         sum stage work / workers),
///        seconds    = latency + (items - 1) * interval.
///    The work term makes the drain rate machine-aware: with fewer
///    workers than busy stages, throughput is CPU-bound, and on one
///    worker the pipeline degenerates exactly to the serial sum. A
///    pipeline charges no dispatch of its own (stages carry theirs), so
///    nesting a single-item pipeline as a stage is exactly associative.
///  * `reduce (combine, leaves)` — a combining tree over `leaves` inputs:
///        W = (leaves - 1) * W_c (+ dispatch),
///        S = ceil(log2 leaves) * S_c (+ dispatch).
///  * `divide_and_conquer (divide, base, merge, branching, depth)` —
///    `branching`-ary recursion of `depth` levels:
///        W = sum_k b^k (W_div + W_merge) + b^depth * W_base (+ dispatch),
///        S = depth * (S_div + S_merge) + S_base (+ dispatch).
///
/// Dispatch (`Context::dispatch_seconds`) is charged once per node that
/// actually opens a parallel region, i.e. only when the effective width
/// exceeds one — serial evaluation stays dispatch-free so the algebra
/// identities hold exactly.
///
/// The constructors operate on the machine calibration only through
/// `Context::from_machine` (node.hpp); no factory of their own lives here.
// perfeng-lint: allow-file(model-from-machine)

#include <cstddef>
#include <vector>

#include "perfeng/models/composition/node.hpp"

namespace pe::models::composition {

/// Independent children executed by the context's worker pool.
[[nodiscard]] NodePtr map(std::vector<NodePtr> children);

/// Uniform map: `iterations` instances of the same body (a parallel-for;
/// only one body prediction is computed, then scaled).
[[nodiscard]] NodePtr map(NodePtr body, std::size_t iterations);

/// Task farm: `jobs` instances of `body` across `replicas` workers
/// (capped by the context's worker count).
[[nodiscard]] NodePtr farm(NodePtr body, std::size_t jobs,
                           unsigned replicas);

/// Stream pipeline over `items` items. Build nested stages with the
/// default `items == 1` so their seconds equal their latency.
[[nodiscard]] NodePtr pipeline(std::vector<NodePtr> stages,
                               std::size_t items = 1);

/// Combining tree over `leaves` inputs; each combine is one `combine`
/// prediction. `leaves >= 1`; a single leaf needs no combining.
[[nodiscard]] NodePtr reduce(NodePtr combine, std::size_t leaves);

/// `branching`-ary divide-and-conquer of `depth` levels: `divide` and
/// `merge` run at every internal node, `base` at each of the
/// branching^depth leaves. `depth == 0` degenerates to `base` alone.
[[nodiscard]] NodePtr divide_and_conquer(NodePtr divide, NodePtr base,
                                         NodePtr merge, unsigned branching,
                                         unsigned depth);

}  // namespace pe::models::composition
