#pragma once

/// \file composition/node.hpp
/// The spine of the compositional prediction system: an evaluation
/// context calibrated from a machine description, a `Prediction` value
/// rich enough for pattern nodes to compose, and the abstract `Node`
/// every pattern implements.
///
/// The refactor's thesis (ROADMAP: "compose the model zoo"): each model
/// in `pe::models` prices one kernel or one mechanism in isolation;
/// real programs are *structures* of kernels — maps over tiles, farms of
/// requests, pipelines of stages. A pattern tree mirrors that structure
/// and folds child predictions upward with machine-aware rules:
///
///  * `work_seconds`/`span_seconds` — total serialized work W and
///    critical path S, composed per Brent/Graham; a node's makespan on
///    `workers` cores is the two-sided bound collapsed to the classic
///    estimate `W/P + (1 - 1/P) * S` (exactly `W` when P == 1, so serial
///    composition degenerates to plain summation — the algebra identity
///    the tests pin).
///  * `latency_seconds`/`bottleneck_seconds` — single-item traversal
///    time and slowest repeating interval; `Pipeline` composes these so
///    throughput is priced by the bottleneck stage, and nesting a
///    pipeline inside a pipeline is associative.
///  * `dispatch_seconds` — scheduler cost charged once per predicted
///    parallel region, from `Machine::bulk_dispatch_seconds()` (the
///    `probe_scheduler` calibration): composition is where per-region
///    dispatch finally meets whole-program structure.
///  * `comm_seconds` — alpha-beta communication terms from the context's
///    link coefficients, so distributed compositions can be cross-checked
///    against `pe::sim` (netsim / DES).
///
/// `Footprint`s absorb upward alongside time, so one tree evaluation
/// also yields whole-program FLOPs, traffic and joules.

#include <memory>
#include <string>
#include <vector>

#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models::composition {

/// Everything a pattern node may charge for, bound to one machine
/// calibration. Built by `from_machine` so the whole tree prices
/// parallelism, dispatch and communication from a shared description.
struct Context {
  unsigned workers = 1;           ///< cores available to parallel nodes
  double dispatch_seconds = 0.0;  ///< per-parallel-region scheduler cost
  double link_alpha = 0.0;        ///< per-message latency (s), comm nodes
  double link_beta = 0.0;         ///< per-byte time (s), comm nodes

  /// Calibrate from a machine description: `cores`,
  /// `bulk_dispatch_seconds()`, and the link coefficients (0 when the
  /// machine carries none — `Comm` nodes then predict zero cost).
  [[nodiscard]] static Context from_machine(const machine::Machine& m);

  /// The same calibration restricted to one worker: parallel patterns
  /// degenerate to serial sums and no dispatch is charged.
  [[nodiscard]] Context serial() const;
};

/// One line of a prediction's attribution: where the seconds come from.
/// Paths are slash-joined pattern labels ending in the leaf model name,
/// e.g. "map[x8]/leaf:analytical.matmul.tiled".
struct BreakdownLine {
  std::string path;
  double seconds = 0.0;

  bool operator==(const BreakdownLine&) const = default;
};

/// A whole-(sub)program prediction. `seconds` is the headline makespan;
/// the remaining fields are the composition state sibling patterns fold
/// over (see the file comment for the algebra).
struct Prediction {
  double seconds = 0.0;             ///< predicted makespan
  double work_seconds = 0.0;        ///< total serialized work (W)
  double span_seconds = 0.0;        ///< critical path (S, P = infinity)
  double latency_seconds = 0.0;     ///< one item end-to-end (pipelines)
  double bottleneck_seconds = 0.0;  ///< slowest repeating interval
  double dispatch_seconds = 0.0;    ///< scheduler cost included above
  double comm_seconds = 0.0;        ///< communication cost included above
  Footprint footprint;              ///< aggregate resource demand
  std::vector<BreakdownLine> breakdown;  ///< per-leaf attribution
};

/// A pattern-tree node. Immutable once built; `predict` is pure, so the
/// same tree evaluated twice under the same context returns identical
/// predictions (the determinism identity the tests pin).
class Node {
 public:
  virtual ~Node() = default;

  /// Fold this subtree into a prediction under `ctx`.
  [[nodiscard]] virtual Prediction predict(const Context& ctx) const = 0;

  /// Short structural label, e.g. "map[x8]" or "leaf:ecm.stream" — the
  /// path component this node contributes to breakdown lines.
  [[nodiscard]] virtual std::string label() const = 0;
};

/// Nodes are shared immutable values: one subtree can appear in several
/// compositions (a farm body reused in a pipeline stage, say).
using NodePtr = std::shared_ptr<const Node>;

/// Wrap any retrofitted model evaluation as a tree leaf. This is the
/// whole point of the `ModelEval` interface: every `eval*` adapter in
/// the model zoo plugs in here.
[[nodiscard]] NodePtr leaf(ModelEval model);

/// A communication step of `bytes` priced by the context's alpha-beta
/// link (`alpha + beta * bytes`; zero when `bytes == 0` or the context
/// has no link). `name` labels the transfer in breakdowns.
[[nodiscard]] NodePtr comm(std::string name, double bytes);

/// Render a prediction as an indented human-readable report (headline
/// seconds, the work/span/latency/bottleneck state, footprint, and the
/// breakdown table) — what `bench/composition_validate` prints.
[[nodiscard]] std::string format_prediction(const Prediction& p);

}  // namespace pe::models::composition
