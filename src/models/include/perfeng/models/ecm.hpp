#pragma once

/// \file ecm.hpp
/// Execution-Cache-Memory (ECM) model (Hager/Wellein school).
///
/// Where Roofline takes the max of compute and memory time, ECM decomposes
/// the per-cache-line cost of a streaming loop into in-core execution and
/// the data transfers between adjacent memory levels, then composes them
/// under an overlap assumption. We implement the classic non-overlapping
/// composition for data transfers with in-core work overlapping transfers
/// (the "serial transfer" variant):
///
///     T = max(T_core, T_data),  T_data = sum of per-level transfer times
///
/// plus the fully-serial pessimistic variant T = T_core + T_data. Real ECM
/// work distinguishes overlapping per-architecture; exposing both bounds
/// brackets the measurement, which is how Assignment 2 uses the model.

#include <string>
#include <vector>

#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// Per-level transfer cost for one unit of work (e.g. one cache line or one
/// loop iteration), in seconds.
struct EcmLevelCost {
  std::string from;   ///< e.g. "L2"
  std::string to;     ///< e.g. "L1"
  double seconds = 0.0;
};

/// ECM model for a streaming kernel.
class EcmModel {
 public:
  /// `core_seconds`: in-core execution time per unit of work.
  explicit EcmModel(double core_seconds);

  /// ECM model of a streaming kernel on a machine: in-core time is
  /// `unit_flops` at the compute peak, and `unit_bytes` stream through
  /// every hierarchy boundary — one transfer from each level into the
  /// next-faster one (and from the fastest level into the core) at that
  /// level's bandwidth.
  [[nodiscard]] static EcmModel from_machine(const machine::Machine& m,
                                             double unit_flops,
                                             double unit_bytes);

  /// Append a data-transfer contribution per unit of work.
  void add_transfer(const std::string& from, const std::string& to,
                    double seconds);

  [[nodiscard]] double core_seconds() const { return core_; }
  [[nodiscard]] double data_seconds() const;

  /// Optimistic prediction: core fully overlaps data transfers.
  [[nodiscard]] double predict_overlapped() const;

  /// Pessimistic prediction: everything serializes.
  [[nodiscard]] double predict_serial() const;

  /// True if a measurement falls inside [overlapped, serial] within `slack`
  /// (fraction, e.g. 0.15 widens each bound by 15%).
  [[nodiscard]] bool brackets(double measured_seconds,
                              double slack = 0.15) const;

  [[nodiscard]] const std::vector<EcmLevelCost>& transfers() const {
    return transfers_;
  }

  /// Composition adapter: the overlapped prediction for `units` of work,
  /// as "ecm.stream". Footprints are known only for `from_machine`-built
  /// models (the manual ctor does not carry per-unit FLOPs/bytes).
  [[nodiscard]] ModelEval eval(double units) const;

 private:
  double core_;
  std::vector<EcmLevelCost> transfers_;
  double unit_flops_ = 0.0;  ///< per-unit work, when built from_machine
  double unit_bytes_ = 0.0;
};

}  // namespace pe::models
