#pragma once

/// \file analytical.hpp
/// Analytical performance models of the course kernels (Assignment 2).
///
/// Three granularities, coarse to fine, exactly as the assignment has
/// students discover them:
///
///  1. *Coarse / function level*: T = useful FLOPs / peak FLOP/s. Cheap,
///     explains nothing about memory behaviour.
///  2. *Traffic level* (Roofline-style): T = max(T_compute, T_memory) with a
///     per-variant memory-traffic model that knows about cache capacity and
///     line granularity. Captures why loop interchange and tiling help.
///  3. *Instruction level*: T = Σ op_count(op) × op_cost(op) from a measured
///     per-operation cost table (the host-measured stand-in for Agner Fog's
///     tables / OSACA).
///
/// Every `predict_*` returns seconds per kernel invocation. All models take
/// an explicit `Calibration`, which is produced from microbenchmarks — the
/// models contain no magic constants about the host.

#include <cstddef>
#include <map>

#include "perfeng/machine/machine.hpp"
#include "perfeng/microbench/op_costs.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// Machine parameters every analytical model is calibrated from.
struct Calibration {
  double peak_flops = 1e9;             ///< FLOP/s roof
  double dram_bandwidth = 1e10;        ///< bytes/s to memory
  double cache_bandwidth = 5e10;       ///< bytes/s for cache-resident sets
  std::size_t cache_bytes = 1u << 21;  ///< effective capacity for reuse
  std::size_t line_bytes = 64;         ///< cache line granularity

  /// Calibrate from a machine description: compute and DRAM roofs, the
  /// fastest level's bandwidth for cache-resident sets, the largest cache
  /// capacity for reuse, and the DRAM line granularity.
  [[nodiscard]] static Calibration from_machine(const machine::Machine& m);
};

/// Compose compute and memory time Roofline-style (max = full overlap).
[[nodiscard]] double traffic_time(double flops, double dram_bytes,
                                  const Calibration& calib);

// ---------------------------------------------------------------------------
// Dense matrix multiplication C = A * B (n x n doubles, row-major).
// ---------------------------------------------------------------------------

/// Loop organizations modeled (matching perfeng/kernels/matmul.hpp).
enum class MatmulVariant { kNaiveIjk, kInterchangedIkj, kTiled };

/// Analytical matmul model.
class MatmulModel {
 public:
  MatmulModel(std::size_t n, MatmulVariant variant, Calibration calib);

  /// Useful work: 2 n^3 (one multiply + one add per inner step).
  [[nodiscard]] double flops() const;

  /// Estimated DRAM traffic in bytes for this variant and cache capacity.
  ///
  /// ijk: row of A reused (8 n^2); B walked down columns -> one full line
  ///      per element (line_bytes * n^3) unless all of B fits in cache;
  ///      C streamed once (16 n^2 for read+write).
  /// ikj: all streams sequential; B re-read per i (8 n^3) unless resident;
  ///      A read once, C row reused across k.
  /// tiled: with tile t chosen so three t x t blocks fit in cache, each
  ///      operand block is loaded n/t times -> ~ 2 * 8 n^3 / t + 16 n^2.
  [[nodiscard]] double dram_bytes() const;

  /// Tile edge used by the tiled traffic model (largest t with
  /// 3 t^2 doubles <= cache_bytes, floored to a multiple of 8, min 8).
  [[nodiscard]] std::size_t tile_edge() const;

  /// Granularity 1: FLOPs / peak.
  [[nodiscard]] double predict_coarse() const;

  /// Granularity 2: Roofline-style with the variant traffic model.
  [[nodiscard]] double predict_traffic() const;

  /// Granularity 3: per-iteration instruction mix x measured op costs.
  /// The inner step is one FMA (throughput-bound across iterations).
  [[nodiscard]] double predict_instruction(
      const microbench::OpCostTable& ops) const;

  /// Composition adapter: the traffic-level prediction with its FLOP and
  /// DRAM-byte footprint, as "analytical.matmul.<variant>".
  [[nodiscard]] ModelEval eval() const;

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] MatmulVariant variant() const { return variant_; }

 private:
  std::size_t n_;
  MatmulVariant variant_;
  Calibration calib_;
};

// ---------------------------------------------------------------------------
// Histogram of n values into b bins (Assignment 2's data-dependent kernel).
// ---------------------------------------------------------------------------

/// Analytical histogram model with data-dependent bin locality.
///
/// Per element: one sequential input load plus one read-modify-write of a
/// bin counter. The *distribution* of bin indices decides whether counter
/// updates hit in cache: with Zipf skew `s`, the hot bins that fit in the
/// cache absorb most updates; with uniform indices over a table larger than
/// the cache, most updates miss. This is the "data-dependent behaviour"
/// the assignment adds on purpose.
class HistogramModel {
 public:
  HistogramModel(std::size_t elements, std::size_t bins, double zipf_skew,
                 Calibration calib);

  /// Probability that a counter update misses the cache under the model.
  [[nodiscard]] double update_miss_probability() const;

  /// Estimated DRAM traffic: streaming input + missing counter updates.
  [[nodiscard]] double dram_bytes() const;

  /// Coarse model: n updates at cache speed (ignores data dependence).
  [[nodiscard]] double predict_coarse() const;

  /// Traffic model including the data-dependent miss term.
  [[nodiscard]] double predict_traffic() const;

  /// Composition adapter: the traffic-level prediction as
  /// "analytical.histogram".
  [[nodiscard]] ModelEval eval() const;

 private:
  std::size_t elements_;
  std::size_t bins_;
  double skew_;
  Calibration calib_;
};

// ---------------------------------------------------------------------------
// Sparse matrix-vector multiply y = A x (Assignment 3's analytical baseline).
// ---------------------------------------------------------------------------

/// Storage formats modeled (matching perfeng/kernels/sparse).
enum class SpmvFormat { kCsr, kCsc, kCoo };

/// Analytical SpMV model: memory-bound with a format-dependent traffic
/// term and an x-gather term that depends on column locality.
class SpmvModel {
 public:
  /// `x_locality` in [0,1]: fraction of x-gathers that hit in cache
  ///   (1 = banded/structured matrix, 0 = scattered columns).
  SpmvModel(std::size_t rows, std::size_t cols, std::size_t nnz,
            SpmvFormat format, double x_locality, Calibration calib);

  [[nodiscard]] double flops() const;  ///< 2 nnz
  [[nodiscard]] double dram_bytes() const;
  [[nodiscard]] double predict() const;  ///< Roofline-style composition

  /// Composition adapter: `predict()` with its footprint, as
  /// "analytical.spmv".
  [[nodiscard]] ModelEval eval() const;

 private:
  std::size_t rows_, cols_, nnz_;
  SpmvFormat format_;
  double x_locality_;
  Calibration calib_;
};

}  // namespace pe::models
