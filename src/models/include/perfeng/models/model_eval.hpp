#pragma once

/// \file model_eval.hpp
/// The common currency of the model zoo: every model in perfeng/models can
/// answer one question — "how long will this workload take, using what
/// resources?" — and `ModelEval` is that answer packaged as a value.
///
/// Each model header keeps its own rich API (ceilings, curves, bounds,
/// break-evens) and its `from_machine()` factory; on top of those, every
/// model now exposes one or more `eval*()` adapters returning a `ModelEval`
/// so any calibrated model+workload pairing can become a `Leaf` of a
/// composition tree (perfeng/models/composition) and be combined with
/// others into a whole-program prediction. Evaluations are pure arithmetic:
/// re-evaluating the same `ModelEval` returns bit-identical results.
///
/// This header defines the interface, not a model, so it carries no
/// from_machine() factory of its own.
/// perfeng-lint: allow-file(model-from-machine)

#include <functional>
#include <string>
#include <utility>

namespace pe::models {

/// Resource footprint of one predicted execution. Zero means "the model
/// does not know", not "none".
struct Footprint {
  double flops = 0.0;   ///< useful floating-point work
  double bytes = 0.0;   ///< memory or link traffic
  double cores = 1.0;   ///< parallel lanes the prediction assumes busy
  double joules = 0.0;  ///< energy, when the model attributes it

  /// Accumulate another footprint (cores are taken as the max: two
  /// sequential phases need the wider of the two, not the sum).
  void absorb(const Footprint& other);

  bool operator==(const Footprint&) const = default;
};

/// What every model answers: predicted seconds plus the footprint.
struct Evaluation {
  double seconds = 0.0;
  Footprint footprint;

  bool operator==(const Evaluation&) const = default;
};

/// Type-erased handle to one calibrated model + workload pairing.
///
/// Value-semantic and cheap to copy; the wrapped callable must be pure
/// (same Evaluation on every call) — the composition layer's determinism
/// guarantee rests on it, and tests/test_composition asserts it.
class ModelEval {
 public:
  /// Wrap a pure evaluation callable under a human-readable name
  /// (convention: "<header>.<model>", e.g. "analytical.matmul.tiled").
  ModelEval(std::string name, std::function<Evaluation()> fn);

  /// A fixed, precomputed evaluation (measurement stubs, tests).
  [[nodiscard]] static ModelEval constant(std::string name, Evaluation e);

  /// Run the wrapped model.
  [[nodiscard]] Evaluation evaluate() const;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::function<Evaluation()> fn_;
};

}  // namespace pe::models
