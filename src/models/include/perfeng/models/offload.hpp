#pragma once

/// \file offload.hpp
/// Accelerator-offload modeling for heterogeneous (CPU + GPU) systems.
///
/// The course targets "multi-node heterogeneous platforms combining CPUs
/// and GPUs"; with no GPU in this environment, the *decision model* is the
/// reproducible part: a device is a second Roofline (its own peak and
/// bandwidth) behind a transfer link (α + β·bytes each way). The model
/// answers the three questions every offload project starts with:
///
///   1. how long does the kernel take on the host vs the device?
///   2. including transfers, when does offload win (break-even size)?
///   3. how much work must stay resident on the device to amortize copies?

#include <cstddef>

#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// One execution target: a Roofline pair.
struct DeviceModel {
  double peak_flops = 1e9;       ///< device compute roof (FLOP/s)
  double bandwidth = 1e10;       ///< device memory roof (bytes/s)

  /// Calibrate from a machine description: the whole-machine compute
  /// roof (per-core peak x cores) over the DRAM roof.
  [[nodiscard]] static DeviceModel from_machine(const machine::Machine& m);

  /// Roofline-attainable execution time for (flops, bytes) of work.
  [[nodiscard]] double kernel_time(double flops, double bytes) const;
};

/// Host-device transfer link (PCIe-style): alpha + bytes * beta per copy.
struct TransferLink {
  double alpha = 1e-5;   ///< per-transfer latency (s)
  double beta = 1e-10;   ///< per-byte time (s); 1/bandwidth

  [[nodiscard]] double transfer_time(double bytes) const;
};

/// Full offload decision model.
struct OffloadModel {
  DeviceModel host;
  DeviceModel device;
  TransferLink link;

  /// Calibrate both rooflines from machine descriptions; the transfer
  /// link comes from the device machine's link coefficients
  /// (`Machine::has_link()` must hold on `device`).
  [[nodiscard]] static OffloadModel from_machine(
      const machine::Machine& host, const machine::Machine& device);

  /// Time on the host (no transfers).
  [[nodiscard]] double host_time(double flops, double bytes) const;

  /// Time offloaded: input copy + device kernel + output copy.
  [[nodiscard]] double offload_time(double flops, double input_bytes,
                                    double output_bytes) const;

  /// Offload speedup (> 1 means the device wins end-to-end).
  [[nodiscard]] double offload_speedup(double flops, double input_bytes,
                                       double output_bytes) const;

  /// Smallest work multiplier w such that offloading w * (flops, bytes)
  /// with the *same* transfer volume wins — the classic "keep data
  /// resident and batch kernels" amortization factor. Returns infinity
  /// when the device kernel alone is slower than the host.
  [[nodiscard]] double amortization_factor(double flops, double bytes,
                                           double input_bytes,
                                           double output_bytes) const;

  /// Composition adapters: the same kernel kept on the host
  /// ("offload.host") or shipped to the device including both copies
  /// ("offload.device") — so an offload decision can be made by swapping
  /// one leaf of a larger composition.
  [[nodiscard]] ModelEval eval_host(double flops, double bytes) const;
  [[nodiscard]] ModelEval eval_offload(double flops, double input_bytes,
                                       double output_bytes) const;
};

/// Break-even matrix order for an n x n x n matmul-like kernel (2 n^3
/// FLOPs, 3 n^2 * 8 bytes of operands each way at most): the smallest n
/// in [lo, hi] where offload wins, or 0 when it never does.
[[nodiscard]] std::size_t offload_breakeven_matmul(const OffloadModel& m,
                                                   std::size_t lo,
                                                   std::size_t hi);

}  // namespace pe::models
