#pragma once

/// \file queuing.hpp
/// Queuing-theory closed forms taught in the course: M/M/1, M/M/c
/// (Erlang C), M/G/1 (Pollaczek–Khinchine), Little's law, and the
/// interactive response-time law.
///
/// Validated against the discrete-event simulator in perfeng/sim by the
/// `queuing_theory` bench: the closed forms and the simulation must agree
/// within sampling error — a course exercise in trusting (and distrusting)
/// analytical models.

#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// Steady-state metrics of a queueing station.
struct QueueMetrics {
  double utilization = 0.0;    ///< rho (per server)
  double mean_wait = 0.0;      ///< Wq: time in queue
  double mean_response = 0.0;  ///< W = Wq + service
  double mean_queue_length = 0.0;  ///< Lq = lambda Wq
  double mean_in_system = 0.0;     ///< L  = lambda W
};

/// M/M/1 closed form; requires lambda < mu.
[[nodiscard]] QueueMetrics mm1(double arrival_rate, double service_rate);

/// Erlang C probability that an arrival must wait in an M/M/c system.
[[nodiscard]] double erlang_c(double arrival_rate, double service_rate,
                              unsigned servers);

/// M/M/c closed form; requires lambda < c * mu.
[[nodiscard]] QueueMetrics mmc(double arrival_rate, double service_rate,
                               unsigned servers);

/// M/G/1 via Pollaczek–Khinchine: service has mean 1/mu and squared
/// coefficient of variation `scv` (1 = exponential, 0 = deterministic).
[[nodiscard]] QueueMetrics mg1(double arrival_rate, double service_rate,
                               double scv);

/// Little's law: mean number in system from throughput and response time.
[[nodiscard]] double littles_law_occupancy(double throughput,
                                           double response_time);

/// Interactive response-time law: R = N/X - Z for N users with think time Z.
[[nodiscard]] double interactive_response_time(double users,
                                               double throughput,
                                               double think_time);

/// The machine side of a queueing station: how fast one server (core)
/// retires requests of a known shape, so arrival rates can be judged
/// against a calibrated service roof instead of a guessed mu.
struct ServiceModel {
  double service_rate = 0.0;  ///< requests/s one server sustains
  unsigned servers = 1;       ///< cores available as parallel servers

  /// Calibrate from a machine description: the per-request service time
  /// is the single-core Roofline time of (flops, bytes) per request, and
  /// the machine's cores serve in parallel.
  [[nodiscard]] static ServiceModel from_machine(const machine::Machine& m,
                                                 double flops_per_request,
                                                 double bytes_per_request);

  /// M/M/1 on one server of this machine.
  [[nodiscard]] QueueMetrics mm1(double arrival_rate) const;

  /// M/M/c across all of this machine's cores.
  [[nodiscard]] QueueMetrics mmc(double arrival_rate) const;

  /// Highest arrival rate the whole machine can absorb (c * mu).
  [[nodiscard]] double saturation_rate() const;

  /// Composition adapters, as "queuing.wait" / "queuing.service": the
  /// M/M/c mean queueing delay at `arrival_rate` (an admission stage) and
  /// the bare per-request service time (a worker-body leaf). Together they
  /// let a whole submission campaign be expressed as a pattern tree whose
  /// admission leaf reproduces the closed form.
  [[nodiscard]] ModelEval eval_wait(double arrival_rate) const;
  [[nodiscard]] ModelEval eval_service() const;
};

}  // namespace pe::models
