#pragma once

/// \file network.hpp
/// α-β (Hockney) communication cost model and collective predictions.
///
/// A point-to-point message of m bytes costs α + β·m. The closed forms below
/// predict the collectives implemented by the message-passing simulator in
/// perfeng/sim/netsim.hpp; the `distributed_model` bench compares the two,
/// and the strong-scaling helper exposes the compute/communication crossover
/// that the course's scale-out lectures build intuition for.

#include <cstddef>

#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// Hockney point-to-point model.
struct AlphaBetaModel {
  double alpha = 1e-6;  ///< per-message latency (s)
  double beta = 1e-10;  ///< per-byte time (s)

  /// Calibrate from a machine description's interconnect coefficients;
  /// the machine must carry them (`Machine::has_link()`).
  [[nodiscard]] static AlphaBetaModel from_machine(
      const machine::Machine& m);

  /// Cost of one m-byte message.
  [[nodiscard]] double p2p(std::size_t bytes) const;

  /// Binomial-tree broadcast of m bytes across p ranks:
  /// ceil(log2 p) sequential message steps.
  [[nodiscard]] double broadcast(unsigned ranks, std::size_t bytes) const;

  /// Ring allreduce of m bytes across p ranks: 2(p-1) steps of m/p bytes.
  [[nodiscard]] double ring_allreduce(unsigned ranks,
                                      std::size_t bytes) const;

  /// 1-D halo exchange: two neighbour messages, overlapping directions.
  [[nodiscard]] double halo_exchange(std::size_t halo_bytes) const;

  /// Composition adapters: a point-to-point transfer ("network.p2p"), a
  /// broadcast ("network.broadcast"), and a ring allreduce
  /// ("network.allreduce") as communication leaves. The footprint records
  /// the payload bytes and, for collectives, the ranks as busy lanes.
  [[nodiscard]] ModelEval eval_p2p(std::size_t bytes) const;
  [[nodiscard]] ModelEval eval_broadcast(unsigned ranks,
                                         std::size_t bytes) const;
  [[nodiscard]] ModelEval eval_allreduce(unsigned ranks,
                                         std::size_t bytes) const;
};

/// Strong-scaling prediction for a data-parallel iteration: total work
/// `flops` split across p ranks at `flops_per_second` each, plus a halo
/// exchange of `halo_bytes` and a scalar residual ring-allreduce per
/// iteration (the p-dependent term that creates the scaling sweet spot).
[[nodiscard]] double strong_scaling_time(const AlphaBetaModel& net,
                                         double flops,
                                         double flops_per_second,
                                         unsigned ranks,
                                         std::size_t halo_bytes);

/// Rank count beyond which adding ranks stops helping (first p where time
/// increases, scanning 1..max_ranks); returns max_ranks if monotone.
[[nodiscard]] unsigned strong_scaling_sweet_spot(const AlphaBetaModel& net,
                                                 double flops,
                                                 double flops_per_second,
                                                 unsigned max_ranks,
                                                 std::size_t halo_bytes);

}  // namespace pe::models
