#pragma once

/// \file interference.hpp
/// Shared-system interference modeling — the paper's future-work topic
/// "(3) expanding ... towards shared systems like cloud computing".
///
/// On a multi-tenant node the compute pipeline is private per core but
/// the memory system is shared: co-runners shrink the bandwidth roof
/// while the compute roof stands. The model predicts per-kernel slowdown
/// from arithmetic intensity alone — memory-bound tenants suffer,
/// compute-bound ones barely notice — and inverts the same relation into
/// a co-runner detector: observed slowdown → estimated contention level.

#include <cstddef>

#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// A node shared by several tenants.
struct SharedSystemModel {
  double peak_flops = 1e10;       ///< per-tenant compute roof (private)
  double total_bandwidth = 2e10;  ///< shared memory bandwidth (bytes/s)

  /// Calibrate from a machine description: the per-core peak is each
  /// tenant's private compute roof, the DRAM roof is what they share.
  [[nodiscard]] static SharedSystemModel from_machine(
      const machine::Machine& m);

  /// Bandwidth available to one tenant among `tenants` equal co-runners.
  [[nodiscard]] double tenant_bandwidth(unsigned tenants) const;

  /// Roofline execution time of (flops, bytes) with `tenants` co-runners.
  [[nodiscard]] double kernel_time(double flops, double bytes,
                                   unsigned tenants) const;

  /// Slowdown of a kernel at `tenants` vs running alone (>= 1).
  [[nodiscard]] double slowdown(double flops, double bytes,
                                unsigned tenants) const;

  /// The intensity below which a kernel sees *any* slowdown at `tenants`
  /// co-runners (kernels above it remain compute-bound throughout).
  [[nodiscard]] double immunity_intensity(unsigned tenants) const;

  /// Invert the model: given a measured slowdown of a known kernel,
  /// estimate how many equal co-runners are present (>= 1; rounds to the
  /// nearest integer tenant count in [1, max_tenants]).
  [[nodiscard]] unsigned estimate_tenants(double flops, double bytes,
                                          double observed_slowdown,
                                          unsigned max_tenants = 64) const;

  /// Composition adapter: the kernel's time under `tenants` co-runners
  /// ("interference.shared") — a leaf that prices multi-tenancy into a
  /// larger composition.
  [[nodiscard]] ModelEval eval(double flops, double bytes,
                               unsigned tenants) const;
};

}  // namespace pe::models
