#pragma once

/// \file gpu.hpp
/// GPU occupancy and latency-hiding model — the device-side modeling the
/// course teaches on CUDA hardware, reproduced as the calculator itself.
///
/// A streaming multiprocessor (SM) runs as many thread blocks as its
/// resources allow; occupancy is the fraction of resident warps achieved
/// out of the hardware maximum. The classic occupancy calculation takes
/// the min over four limits (blocks, warps, registers, shared memory).
/// The throughput model then applies Little's law to memory latency
/// hiding: attainable bandwidth scales with resident warps until the
/// machine peak is reached — why low-occupancy kernels are latency-bound
/// even with idle DRAM pins.

#include <cstddef>
#include <cstdint>

#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// Per-SM hardware limits (defaults ~ a compute-capability-7.x part).
struct GpuSmConfig {
  unsigned max_warps = 64;
  unsigned max_blocks = 32;
  std::uint64_t registers = 65536;       ///< 32-bit registers per SM
  std::uint64_t shared_memory = 98304;   ///< bytes per SM
  unsigned warp_size = 32;
};

/// Per-kernel resource usage.
struct GpuKernelConfig {
  unsigned threads_per_block = 256;
  unsigned registers_per_thread = 32;
  std::uint64_t shared_memory_per_block = 0;
};

/// Result of the occupancy calculation.
struct Occupancy {
  unsigned blocks_per_sm = 0;
  unsigned warps_per_sm = 0;
  double fraction = 0.0;  ///< warps / max_warps
  /// Which resource binds: "blocks", "warps", "registers" or "smem".
  const char* limiter = "";
};

/// The CUDA-occupancy-calculator computation.
[[nodiscard]] Occupancy occupancy(const GpuSmConfig& sm,
                                  const GpuKernelConfig& kernel);

/// Latency-hiding throughput: each resident warp sustains one outstanding
/// `bytes_per_access` request with `latency_seconds` round-trip; achieved
/// bandwidth = min(peak, warps * bytes / latency) per SM times num_sms —
/// Little's law applied to the memory system.
[[nodiscard]] double achievable_bandwidth(double peak_bandwidth,
                                          unsigned num_sms,
                                          unsigned warps_per_sm,
                                          double latency_seconds,
                                          std::size_t bytes_per_access);

/// Warps per SM needed to saturate the peak (ceil; latency-hiding
/// threshold), given the same parameters.
[[nodiscard]] unsigned warps_to_saturate(double peak_bandwidth,
                                         unsigned num_sms,
                                         double latency_seconds,
                                         std::size_t bytes_per_access);

/// The machine side of the latency-hiding throughput model: device peak
/// bandwidth, memory latency, and SM count bound to one description so the
/// curve and the saturation threshold come from a shared calibration.
struct LatencyHidingModel {
  double peak_bandwidth = 0.0;    ///< device memory roof (bytes/s)
  double memory_latency = 0.0;    ///< round-trip seconds per request
  unsigned num_sms = 1;           ///< parallel units issuing requests

  /// Calibrate from an accelerator machine description: the DRAM level's
  /// bandwidth and latency, with `cores` read as the SM count. The
  /// machine's DRAM latency must be known (non-zero).
  [[nodiscard]] static LatencyHidingModel from_machine(
      const machine::Machine& m);

  /// Achieved bandwidth with `warps_per_sm` resident warps.
  [[nodiscard]] double achievable(unsigned warps_per_sm,
                                  std::size_t bytes_per_access) const;

  /// Resident warps per SM needed to reach the peak.
  [[nodiscard]] unsigned saturation_warps(
      std::size_t bytes_per_access) const;

  /// Composition adapter: time to stream `bytes` at the bandwidth
  /// achievable with `warps_per_sm` resident warps, as "gpu.stream".
  [[nodiscard]] ModelEval eval(double bytes, unsigned warps_per_sm,
                               std::size_t bytes_per_access) const;
};

}  // namespace pe::models
