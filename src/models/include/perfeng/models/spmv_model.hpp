#pragma once

/// \file spmv_model.hpp
/// Analytical cost model for the sparse-format zoo.
///
/// The statmodel-trained `pe::kernels::FormatSelector` picks formats from
/// *measured* corpus data; this is its analytical sibling: a first-order
/// traffic model per format over a calibrated machine, so composition
/// trees can price a format choice without ever running the kernel (and
/// so the measured selector has a white-box baseline to be compared
/// against). SpMV is memory-bound in practice, so each format's cost is
/// its index+value+vector traffic over DRAM bandwidth, floored by the
/// compute roof.
///
/// The model deliberately speaks plain shape numbers (SpmvShape) rather
/// than pe::kernels types: the models layer stays independent of the
/// kernels layer, and callers bridge from FormatFeatures trivially.

#include <string>
#include <vector>

#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// Shape summary of a sparse matrix (mirrors the selector's features).
struct SpmvShape {
  double rows = 0.0;
  double cols = 0.0;
  double nnz = 0.0;
  double ell_padding = 1.0;   ///< stored slots / nnz for ELL (>= 1)
  double sell_padding = 1.0;  ///< stored slots / nnz for SELL-C-sigma
};

/// Bandwidth/compute cost model per sparse format.
class SpmvFormatModel {
 public:
  SpmvFormatModel(double peak_flops, double dram_bandwidth);

  /// Calibrate from a machine description: single-core compute roof and
  /// DRAM bandwidth.
  [[nodiscard]] static SpmvFormatModel from_machine(
      const machine::Machine& m);

  /// Format names this model prices (matching
  /// pe::kernels::spmv_format_name): "csr", "csc", "coo", "ell", "sell".
  [[nodiscard]] static const std::vector<std::string>& format_names();

  /// Predicted DRAM traffic of y = A x in `format`, in bytes.
  [[nodiscard]] double traffic_bytes(const SpmvShape& shape,
                                     const std::string& format) const;

  /// Predicted seconds: max(memory time, compute floor).
  [[nodiscard]] double predict_seconds(const SpmvShape& shape,
                                       const std::string& format) const;

  /// Cheapest predicted format for this shape.
  [[nodiscard]] std::string choose(const SpmvShape& shape) const;

  /// Composition adapter: one SpMV in `format`, named "spmv.<format>".
  [[nodiscard]] ModelEval eval(const SpmvShape& shape,
                               const std::string& format) const;

 private:
  double peak_flops_;
  double dram_bandwidth_;
};

}  // namespace pe::models
