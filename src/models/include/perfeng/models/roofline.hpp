#pragma once

/// \file roofline.hpp
/// The Roofline model (Williams, Waterman, Patterson, CACM 2009) and its
/// cache-aware extension — the subject of Assignment 1.
///
/// A machine is two ceilings: peak compute (FLOP/s) and peak memory
/// bandwidth (byte/s); an application is a point on the x-axis (arithmetic
/// intensity, FLOP/byte). Attainable performance is
///     min(peak_flops, intensity * bandwidth),
/// and the model classifies a kernel as memory- or compute-bound by which
/// ceiling it hits. The cache-aware extension adds one ceiling per memory
/// level so a kernel's placement can be judged against the bandwidth of the
/// level that actually serves it.

#include <string>
#include <vector>

#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// Which ceiling limits a kernel at a given intensity.
enum class Bound { kMemory, kCompute };

struct KernelCharacterization;

/// Machine side of the model: one compute roof + one or more bandwidth
/// ceilings (DRAM only for the classic model).
class RooflineModel {
 public:
  /// Classic roofline: one compute peak (FLOP/s), one bandwidth (B/s).
  RooflineModel(double peak_flops, double memory_bandwidth);

  /// Cache-aware roofline calibrated from a machine description: the
  /// single-core compute peak, the DRAM roof, and one bandwidth ceiling
  /// per cache level (labelled with the level names).
  [[nodiscard]] static RooflineModel from_machine(
      const machine::Machine& m);

  /// Add an extra bandwidth ceiling (e.g. L1/L2/L3) with a label.
  void add_bandwidth_ceiling(const std::string& label, double bandwidth);

  /// Add an extra compute ceiling (e.g. "no vectorization") below the peak.
  void add_compute_ceiling(const std::string& label, double flops);

  [[nodiscard]] double peak_flops() const { return peak_flops_; }
  [[nodiscard]] double memory_bandwidth() const { return memory_bandwidth_; }

  /// Ridge point: intensity where the two classic roofs intersect.
  [[nodiscard]] double ridge_intensity() const;

  /// Attainable FLOP/s at `intensity` under the classic two-roof model.
  [[nodiscard]] double attainable(double intensity) const;

  /// Attainable FLOP/s against a specific bandwidth ceiling.
  [[nodiscard]] double attainable_at_level(double intensity,
                                           const std::string& label) const;

  /// Which roof binds at `intensity`.
  [[nodiscard]] Bound bound_at(double intensity) const;

  /// Fraction of attainable performance achieved by a measured kernel.
  [[nodiscard]] double efficiency(double intensity,
                                  double measured_flops) const;

  /// Composition adapter: predicted seconds of one kernel invocation at
  /// the attainable ceiling, as "roofline.<kernel name>".
  [[nodiscard]] ModelEval eval(const KernelCharacterization& kernel) const;

  /// Sampled roofline curve for plotting: log-spaced intensities in
  /// [min_intensity, max_intensity] with attainable FLOP/s.
  struct CurvePoint {
    double intensity;
    double attainable_flops;
  };
  [[nodiscard]] std::vector<CurvePoint> curve(double min_intensity,
                                              double max_intensity,
                                              int points = 32) const;

  /// All ceilings, for report rendering.
  struct Ceiling {
    std::string label;
    bool is_bandwidth;
    double value;
  };
  [[nodiscard]] const std::vector<Ceiling>& ceilings() const {
    return ceilings_;
  }

 private:
  double peak_flops_;
  double memory_bandwidth_;
  std::vector<Ceiling> ceilings_;
};

/// Application side of the model: a kernel's operational counts.
struct KernelCharacterization {
  std::string name;
  double flops = 0.0;   ///< floating-point operations per invocation
  double bytes = 0.0;   ///< memory traffic per invocation
  [[nodiscard]] double intensity() const { return flops / bytes; }
};

/// Full placement of one measured kernel on a roofline.
struct RooflinePlacement {
  KernelCharacterization kernel;
  double measured_flops = 0.0;     ///< achieved FLOP/s
  double attainable_flops = 0.0;   ///< model ceiling at the kernel intensity
  Bound bound = Bound::kMemory;
  double efficiency = 0.0;         ///< measured / attainable
};

/// Place a kernel: given its characterization and measured runtime.
[[nodiscard]] RooflinePlacement place_kernel(
    const RooflineModel& machine, const KernelCharacterization& kernel,
    double measured_seconds);

}  // namespace pe::models
