#pragma once

/// \file energy.hpp
/// Energy and energy-efficiency modeling — the paper's future-work topic
/// "(2) including additional metrics — such as energy-efficiency — more
/// prominently".
///
/// Two complementary estimators:
///  * a *power-based* model: P = P_static + P_peak_dynamic · utilization,
///    integrated over the measured runtime (what a wall-plug meter sees);
///  * an *event-based* model: energy = Σ event_count · energy_per_event
///    over (simulated) counter values, the RAPL-style attribution used to
///    explain *where* the joules go.
///
/// Derived metrics follow the HPC conventions: energy-to-solution,
/// FLOPs/J (the Green500 metric), and energy-delay product.

#include <cstdint>

#include "perfeng/counters/counter_set.hpp"
#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// Utilization-linear machine power model.
struct PowerModel {
  double static_watts = 10.0;        ///< idle/leakage power
  double peak_dynamic_watts = 30.0;  ///< extra power at 100% utilization

  /// Power drawn at `utilization` in [0,1].
  [[nodiscard]] double power(double utilization) const;

  /// Energy (J) of a run of `seconds` at constant `utilization`.
  [[nodiscard]] double energy(double seconds, double utilization) const;

  /// Calibrate from a machine description's energy coefficients; the
  /// machine must carry them (`Machine::has_energy()`).
  [[nodiscard]] static PowerModel from_machine(const machine::Machine& m);

  /// Composition adapter: a phase of `seconds` at `utilization` doing
  /// `flops` of useful work, with its joules in the footprint
  /// ("energy.power") — so compositions can sum energy alongside time.
  [[nodiscard]] ModelEval eval(double seconds, double utilization,
                               double flops) const;
};

/// Per-event energy coefficients (RAPL-style attribution), in joules.
struct EventEnergyModel {
  double joules_per_instruction = 0.5e-9;
  double joules_per_l1_access = 0.1e-9;    ///< applied to every access
  double joules_per_l2_access = 0.5e-9;    ///< applied to L1 misses
  double joules_per_l3_access = 2.0e-9;    ///< applied to L2 misses
  double joules_per_dram_access = 20.0e-9;

  /// Attribute energy to the events recorded in a counter set.
  [[nodiscard]] double energy(const counters::CounterSet& counters) const;
};

/// Energy summary of one kernel execution.
struct EnergyReport {
  double seconds = 0.0;
  double joules = 0.0;
  double flops = 0.0;

  /// Average power (W).
  [[nodiscard]] double watts() const;
  /// The Green500 metric: useful FLOPs per joule.
  [[nodiscard]] double flops_per_joule() const;
  /// Energy-delay product (J*s): punishes slow-but-frugal configurations.
  [[nodiscard]] double energy_delay_product() const;
};

/// Build a report from the power model.
[[nodiscard]] EnergyReport report_from_power(const PowerModel& power,
                                             double seconds,
                                             double utilization,
                                             double flops);

/// Build a report from counter attribution.
[[nodiscard]] EnergyReport report_from_events(
    const EventEnergyModel& events, const counters::CounterSet& counters,
    double seconds, double flops);

/// Race-to-idle analysis: given a baseline and an optimized runtime at
/// (possibly) higher utilization, does the optimization save energy?
/// Returns the energy ratio optimized/baseline (< 1 means it saves).
[[nodiscard]] double race_to_idle_ratio(const PowerModel& power,
                                        double baseline_seconds,
                                        double baseline_utilization,
                                        double optimized_seconds,
                                        double optimized_utilization);

}  // namespace pe::models
