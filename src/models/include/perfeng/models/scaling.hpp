#pragma once

/// \file scaling.hpp
/// Parallel scaling laws: Amdahl, Gustafson, and the Universal Scalability
/// Law (USL), with a least-squares USL fitter.
///
/// The course's scale-out lectures model speedup three ways:
///   Amdahl      S(p) = 1 / (f + (1-f)/p)          — fixed problem size
///   Gustafson   S(p) = f + (1-f) p                — scaled problem size
///   USL         S(p) = p / (1 + σ(p-1) + κ p(p-1)) — contention σ +
///                coherence κ, the only one that can predict *retrograde*
///                scaling.
/// The fitter recovers (σ, κ) from measured speedups by grid-refined least
/// squares, robust enough for the noisy 4-8 point curves students collect.

#include <span>
#include <vector>

#include "perfeng/machine/machine.hpp"
#include "perfeng/models/model_eval.hpp"

namespace pe::models {

/// Amdahl speedup with serial fraction `f` in [0,1] on `p` workers.
[[nodiscard]] double amdahl_speedup(double serial_fraction, double workers);

/// Maximum Amdahl speedup as p -> infinity (1/f; infinity when f == 0).
[[nodiscard]] double amdahl_limit(double serial_fraction);

/// Gustafson scaled speedup with serial fraction `f` on `p` workers.
[[nodiscard]] double gustafson_speedup(double serial_fraction, double workers);

/// USL speedup with contention sigma and coherence kappa.
[[nodiscard]] double usl_speedup(double sigma, double kappa, double workers);

/// Worker count at which USL throughput peaks (infinite when kappa == 0).
[[nodiscard]] double usl_peak_workers(double sigma, double kappa);

/// USL parameters recovered from data.
struct UslFit {
  double sigma = 0.0;
  double kappa = 0.0;
  double r2 = 0.0;  ///< fit quality against the provided speedups
};

/// Fit USL to measured (workers, speedup) points by grid-refined least
/// squares over sigma in [0,1], kappa in [0,0.1]. Requires >= 3 points and
/// workers[i] >= 1 with speedup > 0.
[[nodiscard]] UslFit fit_usl(std::span<const double> workers,
                             std::span<const double> speedups);

/// Estimate the serial fraction from a single (p, speedup) observation by
/// inverting Amdahl — the Karp–Flatt metric.
[[nodiscard]] double karp_flatt(double speedup, double workers);

/// Speedup projections pinned to one machine's core count, so "what would
/// this code do on the DAS-5 node?" is a calibrated question rather than a
/// hand-picked p.
struct SpeedupProjection {
  double workers = 1.0;  ///< the machine's parallel width

  /// Calibrate from a machine description (`workers` = cores).
  [[nodiscard]] static SpeedupProjection from_machine(
      const machine::Machine& m);

  [[nodiscard]] double amdahl(double serial_fraction) const;
  [[nodiscard]] double gustafson(double serial_fraction) const;
  [[nodiscard]] double usl(double sigma, double kappa) const;

  /// Composition adapters: project a measured single-worker runtime onto
  /// this machine's width, as "scaling.amdahl" / "scaling.usl". The
  /// footprint records the machine width as busy cores.
  [[nodiscard]] ModelEval eval_amdahl(double serial_seconds,
                                      double serial_fraction) const;
  [[nodiscard]] ModelEval eval_usl(double serial_seconds, double sigma,
                                   double kappa) const;
};

}  // namespace pe::models
