#pragma once

/// \file csv.hpp
/// Minimal CSV reading/writing used for experiment data exchange.
///
/// The course's data artifacts (DATA-1 `students.csv`, DATA-2 `metrics.csv`)
/// and the statistical-modeling assignment both move tabular data through
/// CSV files; this parser handles quoted fields, embedded commas/quotes and
/// CRLF line endings — enough for every artifact in the repository.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace pe {

/// Parsed CSV document: a header row plus data rows of strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column by name; throws pe::Error if absent.
  [[nodiscard]] std::size_t column(std::string_view name) const;
};

/// Parse CSV text (first row is the header). Throws pe::Error on ragged
/// rows or unterminated quotes; the message names `source` (a file name or
/// "<memory>") and the offending 1-based line so a failed campaign log
/// points at the broken record, not just at "csv".
[[nodiscard]] CsvDocument parse_csv(std::string_view text,
                                    std::string_view source = "<memory>");

/// Parse a single CSV record (no trailing newline handling).
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

/// Read and parse a CSV file from disk. Throws pe::Error on IO failure and
/// on malformed content (with `path` and line number in the message).
/// Passes the `io.csv` fault site.
[[nodiscard]] CsvDocument read_csv_file(const std::string& path);

/// Serialize rows as CSV with proper quoting.
[[nodiscard]] std::string write_csv(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows);

}  // namespace pe
