#pragma once

/// \file rng.hpp
/// Deterministic random number generation for reproducible experiments.
///
/// Every workload generator in the toolbox takes an explicit seed so that
/// experiments are bit-reproducible across runs — one of the course's core
/// experimental-design lessons. `Rng` wraps a SplitMix64-seeded xoshiro256**
/// generator with convenience distributions; it is cheaper and more
/// predictable across standard libraries than `std::mt19937_64` +
/// `std::uniform_*_distribution` (whose outputs are implementation-defined).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pe {

/// Deterministic, seedable PRNG (xoshiro256**) with portable distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [lo, hi).
  double next_range_double(double lo, double hi);

  /// Standard normal variate (Box–Muller; caches the spare value).
  double next_normal();

  /// Exponential variate with rate lambda (> 0).
  double next_exponential(double lambda);

  /// Zipf-distributed integer in [0, n) with skew s >= 0 (s == 0 is uniform).
  /// Uses rejection-inversion; suitable for the skewed histogram inputs used
  /// in Assignment 2's data-dependent modeling exercise.
  std::uint64_t next_zipf(std::uint64_t n, double s);

  /// Fisher–Yates shuffle of a vector, in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_range(0, i - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4] = {};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace pe
