#pragma once

/// \file units.hpp
/// Human-readable formatting of performance quantities.
///
/// Correctly *communicating* performance numbers (GFLOP/s vs GiB vs GB,
/// seconds vs cycles) is a stated learning objective; these helpers give one
/// consistent spelling for the whole toolbox.

#include <cstdint>
#include <string>

namespace pe {

/// Format a time in seconds with an auto-scaled unit (ns/us/ms/s).
[[nodiscard]] std::string format_time(double seconds);

/// Format a byte count with binary prefixes (KiB/MiB/GiB).
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Format a rate in bytes/second with decimal prefixes (kB/s, MB/s, GB/s).
[[nodiscard]] std::string format_bandwidth(double bytes_per_second);

/// Format a rate in FLOP/second with decimal prefixes (MFLOP/s, GFLOP/s, ...).
[[nodiscard]] std::string format_flops(double flops_per_second);

/// Format a dimensionless count with decimal prefixes (k, M, G).
[[nodiscard]] std::string format_count(double count);

}  // namespace pe
