#pragma once

/// \file error.hpp
/// Error handling primitives for the PerfEng toolbox.
///
/// The library throws `pe::Error` (a `std::runtime_error` subclass) for
/// recoverable misuse (bad arguments, malformed input files) and uses
/// `PE_REQUIRE` for precondition checks on public entry points. Internal
/// invariants use `PE_ASSERT`, which compiles to nothing in release builds
/// with `PERFENG_NO_ASSERT` defined.

#include <stdexcept>
#include <string>
#include <string_view>

namespace pe {

/// Exception type thrown by all PerfEng components on recoverable errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(std::string_view where, std::string_view cond,
                               std::string_view msg) {
  std::string s;
  s.reserve(where.size() + cond.size() + msg.size() + 16);
  s.append(where).append(": requirement `").append(cond).append("` failed");
  if (!msg.empty()) s.append(": ").append(msg);
  throw Error(s);
}
}  // namespace detail

/// Reject a duplicate registration by name. Scans `range` with `proj`
/// mapping each element to its name (defaults to `element.name`) and throws
/// pe::Error naming `what` and the offending `name` when it already exists.
/// One helper for every "named things must be unique" guard in the library
/// (roofline ceilings, experiment factors, suite members, fault specs,
/// machine registries) so the scan and the message stay consistent.
template <typename Range, typename Proj>
void require_unique_name(const Range& range, std::string_view name,
                         std::string_view what, Proj proj) {
  for (const auto& item : range) {
    if (std::string_view(proj(item)) == name) {
      std::string s;
      s.reserve(what.size() + name.size() + 24);
      s.append("duplicate ").append(what).append(" '").append(name).append(
          "'");
      throw Error(s);
    }
  }
}

template <typename Range>
void require_unique_name(const Range& range, std::string_view name,
                         std::string_view what) {
  require_unique_name(range, name, what,
                      [](const auto& item) -> const std::string& {
                        return item.name;
                      });
}

}  // namespace pe

/// Check a precondition on a public API entry point; throws pe::Error.
#define PE_REQUIRE(cond, msg)                                 \
  do {                                                        \
    if (!(cond)) ::pe::detail::raise(__func__, #cond, (msg)); \
  } while (0)

/// Internal invariant check; same behaviour as PE_REQUIRE unless disabled.
#ifdef PERFENG_NO_ASSERT
#define PE_ASSERT(cond, msg) ((void)0)
#else
#define PE_ASSERT(cond, msg) PE_REQUIRE(cond, msg)
#endif
