#pragma once

/// \file table.hpp
/// ASCII table rendering for benchmark and report output.
///
/// The course insists that performance data is *communicated*, not just
/// collected; every bench binary in this repository prints its results as a
/// table whose rows mirror the corresponding table/figure in the paper.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace pe {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, append rows, render to a string.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> headers);

  /// Replace the header row. Column count is fixed by the header.
  void set_headers(std::vector<std::string> headers);

  /// Set per-column alignment; default is left for col 0, right otherwise.
  void set_alignment(std::vector<Align> alignment);

  /// Append a data row; must match the header width (throws otherwise).
  void add_row(std::vector<std::string> row);

  /// Convenience: format cells with to_string-like conversion.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Render with unicode-free box drawing, suitable for terminals and logs.
  [[nodiscard]] std::string render() const;

  /// Render as comma-separated values (headers + rows).
  [[nodiscard]] std::string render_csv() const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(std::string_view s) { return std::string(s); }
  static std::string to_cell(double v);
  static std::string to_cell(float v) { return to_cell(double(v)); }
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant digits (used across reports).
std::string format_sig(double v, int digits = 4);

/// Format a double with fixed `decimals` digits after the point.
std::string format_fixed(double v, int decimals = 2);

}  // namespace pe
