#pragma once

/// \file fault_hook.hpp
/// Process-wide fault-injection hook points.
///
/// Real measurement campaigns fail partway: counter backends disappear,
/// kernels throw, input files are garbage. To test those paths
/// deterministically, the toolbox's failure-prone layers call
/// `fault_point(site)` (and `fault_value(site, v)` for data corruption) at
/// named sites. By default these are no-ops costing one relaxed atomic
/// load; when a `FaultHook` is installed — normally a
/// `pe::resilience::FaultInjector` armed with a seeded `FaultPlan` — the
/// hook may throw, delay, or corrupt the value, exercising every recovery
/// path on demand. The hook lives here (not in perfeng_resilience) so that
/// low-level layers like the CSV reader and the thread pool can host sites
/// without depending on the resilience library.

#include <atomic>
#include <string_view>
#include <vector>

namespace pe {

/// Interface a fault injector implements to intercept hook points.
/// Implementations must be thread-safe: sites fire from worker threads.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called when execution passes the named site. May throw `pe::Error`
  /// (fault kind: throw) or sleep (fault kind: delay).
  virtual void at(std::string_view site) = 0;

  /// Called where a measured value can be corrupted; returns the value to
  /// use (possibly scaled/poisoned, fault kind: corrupt-value).
  virtual double corrupt(std::string_view site, double value) = 0;
};

/// Canonical fault-site names (see docs/robustness.md for the catalog).
namespace fault_sites {
inline constexpr std::string_view kCountersRead = "counters.read";
inline constexpr std::string_view kPoolWorker = "pool.worker";
inline constexpr std::string_view kKernelCall = "kernel.call";
inline constexpr std::string_view kIoCsv = "io.csv";
inline constexpr std::string_view kIoMatrixMarket = "io.matrix_market";
inline constexpr std::string_view kServiceAdmit = "service.admit";
inline constexpr std::string_view kServiceDequeue = "service.dequeue";
inline constexpr std::string_view kServiceCache = "service.cache";
}  // namespace fault_sites

/// Every fault site a plan may legally attack: the canonical catalog above
/// plus any sites registered at runtime. A `FaultPlan` naming a site not in
/// this list is rejected with a structured error (a typo'd site name would
/// otherwise silently never fire — the chaos test would pass by testing
/// nothing). Returned by value: the registry may grow concurrently.
[[nodiscard]] std::vector<std::string_view> known_fault_sites();

/// Register an additional fault site (idempotent). For layers and tests
/// that host `fault_point` sites outside the canonical catalog; the name
/// must have static storage duration (string literals qualify) because the
/// registry stores views. Thread-safe.
void register_fault_site(std::string_view site);

/// True when `site` names a canonical or registered fault site.
[[nodiscard]] bool is_known_fault_site(std::string_view site);

/// Install (or with nullptr, remove) the process-wide hook. The caller
/// keeps ownership and must keep the hook alive until it is removed;
/// `pe::resilience::ScopedFaultInjection` does both ends via RAII.
void set_fault_hook(FaultHook* hook) noexcept;

/// Currently installed hook, or nullptr.
[[nodiscard]] FaultHook* fault_hook() noexcept;

namespace detail {
extern std::atomic<FaultHook*> g_fault_hook;
}  // namespace detail

/// Pass a named fault site: no-op unless a hook is installed.
inline void fault_point(std::string_view site) {
  if (FaultHook* hook = detail::g_fault_hook.load(std::memory_order_acquire))
    hook->at(site);
}

/// Pass a value through a named corruption site.
[[nodiscard]] inline double fault_value(std::string_view site, double value) {
  if (FaultHook* hook = detail::g_fault_hook.load(std::memory_order_acquire))
    return hook->corrupt(site, value);
  return value;
}

}  // namespace pe
