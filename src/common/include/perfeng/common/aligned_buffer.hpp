#pragma once

/// \file aligned_buffer.hpp
/// Cache-line / page aligned storage for benchmark kernels.
///
/// Measurement kernels are sensitive to the alignment of their operands
/// (split cache lines perturb bandwidth measurements; unaligned vectors
/// inhibit vectorization). `AlignedBuffer<T>` owns a typed array aligned to a
/// caller-chosen boundary, defaulting to the typical 64-byte cache line.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

#include "perfeng/common/error.hpp"

namespace pe {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, aligned, fixed-size array of trivially-destructible T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer only supports trivially destructible types");

 public:
  AlignedBuffer() = default;

  /// Allocate `count` default-initialized elements aligned to `alignment`.
  explicit AlignedBuffer(std::size_t count,
                         std::size_t alignment = kCacheLineBytes)
      : size_(count), alignment_(alignment) {
    PE_REQUIRE(alignment >= alignof(T), "alignment below alignof(T)");
    PE_REQUIRE((alignment & (alignment - 1)) == 0,
               "alignment must be a power of two");
    if (count == 0) return;
    // round byte size up to a multiple of alignment as required by
    // std::aligned_alloc.
    std::size_t bytes = count * sizeof(T);
    bytes = (bytes + alignment - 1) / alignment * alignment;
    data_ = static_cast<T*>(std::aligned_alloc(alignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
    for (std::size_t i = 0; i < count; ++i) new (data_ + i) T{};
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t alignment() const noexcept { return alignment_; }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, size_};
  }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }
  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(alignment_, other.alignment_);
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t alignment_ = kCacheLineBytes;
};

}  // namespace pe
