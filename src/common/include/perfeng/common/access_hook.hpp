#pragma once

/// \file access_hook.hpp
/// Process-wide memory-access instrumentation hook points.
///
/// The race lint in perfeng_analysis needs to see which byte ranges each
/// parallel chunk reads and writes. Rather than make every kernel depend on
/// the analysis library, the instrumentation mirrors fault_hook.hpp: the
/// parallel runtime announces loop and chunk boundaries, kernels (and
/// student code via `pe::analysis::checked_span`) announce the ranges they
/// touch, and all of it is a no-op costing one relaxed atomic load until an
/// `AccessHook` — normally a `pe::analysis::AccessChecker` — is installed.
/// The hook lives here (not in perfeng_analysis) so the thread pool and the
/// kernels can host instrumentation points without a layering inversion.

#include <atomic>
#include <cstddef>
#include <source_location>

namespace pe {

/// Interface a race checker implements to observe parallel-loop accesses.
/// Implementations must be thread-safe: chunks fire from worker threads.
/// Every method is noexcept — instrumentation must never alter the control
/// flow of the code under observation.
class AccessHook {
 public:
  virtual ~AccessHook() = default;

  /// A new parallel loop over [begin, end) is starting on the calling
  /// thread. Returns a loop token that the runtime hands back with every
  /// chunk of this loop (and with `end_loop`), so the hook can tie chunks
  /// to their launching context: when `begin_loop` fires from inside an
  /// active chunk, the new loop is *nested* and its chunks may run
  /// concurrently with chunks of sibling inner loops launched from other
  /// chunks of the same outer loop. Zero is reserved for "no loop".
  virtual std::size_t begin_loop(std::size_t begin,
                                 std::size_t end) noexcept = 0;

  /// The loop announced by the matching `begin_loop` has quiesced.
  virtual void end_loop(std::size_t loop_token) noexcept = 0;

  /// The calling thread starts executing the chunk [lo, hi) of the loop
  /// identified by `loop_token` on `lane`.
  virtual void begin_chunk(std::size_t loop_token, std::size_t lo,
                           std::size_t hi, std::size_t lane) noexcept = 0;

  /// The calling thread finished its current chunk.
  virtual void end_chunk() noexcept = 0;

  /// The current chunk accessed bytes [lo_byte, hi_byte) of the buffer
  /// identified by `base`. `tag` names the buffer in reports; `file`/`line`
  /// locate the instrumentation site (or the `checked_span` creation).
  virtual void record(const void* base, std::size_t lo_byte,
                      std::size_t hi_byte, bool is_write, const char* tag,
                      const char* file, unsigned line) noexcept = 0;
};

/// Install (or with nullptr, remove) the process-wide hook. The caller
/// keeps ownership and must keep the hook alive until it is removed;
/// `pe::analysis::ScopedAccessCheck` does both ends via RAII.
void set_access_hook(AccessHook* hook) noexcept;

/// Currently installed hook, or nullptr.
[[nodiscard]] AccessHook* access_hook() noexcept;

namespace detail {
extern std::atomic<AccessHook*> g_access_hook;

[[nodiscard]] inline AccessHook* access_hook_fast() noexcept {
  return g_access_hook.load(std::memory_order_acquire);
}
}  // namespace detail

/// Announce a parallel loop over [begin, end); no-op unless hooked.
/// Returns the hook's loop token, or 0 when no hook is installed.
[[nodiscard]] inline std::size_t access_begin_loop(std::size_t begin,
                                                   std::size_t end) noexcept {
  if (AccessHook* hook = detail::access_hook_fast())
    return hook->begin_loop(begin, end);
  return 0;
}

inline void access_end_loop(std::size_t loop_token) noexcept {
  if (AccessHook* hook = detail::access_hook_fast())
    hook->end_loop(loop_token);
}

/// Announce that the calling thread starts chunk [lo, hi) of the loop
/// identified by `loop_token` on `lane`.
inline void access_begin_chunk(std::size_t loop_token, std::size_t lo,
                               std::size_t hi, std::size_t lane) noexcept {
  if (AccessHook* hook = detail::access_hook_fast())
    hook->begin_chunk(loop_token, lo, hi, lane);
}

inline void access_end_chunk() noexcept {
  if (AccessHook* hook = detail::access_hook_fast()) hook->end_chunk();
}

/// Record that the current chunk touches elements [lo, hi) of the buffer
/// at `base` whose elements are `elem_size` bytes. Call once per chunk at
/// range granularity — the checker coalesces, but one call is cheaper.
inline void access_record(
    const void* base, std::size_t elem_size, std::size_t lo, std::size_t hi,
    bool is_write, const char* tag,
    std::source_location loc = std::source_location::current()) noexcept {
  if (AccessHook* hook = detail::access_hook_fast())
    hook->record(base, lo * elem_size, hi * elem_size, is_write, tag,
                 loc.file_name(), static_cast<unsigned>(loc.line()));
}

/// RAII chunk scope used by the parallel runtime: announces begin/end even
/// when the chunk body throws.
class AccessChunkScope {
 public:
  AccessChunkScope(std::size_t loop_token, std::size_t lo, std::size_t hi,
                   std::size_t lane) noexcept
      : hook_(detail::access_hook_fast()) {
    if (hook_ != nullptr) hook_->begin_chunk(loop_token, lo, hi, lane);
  }
  ~AccessChunkScope() {
    if (hook_ != nullptr) hook_->end_chunk();
  }

  AccessChunkScope(const AccessChunkScope&) = delete;
  AccessChunkScope& operator=(const AccessChunkScope&) = delete;

 private:
  AccessHook* hook_;
};

}  // namespace pe
