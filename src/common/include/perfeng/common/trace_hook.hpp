#pragma once

/// \file trace_hook.hpp
/// Process-wide scheduler-tracing hook points.
///
/// The work-stealing pool is the hot substrate under every parallel kernel,
/// but without observability it is a black box: where does worker time go,
/// how long do tasks wait between submit and start, which locks and
/// park/unpark cycles eat throughput? This hook mirrors fault_hook.hpp and
/// access_hook.hpp: the scheduler and the bulk-loop runtime announce task
/// lifecycle events (submit, steal, start, finish, park, unpark, contended
/// lock acquisitions) and loop/chunk provenance, and all of it is a no-op
/// costing one relaxed atomic load until a `TraceHook` — normally a
/// `pe::observe::Tracer` — is installed. The hook lives here (not in
/// perfeng_observe) so the thread pool and the loop runtime can host
/// instrumentation points without a layering inversion.
///
/// Emission sites on hot paths must go through the `PE_TRACE_EMIT` /
/// `PE_TRACE_EMIT_SITE` guard macros — never call `on_event` directly —
/// so the disabled path is provably one load + branch; perfeng-lint's
/// `trace-hook-guard` check enforces this.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pe {

/// Kinds of scheduler/loop lifecycle events. Values are stable: they name
/// event records in serialized traces (see docs/observability.md).
enum class TraceEventKind : std::uint8_t {
  kSubmit = 0,      ///< task/bulk loop handed to the pool (obj = job key)
  kSteal = 1,       ///< a worker stole a job from another worker's deque
  kTaskStart = 2,   ///< a claimed job began executing on a lane
  kTaskFinish = 3,  ///< the job claimed by the matching kTaskStart returned
  kPark = 4,        ///< an idle worker parked on the pool's condition var
  kUnpark = 5,      ///< a parked worker woke
  kContended = 6,   ///< a deque/inbox lock acquisition had to wait
  kLoopBegin = 7,   ///< bulk loop dispatch (obj = loop key, a/b = range)
  kLoopEnd = 8,     ///< the loop announced by kLoopBegin quiesced
  kChunkStart = 9,  ///< chunk [a, b) of loop obj claimed by a lane
  kChunkFinish = 10 ///< the chunk claimed by the matching kChunkStart ended
};

/// Number of distinct TraceEventKind values (array sizing).
inline constexpr std::size_t kTraceEventKinds = 11;

/// Human-readable event-kind name (stable, used by trace serialization).
[[nodiscard]] const char* trace_event_kind_name(TraceEventKind kind) noexcept;

/// Interface a tracer implements to observe scheduler events.
/// Implementations must be thread-safe and wait-free on the emission path:
/// events fire from worker threads inside dispatch loops, and a tracer
/// that blocks would perturb exactly the behaviour it measures. The hook
/// timestamps events itself (so tests can inject deterministic clocks).
class TraceHook {
 public:
  virtual ~TraceHook() = default;

  /// One scheduler event on `lane`. `obj` is a correlation key (job arg or
  /// loop record address) valid only for matching events of one trace, not
  /// for dereferencing. `a`/`b` carry kind-specific payload (chunk bounds,
  /// broadcast copy counts). `file`/`line` locate the provenance site
  /// (static storage duration; may be null/0 when the site has none).
  virtual void on_event(TraceEventKind kind, const void* obj, std::uint64_t a,
                        std::uint64_t b, std::size_t lane, const char* file,
                        std::uint32_t line) noexcept = 0;
};

/// Install (or with nullptr, remove) the process-wide hook. The caller
/// keeps ownership and must keep the hook alive until it is removed;
/// `pe::observe::ScopedTrace` does both ends via RAII.
void set_trace_hook(TraceHook* hook) noexcept;

/// Currently installed hook, or nullptr.
[[nodiscard]] TraceHook* trace_hook() noexcept;

namespace detail {
extern std::atomic<TraceHook*> g_trace_hook;

[[nodiscard]] inline TraceHook* trace_hook_fast() noexcept {
  return g_trace_hook.load(std::memory_order_acquire);
}
}  // namespace detail

}  // namespace pe

/// Guarded trace emission: one acquire load + branch when no tracer is
/// installed. The macro is the only sanctioned spelling on hot paths
/// (perfeng-lint: trace-hook-guard); it exists so the guard cannot be
/// forgotten and so emission sites are greppable.
#define PE_TRACE_EMIT(kind, obj, a, b, lane)                                \
  do {                                                                      \
    if (::pe::TraceHook* pe_trace_hook_ = ::pe::detail::trace_hook_fast())  \
      pe_trace_hook_->on_event((kind), (obj), (a), (b), (lane), nullptr, 0);\
  } while (0)

/// Guarded trace emission carrying a provenance site (file/line of the
/// parallel_for call, for flame-graph frames).
#define PE_TRACE_EMIT_SITE(kind, obj, a, b, lane, file, line)               \
  do {                                                                      \
    if (::pe::TraceHook* pe_trace_hook_ = ::pe::detail::trace_hook_fast())  \
      pe_trace_hook_->on_event((kind), (obj), (a), (b), (lane), (file),     \
                               (line));                                     \
  } while (0)

/// Guarded emission through a hook pointer the caller loaded once (with
/// `pe::detail::trace_hook_fast()`) and reuses across many sites — the
/// per-chunk spelling inside dispatch loops, where paying the atomic load
/// per chunk would dominate the disabled path. The disabled cost here is a
/// single predictable branch on a register. A hook installed mid-loop is
/// picked up at the next load site; loops never outlive a `ScopedTrace`
/// by contract.
#define PE_TRACE_EMIT_CACHED(hook, kind, obj, a, b, lane, file, line)       \
  do {                                                                      \
    if ((hook) != nullptr)                                                  \
      (hook)->on_event((kind), (obj), (a), (b), (lane), (file), (line));    \
  } while (0)
