#include "perfeng/common/rng.hpp"

#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_spare_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 top bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) {
  PE_REQUIRE(lo <= hi, "empty range");
  const std::uint64_t span = hi - lo;
  if (span == UINT64_MAX) return next_u64();
  // Unbiased bounded generation via rejection (Lemire-style threshold).
  const std::uint64_t bound = span + 1;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return lo + r % bound;
  }
}

double Rng::next_range_double(double lo, double hi) {
  PE_REQUIRE(lo <= hi, "empty range");
  return lo + (hi - lo) * next_double();
}

double Rng::next_normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::next_exponential(double lambda) {
  PE_REQUIRE(lambda > 0.0, "rate must be positive");
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::uint64_t Rng::next_zipf(std::uint64_t n, double s) {
  PE_REQUIRE(n > 0, "domain must be non-empty");
  PE_REQUIRE(s >= 0.0, "skew must be non-negative");
  if (n == 1) return 0;
  if (s == 0.0) return next_range(0, n - 1);

  // Rejection-inversion (W. Hormann, G. Derflinger): sample from the
  // continuous envelope H and accept against the discrete Zipf pmf.
  const double nd = static_cast<double>(n);
  auto h_integral = [s](double x) {
    const double logx = std::log(x);
    if (std::abs(1.0 - s) < 1e-12) return logx;
    return std::expm1((1.0 - s) * logx) / (1.0 - s);
  };
  auto h = [s](double x) { return std::exp(-s * std::log(x)); };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(nd + 0.5);
  for (;;) {
    const double u = h_x1 + next_double() * (h_n - h_x1);
    // invert h_integral
    double x = 0.0;
    if (std::abs(1.0 - s) < 1e-12) {
      x = std::exp(u);
    } else {
      x = std::exp(std::log1p(u * (1.0 - s)) / (1.0 - s));
    }
    const double k = std::floor(x + 0.5);
    if (k < 1.0 || k > nd) continue;
    if (u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<std::uint64_t>(k) - 1;  // 0-based rank
    }
  }
}

}  // namespace pe
