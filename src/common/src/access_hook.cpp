#include "perfeng/common/access_hook.hpp"

namespace pe {

namespace detail {
std::atomic<AccessHook*> g_access_hook{nullptr};
}  // namespace detail

void set_access_hook(AccessHook* hook) noexcept {
  detail::g_access_hook.store(hook, std::memory_order_release);
}

AccessHook* access_hook() noexcept { return detail::access_hook_fast(); }

}  // namespace pe
