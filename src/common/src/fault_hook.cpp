#include "perfeng/common/fault_hook.hpp"

namespace pe {

namespace detail {
std::atomic<FaultHook*> g_fault_hook{nullptr};
}  // namespace detail

void set_fault_hook(FaultHook* hook) noexcept {
  detail::g_fault_hook.store(hook, std::memory_order_release);
}

FaultHook* fault_hook() noexcept {
  return detail::g_fault_hook.load(std::memory_order_acquire);
}

}  // namespace pe
