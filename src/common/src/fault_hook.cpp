#include "perfeng/common/fault_hook.hpp"

#include <algorithm>
#include <mutex>

namespace pe {

namespace detail {
std::atomic<FaultHook*> g_fault_hook{nullptr};
}  // namespace detail

namespace {

constexpr std::string_view kCatalog[] = {
    fault_sites::kCountersRead,  fault_sites::kPoolWorker,
    fault_sites::kKernelCall,    fault_sites::kIoCsv,
    fault_sites::kIoMatrixMarket, fault_sites::kServiceAdmit,
    fault_sites::kServiceDequeue, fault_sites::kServiceCache,
};

/// Runtime-registered sites beyond the catalog. Guarded by a mutex: site
/// registration happens at setup time, never on measurement hot paths.
struct SiteRegistry {
  std::mutex mu;
  std::vector<std::string_view> extra;
};

SiteRegistry& registry() {
  static SiteRegistry r;
  return r;
}

}  // namespace

void set_fault_hook(FaultHook* hook) noexcept {
  detail::g_fault_hook.store(hook, std::memory_order_release);
}

FaultHook* fault_hook() noexcept {
  return detail::g_fault_hook.load(std::memory_order_acquire);
}

std::vector<std::string_view> known_fault_sites() {
  std::vector<std::string_view> sites(std::begin(kCatalog),
                                      std::end(kCatalog));
  SiteRegistry& r = registry();
  std::lock_guard lock(r.mu);
  sites.insert(sites.end(), r.extra.begin(), r.extra.end());
  return sites;
}

void register_fault_site(std::string_view site) {
  if (site.empty()) return;
  if (std::find(std::begin(kCatalog), std::end(kCatalog), site) !=
      std::end(kCatalog)) {
    return;
  }
  SiteRegistry& r = registry();
  std::lock_guard lock(r.mu);
  if (std::find(r.extra.begin(), r.extra.end(), site) == r.extra.end())
    r.extra.push_back(site);
}

bool is_known_fault_site(std::string_view site) {
  if (std::find(std::begin(kCatalog), std::end(kCatalog), site) !=
      std::end(kCatalog)) {
    return true;
  }
  SiteRegistry& r = registry();
  std::lock_guard lock(r.mu);
  return std::find(r.extra.begin(), r.extra.end(), site) != r.extra.end();
}

}  // namespace pe
