#include "perfeng/common/csv.hpp"

#include <fstream>
#include <sstream>

#include "perfeng/common/error.hpp"
#include "perfeng/common/fault_hook.hpp"

namespace pe {

std::size_t CsvDocument::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  throw Error("csv: no column named '" + std::string(name) + "'");
}

namespace {

std::string where(std::string_view source, std::size_t line) {
  return "csv: " + std::string(source) + ": line " + std::to_string(line) +
         ": ";
}

// State machine over the whole text so quoted fields may contain newlines.
// Line numbers are 1-based physical lines; a multi-line quoted record is
// reported at the line it started on.
CsvDocument parse_all(std::string_view text, std::string_view source) {
  CsvDocument doc;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool row_has_data = false;
  std::size_t line = 1;             // current physical line
  std::size_t record_line = 1;      // line the current record started on
  std::size_t quote_line = 1;       // line the open quote started on
  std::vector<std::size_t> row_lines;  // start line of each data row

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&] {
    end_field();
    if (doc.header.empty()) {
      doc.header = std::move(record);
    } else {
      doc.rows.push_back(std::move(record));
      row_lines.push_back(record_line);
    }
    record.clear();
    row_has_data = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        quote_line = line;
        row_has_data = true;
        break;
      case ',':
        end_field();
        row_has_data = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_data || !field.empty() || !record.empty()) end_record();
        ++line;
        record_line = line;
        break;
      default:
        field += c;
        row_has_data = true;
        break;
    }
  }
  if (in_quotes)
    throw Error(where(source, quote_line) + "unterminated quoted field");
  if (row_has_data || !field.empty() || !record.empty()) end_record();

  for (std::size_t r = 0; r < doc.rows.size(); ++r) {
    if (doc.rows[r].size() != doc.header.size()) {
      throw Error(where(source, row_lines[r]) + "ragged row (got " +
                  std::to_string(doc.rows[r].size()) +
                  " fields, header has " +
                  std::to_string(doc.header.size()) + ")");
    }
  }
  return doc;
}

}  // namespace

CsvDocument parse_csv(std::string_view text, std::string_view source) {
  return parse_all(text, source);
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  CsvDocument doc = parse_all(line, "<line>");
  return doc.header;  // single record parses as the header
}

CsvDocument read_csv_file(const std::string& path) {
  fault_point(fault_sites::kIoCsv);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("csv: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) throw Error("csv: read error on '" + path + "'");
  return parse_csv(ss.str(), path);
}

std::string write_csv(const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += quote(row[i]);
    }
    out += '\n';
  };
  emit(header);
  for (const auto& row : rows) {
    if (row.size() != header.size()) throw Error("csv: ragged row on write");
    emit(row);
  }
  return out;
}

}  // namespace pe
