#include "perfeng/common/csv.hpp"

#include <fstream>
#include <sstream>

#include "perfeng/common/error.hpp"

namespace pe {

std::size_t CsvDocument::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  throw Error("csv: no column named '" + std::string(name) + "'");
}

namespace {

// State machine over the whole text so quoted fields may contain newlines.
CsvDocument parse_all(std::string_view text) {
  CsvDocument doc;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool row_has_data = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&] {
    end_field();
    if (doc.header.empty()) {
      doc.header = std::move(record);
    } else {
      doc.rows.push_back(std::move(record));
    }
    record.clear();
    row_has_data = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_data = true;
        break;
      case ',':
        end_field();
        row_has_data = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_data || !field.empty() || !record.empty()) end_record();
        break;
      default:
        field += c;
        row_has_data = true;
        break;
    }
  }
  if (in_quotes) throw Error("csv: unterminated quoted field");
  if (row_has_data || !field.empty() || !record.empty()) end_record();

  for (const auto& row : doc.rows) {
    if (row.size() != doc.header.size()) {
      throw Error("csv: ragged row (got " + std::to_string(row.size()) +
                  " fields, header has " + std::to_string(doc.header.size()) +
                  ")");
    }
  }
  return doc;
}

}  // namespace

CsvDocument parse_csv(std::string_view text) { return parse_all(text); }

std::vector<std::string> parse_csv_line(std::string_view line) {
  CsvDocument doc = parse_all(line);
  return doc.header;  // single record parses as the header
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("csv: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_csv(ss.str());
}

std::string write_csv(const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += quote(row[i]);
    }
    out += '\n';
  };
  emit(header);
  for (const auto& row : rows) {
    if (row.size() != header.size()) throw Error("csv: ragged row on write");
    emit(row);
  }
  return out;
}

}  // namespace pe
