#include "perfeng/common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace pe {

namespace {

std::string with_unit(double value, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g %s", value, unit);
  return buf;
}

struct Scaled {
  double value;
  const char* prefix;
};

Scaled decimal_scale(double v) {
  static constexpr std::array<const char*, 7> prefixes = {"",  "k", "M", "G",
                                                          "T", "P", "E"};
  std::size_t idx = 0;
  double value = v;
  while (std::abs(value) >= 1000.0 && idx + 1 < prefixes.size()) {
    value /= 1000.0;
    ++idx;
  }
  return {value, prefixes[idx]};
}

}  // namespace

std::string format_time(double seconds) {
  const double abs = std::abs(seconds);
  if (abs == 0.0) return "0 s";
  if (abs < 1e-6) return with_unit(seconds * 1e9, "ns");
  if (abs < 1e-3) return with_unit(seconds * 1e6, "us");
  if (abs < 1.0) return with_unit(seconds * 1e3, "ms");
  return with_unit(seconds, "s");
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> units = {"B", "KiB", "MiB",
                                                       "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < units.size()) {
    value /= 1024.0;
    ++idx;
  }
  return with_unit(value, units[idx]);
}

std::string format_bandwidth(double bytes_per_second) {
  const Scaled s = decimal_scale(bytes_per_second);
  return with_unit(s.value, (std::string(s.prefix) + "B/s").c_str());
}

std::string format_flops(double flops_per_second) {
  const Scaled s = decimal_scale(flops_per_second);
  return with_unit(s.value, (std::string(s.prefix) + "FLOP/s").c_str());
}

std::string format_count(double count) {
  const Scaled s = decimal_scale(count);
  if (s.prefix[0] == '\0') {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3g", s.value);
    return buf;
  }
  return with_unit(s.value, s.prefix);
}

}  // namespace pe
