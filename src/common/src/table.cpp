#include "perfeng/common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "perfeng/common/error.hpp"

namespace pe {

Table::Table(std::vector<std::string> headers) {
  set_headers(std::move(headers));
}

void Table::set_headers(std::vector<std::string> headers) {
  PE_REQUIRE(!headers.empty(), "table needs at least one column");
  headers_ = std::move(headers);
  if (alignment_.size() != headers_.size()) {
    alignment_.assign(headers_.size(), Align::kRight);
    alignment_[0] = Align::kLeft;
  }
}

void Table::set_alignment(std::vector<Align> alignment) {
  PE_REQUIRE(alignment.size() == headers_.size(),
             "alignment width must match header width");
  alignment_ = std::move(alignment);
}

void Table::add_row(std::vector<std::string> row) {
  PE_REQUIRE(row.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::to_cell(double v) { return format_sig(v, 4); }

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto hline = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < width.size(); ++c)
      s += std::string(width[c] + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      if (alignment_[c] == Align::kLeft) {
        s += " " + row[c] + std::string(pad, ' ') + " |";
      } else {
        s += " " + std::string(pad, ' ') + row[c] + " |";
      }
    }
    s += "\n";
    return s;
  };

  std::string out = hline();
  out += emit_row(headers_);
  out += hline();
  for (const auto& row : rows_) out += emit_row(row);
  out += hline();
  return out;
}

std::string Table::render_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += "\"";
    return q;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ",";
    out += quote(headers_[c]);
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ",";
      out += quote(row[c]);
    }
    out += "\n";
  }
  return out;
}

std::string format_sig(double v, int digits) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

std::string format_fixed(double v, int decimals) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace pe
