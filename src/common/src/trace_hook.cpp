#include "perfeng/common/trace_hook.hpp"

namespace pe {

namespace detail {
std::atomic<TraceHook*> g_trace_hook{nullptr};
}  // namespace detail

void set_trace_hook(TraceHook* hook) noexcept {
  detail::g_trace_hook.store(hook, std::memory_order_release);
}

TraceHook* trace_hook() noexcept { return detail::trace_hook_fast(); }

const char* trace_event_kind_name(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kSubmit: return "submit";
    case TraceEventKind::kSteal: return "steal";
    case TraceEventKind::kTaskStart: return "task_start";
    case TraceEventKind::kTaskFinish: return "task_finish";
    case TraceEventKind::kPark: return "park";
    case TraceEventKind::kUnpark: return "unpark";
    case TraceEventKind::kContended: return "contended";
    case TraceEventKind::kLoopBegin: return "loop_begin";
    case TraceEventKind::kLoopEnd: return "loop_end";
    case TraceEventKind::kChunkStart: return "chunk_start";
    case TraceEventKind::kChunkFinish: return "chunk_finish";
  }
  return "?";
}

}  // namespace pe
