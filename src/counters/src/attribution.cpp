#include "perfeng/counters/attribution.hpp"

#include <algorithm>

#include "perfeng/common/error.hpp"

namespace pe::counters {

std::vector<CycleShare> attribute_cycles(const CounterSet& counters,
                                         const LatencyModel& latency) {
  PE_REQUIRE(latency.l1 > 0.0 && latency.l2 > 0.0 && latency.l3 > 0.0 &&
                 latency.dram > 0.0,
             "latencies must be positive");
  const double accesses =
      static_cast<double>(counters.get_or_zero(kMemAccesses));
  const double l1_miss =
      static_cast<double>(counters.get_or_zero(kL1Misses));
  const double l2_miss =
      static_cast<double>(counters.get_or_zero(kL2Misses));
  const double dram = static_cast<double>(counters.get_or_zero(
      counters.has(kDramAccesses) ? kDramAccesses : kL3Misses));

  // Hits per level: what arrived minus what fell through.
  const double l1_hits = std::max(0.0, accesses - l1_miss);
  const double l2_hits = std::max(0.0, l1_miss - l2_miss);
  const double l3_hits = std::max(0.0, l2_miss - dram);

  std::vector<CycleShare> rows = {
      {"L1", l1_hits * latency.l1, 0.0},
      {"L2", l2_hits * latency.l2, 0.0},
      {"L3", l3_hits * latency.l3, 0.0},
      {"DRAM", dram * latency.dram, 0.0},
  };
  double total = 0.0;
  for (const auto& row : rows) total += row.cycles;
  if (total > 0.0) {
    for (auto& row : rows) row.share = row.cycles / total;
  }
  return rows;
}

double average_memory_access_time(const CounterSet& counters,
                                  const LatencyModel& latency) {
  const double accesses =
      static_cast<double>(counters.get_or_zero(kMemAccesses));
  if (accesses == 0.0) return 0.0;
  double total = 0.0;
  for (const auto& row : attribute_cycles(counters, latency))
    total += row.cycles;
  return total / accesses;
}

}  // namespace pe::counters
