#include "perfeng/counters/simulated_counters.hpp"

#include "perfeng/common/error.hpp"

namespace pe::counters {

CounterSet from_hierarchy(const pe::sim::HierarchyStats& stats,
                          std::uint64_t instructions) {
  CounterSet c;
  c.set(kMemAccesses, stats.total_accesses);
  c.set(kDramAccesses, stats.dram_accesses);
  c.set(kCycles, static_cast<std::uint64_t>(stats.total_cycles));
  c.set(kInstructions,
        instructions != 0 ? instructions : stats.total_accesses);
  const char* miss_names[] = {kL1Misses, kL2Misses, kL3Misses};
  std::uint64_t writebacks = 0;
  for (std::size_t lvl = 0; lvl < stats.levels.size() && lvl < 3; ++lvl) {
    c.set(miss_names[lvl], stats.levels[lvl].misses());
    writebacks += stats.levels[lvl].writebacks;
  }
  c.set(kWritebacks, writebacks);
  return c;
}

CounterSet from_branches(const pe::sim::BranchStats& stats) {
  CounterSet c;
  c.set(kBranches, stats.predictions);
  c.set(kBranchMisses, stats.mispredictions);
  return c;
}

CounterSet collect(pe::sim::CacheHierarchy& hierarchy,
                   const std::function<void()>& trace,
                   std::uint64_t instructions) {
  PE_REQUIRE(static_cast<bool>(trace), "null trace");
  hierarchy.reset(/*flush_contents=*/true);
  trace();
  return from_hierarchy(hierarchy.stats(), instructions);
}

}  // namespace pe::counters
