#include "perfeng/counters/patterns.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "perfeng/common/error.hpp"
#include "perfeng/common/table.hpp"

namespace pe::counters {

std::string pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kBadSpatialLocality: return "bad spatial locality";
    case Pattern::kBandwidthSaturation: return "bandwidth saturation";
    case Pattern::kBranchUnpredictability: return "branch unpredictability";
    case Pattern::kLoadImbalance: return "load imbalance";
    case Pattern::kFalseSharing: return "false sharing";
  }
  return "?";
}

PatternReport detect_bad_spatial_locality(const CounterSet& counters,
                                          std::size_t element_bytes,
                                          std::size_t line_bytes) {
  PE_REQUIRE(element_bytes >= 1 && line_bytes >= element_bytes,
             "bad element/line sizes");
  PatternReport r{Pattern::kBadSpatialLocality};
  const double miss_rate = counters.l1_miss_rate();
  // A perfectly streaming kernel misses once per line.
  const double streaming_rate = static_cast<double>(element_bytes) /
                                static_cast<double>(line_bytes);
  const double excess =
      streaming_rate > 0.0 ? miss_rate / streaming_rate : 0.0;
  r.detected = excess >= 2.0;  // at least twice the streaming miss rate
  r.severity = std::clamp((excess - 1.0) / 7.0, 0.0, 1.0);
  std::ostringstream ev;
  ev << "L1 miss rate " << format_sig(miss_rate * 100.0, 3)
     << "% vs streaming expectation "
     << format_sig(streaming_rate * 100.0, 3) << "% (" << format_sig(excess, 3)
     << "x)";
  r.evidence = ev.str();
  return r;
}

PatternReport detect_bandwidth_saturation(double achieved_bandwidth,
                                          double sustainable_bandwidth,
                                          double threshold) {
  PE_REQUIRE(sustainable_bandwidth > 0.0, "need a machine bandwidth");
  PE_REQUIRE(achieved_bandwidth >= 0.0, "negative bandwidth");
  PE_REQUIRE(threshold > 0.0 && threshold <= 1.0, "threshold in (0,1]");
  PatternReport r{Pattern::kBandwidthSaturation};
  const double fraction = achieved_bandwidth / sustainable_bandwidth;
  r.detected = fraction >= threshold;
  r.severity = std::clamp(fraction, 0.0, 1.0);
  std::ostringstream ev;
  ev << "achieving " << format_sig(fraction * 100.0, 3)
     << "% of sustainable bandwidth";
  r.evidence = ev.str();
  return r;
}

PatternReport detect_branch_unpredictability(const CounterSet& counters,
                                             double threshold) {
  PE_REQUIRE(threshold > 0.0 && threshold < 1.0, "threshold in (0,1)");
  PatternReport r{Pattern::kBranchUnpredictability};
  const double rate = counters.branch_miss_rate();
  r.detected = rate >= threshold;
  r.severity = std::clamp(rate / 0.5, 0.0, 1.0);  // 50% = random = worst
  std::ostringstream ev;
  ev << "branch misprediction rate " << format_sig(rate * 100.0, 3) << "%";
  r.evidence = ev.str();
  return r;
}

PatternReport detect_load_imbalance(std::span<const double> per_worker_seconds,
                                    double threshold) {
  PE_REQUIRE(per_worker_seconds.size() >= 2, "need at least two workers");
  PE_REQUIRE(threshold > 1.0, "threshold must exceed 1");
  PatternReport r{Pattern::kLoadImbalance};
  double total = 0.0, worst = 0.0;
  for (double t : per_worker_seconds) {
    PE_REQUIRE(t >= 0.0, "negative worker time");
    total += t;
    worst = std::max(worst, t);
  }
  const double mean = total / static_cast<double>(per_worker_seconds.size());
  const double imbalance = mean > 0.0 ? worst / mean : 1.0;
  r.detected = imbalance >= threshold;
  r.severity = std::clamp(
      (imbalance - 1.0) /
          (static_cast<double>(per_worker_seconds.size()) - 1.0),
      0.0, 1.0);
  std::ostringstream ev;
  ev << "max/mean worker time " << format_sig(imbalance, 3) << " over "
     << per_worker_seconds.size() << " workers";
  r.evidence = ev.str();
  return r;
}

PatternReport detect_false_sharing(double shared_seconds,
                                   double padded_seconds, double threshold) {
  PE_REQUIRE(shared_seconds > 0.0 && padded_seconds > 0.0,
             "times must be positive");
  PE_REQUIRE(threshold > 1.0, "threshold must exceed 1");
  PatternReport r{Pattern::kFalseSharing};
  const double speedup = shared_seconds / padded_seconds;
  r.detected = speedup >= threshold;
  r.severity = std::clamp((speedup - 1.0) / 9.0, 0.0, 1.0);
  std::ostringstream ev;
  ev << "padding the shared line gives " << format_sig(speedup, 3)
     << "x speedup";
  r.evidence = ev.str();
  return r;
}

std::vector<PatternReport> detect_all(const Diagnostics& d) {
  std::vector<PatternReport> out;
  if (d.counters.has(kMemAccesses) && d.counters.has(kL1Misses))
    out.push_back(detect_bad_spatial_locality(d.counters));
  if (d.counters.has(kBranches) && d.counters.has(kBranchMisses))
    out.push_back(detect_branch_unpredictability(d.counters));
  if (d.achieved_bandwidth > 0.0 && d.sustainable_bandwidth > 0.0)
    out.push_back(detect_bandwidth_saturation(d.achieved_bandwidth,
                                              d.sustainable_bandwidth));
  if (d.per_worker_seconds.size() >= 2)
    out.push_back(detect_load_imbalance(d.per_worker_seconds));
  if (d.shared_seconds > 0.0 && d.padded_seconds > 0.0)
    out.push_back(detect_false_sharing(d.shared_seconds, d.padded_seconds));
  return out;
}

}  // namespace pe::counters
