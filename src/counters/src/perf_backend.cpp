#include "perfeng/counters/perf_backend.hpp"

#include "perfeng/common/error.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>
#endif

namespace pe::counters {

#if defined(__linux__)

namespace {

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
  const char* name;
};

const EventSpec kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, kInstructions},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, kCycles},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, kL3Misses},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS, kBranches},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, kBranchMisses},
};

int open_event(const EventSpec& spec) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = spec.type;
  attr.size = sizeof attr;
  attr.config = spec.config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1,
                                  /*flags=*/0));
}

}  // namespace

bool PerfBackend::available() {
  const int fd = open_event(kEvents[0]);
  if (fd < 0) return false;
  close(fd);
  return true;
}

std::string PerfBackend::unavailable_reason() {
  const int fd = open_event(kEvents[0]);
  if (fd >= 0) {
    close(fd);
    return "";
  }
  return std::string("perf_event_open failed: ") + std::strerror(errno) +
         " (check /proc/sys/kernel/perf_event_paranoid)";
}

CounterSet PerfBackend::measure(const std::function<void()>& work) {
  PE_REQUIRE(static_cast<bool>(work), "null workload");
  struct OpenEvent {
    int fd;
    const char* name;
  };
  std::vector<OpenEvent> fds;
  for (const EventSpec& spec : kEvents) {
    const int fd = open_event(spec);
    if (fd >= 0) fds.push_back({fd, spec.name});
  }
  if (fds.empty())
    throw Error("perf backend unavailable: " + unavailable_reason());

  for (const auto& ev : fds) {
    ioctl(ev.fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(ev.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
  work();
  CounterSet counters;
  for (const auto& ev : fds) {
    ioctl(ev.fd, PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t value = 0;
    if (read(ev.fd, &value, sizeof value) == sizeof value)
      counters.set(ev.name, value);
    close(ev.fd);
  }
  return counters;
}

#else  // !__linux__

bool PerfBackend::available() { return false; }

std::string PerfBackend::unavailable_reason() {
  return "perf_event_open is Linux-only";
}

CounterSet PerfBackend::measure(const std::function<void()>&) {
  throw Error("perf backend unavailable: " + unavailable_reason());
}

#endif

}  // namespace pe::counters
