#include "perfeng/counters/collector.hpp"

#include <cstdint>

#include "perfeng/common/error.hpp"
#include "perfeng/common/fault_hook.hpp"
#include "perfeng/counters/perf_backend.hpp"
#include "perfeng/measure/timer.hpp"

namespace pe::counters {

CounterCollector::CounterCollector(SimulatedMachineModel model)
    : model_(model) {
  PE_REQUIRE(model_.clock_ghz > 0.0, "clock must be positive");
  PE_REQUIRE(model_.assumed_ipc > 0.0, "IPC must be positive");
  PE_REQUIRE(model_.branch_fraction >= 0.0 && model_.branch_fraction <= 1.0,
             "branch fraction must be in [0, 1]");
  PE_REQUIRE(
      model_.branch_miss_rate >= 0.0 && model_.branch_miss_rate <= 1.0,
      "branch miss rate must be in [0, 1]");
}

CollectedCounters CounterCollector::collect(
    const std::function<void()>& work) const {
  PE_REQUIRE(static_cast<bool>(work), "null workload");
  CollectedCounters out;
  // Record whether the workload already ran (and how long it took) inside
  // the hardware backend, so a backend failure *after* the workload — a
  // mid-read error — degrades by reusing the recorded wall time instead of
  // executing a possibly side-effecting workload a second time.
  bool work_started = false;
  bool work_completed = false;
  double work_seconds = 0.0;
  try {
    fault_point(fault_sites::kCountersRead);
    if (!PerfBackend::available())
      throw Error("perf backend unavailable: " +
                  PerfBackend::unavailable_reason());
    out.counters = PerfBackend::measure([&] {
      work_started = true;
      const WallTimer t;
      work();
      work_seconds = t.elapsed();
      work_completed = true;
    });
    out.backend = "perf";
    return out;
  } catch (const std::exception& e) {
    // An exception out of the workload itself is not backend trouble:
    // propagate it rather than re-running a workload that just failed.
    if (work_started && !work_completed) throw;
    out.note = e.what();
  }

  // Degraded path: time the work (unless the failing backend already ran
  // it to completion) and synthesize counters from the nominal machine
  // model. Corrupt-value faults at `counters.read` poison the timing here,
  // which is exactly what chaos runs want to observe.
  if (!work_completed) {
    const WallTimer t;
    work();
    work_seconds = t.elapsed();
  }
  const double seconds =
      fault_value(fault_sites::kCountersRead, work_seconds);
  const double cycles_d = seconds * model_.clock_ghz * 1e9;
  const auto cycles = static_cast<std::uint64_t>(cycles_d);
  const auto instructions =
      static_cast<std::uint64_t>(cycles_d * model_.assumed_ipc);
  const auto branches = static_cast<std::uint64_t>(
      static_cast<double>(instructions) * model_.branch_fraction);
  const auto branch_misses = static_cast<std::uint64_t>(
      static_cast<double>(branches) * model_.branch_miss_rate);
  out.counters.set(kCycles, cycles);
  out.counters.set(kInstructions, instructions);
  out.counters.set(kBranches, branches);
  out.counters.set(kBranchMisses, branch_misses);
  out.backend = "simulated";
  out.degraded = true;
  return out;
}

}  // namespace pe::counters
