#include "perfeng/counters/counter_set.hpp"

#include "perfeng/common/error.hpp"

namespace pe::counters {

void CounterSet::set(const std::string& name, std::uint64_t value) {
  values_[name] = value;
}

void CounterSet::add(const std::string& name, std::uint64_t value) {
  values_[name] += value;
}

std::uint64_t CounterSet::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end())
    throw Error("counter '" + name + "' was not recorded");
  return it->second;
}

std::uint64_t CounterSet::get_or_zero(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

bool CounterSet::has(const std::string& name) const {
  return values_.contains(name);
}

double CounterSet::ratio(const std::string& numerator,
                         const std::string& denominator) const {
  const std::uint64_t den = get_or_zero(denominator);
  if (den == 0) return 0.0;
  return static_cast<double>(get_or_zero(numerator)) /
         static_cast<double>(den);
}

double CounterSet::ipc() const { return ratio(kInstructions, kCycles); }

double CounterSet::l1_miss_rate() const {
  return ratio(kL1Misses, kMemAccesses);
}

double CounterSet::branch_miss_rate() const {
  return ratio(kBranchMisses, kBranches);
}

double CounterSet::dram_per_instruction() const {
  return ratio(kDramAccesses, kInstructions);
}

void CounterSet::merge(const CounterSet& other) {
  for (const auto& [name, value] : other.values_) values_[name] += value;
}

}  // namespace pe::counters
