#pragma once

/// \file attribution.hpp
/// Top-down-style cycle attribution from counter values.
///
/// Given memory-event counts and per-level hit latencies, attribute the
/// memory stall cycles to the level that served each access — the
/// simplified "where do my cycles go?" breakdown Assignment 4 asks
/// students to derive from raw counters before trusting any tool to do
/// it for them.

#include <string>
#include <vector>

#include "perfeng/counters/counter_set.hpp"

namespace pe::counters {

/// Latency (cycles) of a hit at each level, L1 outward, plus DRAM.
struct LatencyModel {
  double l1 = 4.0;
  double l2 = 12.0;
  double l3 = 40.0;
  double dram = 200.0;
};

/// One attribution row.
struct CycleShare {
  std::string level;
  double cycles = 0.0;
  double share = 0.0;  ///< fraction of attributed cycles
};

/// Attribute memory cycles per level from the standard counter names
/// (mem-accesses, L1/L2/LLC misses, dram-accesses). Levels absent from
/// the counter set contribute zero. Shares sum to 1 when any cycles were
/// attributed.
[[nodiscard]] std::vector<CycleShare> attribute_cycles(
    const CounterSet& counters, const LatencyModel& latency = {});

/// Average memory cycles per access (the AMAT the attribution implies).
[[nodiscard]] double average_memory_access_time(
    const CounterSet& counters, const LatencyModel& latency = {});

}  // namespace pe::counters
