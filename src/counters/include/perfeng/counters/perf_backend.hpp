#pragma once

/// \file perf_backend.hpp
/// Hardware performance-counter backend via Linux perf_event_open.
///
/// Where available (bare-metal Linux, or containers granted
/// perf_event_paranoid access), this backend reads the real hardware
/// counters the course uses through PAPI/LIKWID/perf. Where unavailable —
/// most CI containers and the environment this reproduction targets — it
/// degrades gracefully: `available()` is false and callers fall back to
/// the simulated backend in simulated_counters.hpp, which is the
/// documented substitution. Both backends produce the same `CounterSet`
/// vocabulary, so everything downstream (derived metrics, pattern
/// detectors) is backend-agnostic.

#include <functional>
#include <string>

#include "perfeng/counters/counter_set.hpp"

namespace pe::counters {

/// RAII group of hardware counters measured around a closure.
class PerfBackend {
 public:
  /// Probe whether perf_event_open works in this environment.
  [[nodiscard]] static bool available();

  /// Human-readable reason when unavailable (for logs/reports).
  [[nodiscard]] static std::string unavailable_reason();

  /// Measure `work` once and return hardware counters (instructions,
  /// cycles, cache misses, branches, branch misses — whatever the kernel
  /// exposes; missing events are simply absent from the set). Throws
  /// pe::Error when the backend is unavailable.
  [[nodiscard]] static CounterSet measure(const std::function<void()>& work);
};

}  // namespace pe::counters
