#pragma once

/// \file counter_set.hpp
/// Named performance-counter values (Assignment 4's raw material).
///
/// On real hardware these come from PAPI/LIKWID/perf; in this repository
/// they come from the simulators in perfeng/sim (see
/// simulated_counters.hpp). Counter names follow perf's spelling so the
/// derived-metric helpers read like the real tool output the course
/// teaches students to interpret.

#include <cstdint>
#include <map>
#include <string>

namespace pe::counters {

/// Canonical counter names used throughout the toolbox.
inline constexpr const char* kInstructions = "instructions";
inline constexpr const char* kCycles = "cycles";
inline constexpr const char* kMemAccesses = "mem-accesses";
inline constexpr const char* kL1Misses = "L1-dcache-load-misses";
inline constexpr const char* kL2Misses = "L2-misses";
inline constexpr const char* kL3Misses = "LLC-load-misses";
inline constexpr const char* kDramAccesses = "dram-accesses";
inline constexpr const char* kBranches = "branches";
inline constexpr const char* kBranchMisses = "branch-misses";
inline constexpr const char* kWritebacks = "cache-writebacks";

/// A bag of named counters with derived-metric helpers.
class CounterSet {
 public:
  /// Set/overwrite one counter.
  void set(const std::string& name, std::uint64_t value);

  /// Add to one counter (creates it at zero).
  void add(const std::string& name, std::uint64_t value);

  /// Value of a counter; throws pe::Error if absent.
  [[nodiscard]] std::uint64_t get(const std::string& name) const;

  /// Value or 0 when the counter was never recorded.
  [[nodiscard]] std::uint64_t get_or_zero(const std::string& name) const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& values() const {
    return values_;
  }

  /// Ratio of two counters (0 when the denominator is 0).
  [[nodiscard]] double ratio(const std::string& numerator,
                             const std::string& denominator) const;

  /// Derived metrics with the course's standard definitions.
  [[nodiscard]] double ipc() const;               ///< instructions / cycles
  [[nodiscard]] double l1_miss_rate() const;      ///< L1 misses / accesses
  [[nodiscard]] double branch_miss_rate() const;  ///< misses / branches
  [[nodiscard]] double dram_per_instruction() const;

  /// Merge another set by summing counters.
  void merge(const CounterSet& other);

 private:
  std::map<std::string, std::uint64_t> values_;
};

}  // namespace pe::counters
