#pragma once

/// \file patterns.hpp
/// Performance-pattern detection (Treibig, Hager, Wellein — Euro-Par 2012).
///
/// Assignment 4 teaches students to hypothesize a performance pattern and
/// confirm it with counter evidence. Each detector below encodes one such
/// hypothesis test: it consumes counter values (and, for the thread-level
/// patterns, per-worker timings or A/B measurements) and returns a report
/// with the verdict, a severity in [0,1], and the evidence that triggered
/// it — the structure students are asked to produce by hand.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "perfeng/counters/counter_set.hpp"

namespace pe::counters {

/// The patterns the toolbox can diagnose.
enum class Pattern {
  kBadSpatialLocality,     ///< strided/column-major access
  kBandwidthSaturation,    ///< memory-bound streaming
  kBranchUnpredictability, ///< data-dependent branching
  kLoadImbalance,          ///< skewed work distribution
  kFalseSharing,           ///< coherence thrashing on shared lines
};

[[nodiscard]] std::string pattern_name(Pattern p);

/// One detector verdict.
struct PatternReport {
  Pattern pattern;
  bool detected = false;
  double severity = 0.0;  ///< 0 (absent) .. 1 (dominant)
  std::string evidence;   ///< human-readable justification
};

/// Strided/column-walking access: L1 miss rate per memory access far above
/// the streaming expectation (element_size / line_size).
[[nodiscard]] PatternReport detect_bad_spatial_locality(
    const CounterSet& counters, std::size_t element_bytes = 8,
    std::size_t line_bytes = 64);

/// Bandwidth saturation: achieved bandwidth within `threshold` (default
/// 80%) of the machine's measured sustainable bandwidth.
[[nodiscard]] PatternReport detect_bandwidth_saturation(
    double achieved_bandwidth, double sustainable_bandwidth,
    double threshold = 0.8);

/// Branch unpredictability: misprediction rate above `threshold` (default
/// 10%; a well-predicted loop sits under 1%).
[[nodiscard]] PatternReport detect_branch_unpredictability(
    const CounterSet& counters, double threshold = 0.10);

/// Load imbalance: max/mean of per-worker busy times above `threshold`
/// (default 1.25).
[[nodiscard]] PatternReport detect_load_imbalance(
    std::span<const double> per_worker_seconds, double threshold = 1.25);

/// False sharing: the padded variant of an otherwise-identical kernel runs
/// at least `threshold` times faster (default 1.3).
[[nodiscard]] PatternReport detect_false_sharing(double shared_seconds,
                                                 double padded_seconds,
                                                 double threshold = 1.3);

/// Run every counter-based detector on one diagnostics bundle.
struct Diagnostics {
  CounterSet counters;
  std::vector<double> per_worker_seconds;  ///< empty = skip imbalance
  double achieved_bandwidth = 0.0;         ///< 0 = skip saturation
  double sustainable_bandwidth = 0.0;
  double shared_seconds = 0.0;             ///< 0 = skip false sharing
  double padded_seconds = 0.0;
};
[[nodiscard]] std::vector<PatternReport> detect_all(const Diagnostics& d);

}  // namespace pe::counters
