#pragma once

/// \file collector.hpp
/// Counter collection with graceful backend degradation.
///
/// Campaigns should not die because the host forbids perf_event_open. The
/// `CounterCollector` tries the hardware backend first and, when it is
/// unavailable or fails mid-read (including injected `counters.read`
/// faults), falls back to a timing-based simulated estimate — the same
/// documented substitution the rest of the toolbox uses — tagging the
/// result `degraded` with the reason, so downstream reports can show the
/// number *and* its provenance instead of crashing or silently lying.

#include <functional>
#include <string>

#include "perfeng/counters/counter_set.hpp"

namespace pe::counters {

/// Nominal machine assumptions used to synthesize counters from wall time
/// when no hardware backend is available.
struct SimulatedMachineModel {
  double clock_ghz = 3.0;       ///< assumed core clock
  double assumed_ipc = 1.0;     ///< instructions per cycle
  double branch_fraction = 0.2; ///< branches per instruction
  double branch_miss_rate = 0.05;
};

/// A collected counter set plus its provenance.
struct CollectedCounters {
  CounterSet counters;
  std::string backend;   ///< "perf" or "simulated"
  bool degraded = false; ///< true when the hardware backend was unusable
  std::string note;      ///< degradation reason (empty when not degraded)
};

/// Collects counters around a closure, degrading from the perf backend to
/// a simulated estimate instead of throwing. Passes the `counters.read`
/// fault site before touching the hardware backend.
class CounterCollector {
 public:
  explicit CounterCollector(SimulatedMachineModel model = {});

  /// Run `work` once and collect counters. Never throws for backend
  /// trouble (only for a null closure, or an exception from `work`
  /// itself, which propagates): every backend failure path lands in the
  /// simulated fallback with `degraded = true`. The workload executes at
  /// most once per collect() — a backend that fails after running the
  /// workload degrades by reusing the recorded wall time.
  [[nodiscard]] CollectedCounters collect(
      const std::function<void()>& work) const;

  [[nodiscard]] const SimulatedMachineModel& model() const { return model_; }

 private:
  SimulatedMachineModel model_;
};

}  // namespace pe::counters
