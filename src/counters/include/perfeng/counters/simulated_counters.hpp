#pragma once

/// \file simulated_counters.hpp
/// The simulated performance-counter backend.
///
/// Converts simulator state (cache hierarchy stats, branch predictor stats)
/// into a `CounterSet` with perf-style names. This is the documented
/// substitution for PAPI/LIKWID/perf: deterministic counters produced by
/// replaying a kernel's address/branch trace through configurable hardware
/// models instead of reading MSRs.

#include <cstdint>
#include <functional>

#include "perfeng/counters/counter_set.hpp"
#include "perfeng/sim/branch_predictor.hpp"
#include "perfeng/sim/cache_hierarchy.hpp"

namespace pe::counters {

/// Counters from a cache-hierarchy run. `instructions` may be supplied by
/// the caller when the replayed kernel's instruction count is known;
/// otherwise it defaults to the access count (load/store-only kernels).
[[nodiscard]] CounterSet from_hierarchy(const pe::sim::HierarchyStats& stats,
                                        std::uint64_t instructions = 0);

/// Counters from a branch-predictor run.
[[nodiscard]] CounterSet from_branches(const pe::sim::BranchStats& stats);

/// Convenience: reset the hierarchy, replay `trace`, and collect counters.
[[nodiscard]] CounterSet collect(pe::sim::CacheHierarchy& hierarchy,
                                 const std::function<void()>& trace,
                                 std::uint64_t instructions = 0);

}  // namespace pe::counters
