#pragma once

/// \file sparse.hpp
/// Sparse matrix formats and SpMV — the Assignment 3 kernel family.
///
/// The assignment provides SpMV "based on the three classical storage
/// models, CSR, CSC, and COO" and asks students to model them
/// statistically. The formats here convert losslessly between each other,
/// agree numerically on y = A x, and come with the synthetic generators
/// (uniform random, banded, power-law rows) that build the training corpus
/// for the statistical models.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace pe::kernels {

/// One entry of a coordinate-format matrix.
struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

/// Coordinate (COO) storage: an unordered list of (row, col, value).
struct CooMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<Triplet> entries;

  [[nodiscard]] std::size_t nnz() const { return entries.size(); }

  /// Sort entries row-major (row, then column) and sum duplicates.
  void normalize();
};

/// Compressed sparse row storage.
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> row_ptr;  ///< rows + 1 offsets
  std::vector<std::uint32_t> col_idx;  ///< nnz column indices
  std::vector<double> values;          ///< nnz values

  [[nodiscard]] std::size_t nnz() const { return values.size(); }
};

/// Compressed sparse column storage.
struct CscMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> col_ptr;  ///< cols + 1 offsets
  std::vector<std::uint32_t> row_idx;  ///< nnz row indices
  std::vector<double> values;          ///< nnz values

  [[nodiscard]] std::size_t nnz() const { return values.size(); }
};

/// ELLPACK storage: fixed width = max row degree, padded with zeros.
/// Vector-friendly (regular accesses) but wasteful on skewed matrices —
/// the padding_ratio is the feature that predicts when ELL loses.
struct EllMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t width = 0;  ///< entries stored per row (max degree)
  std::vector<std::uint32_t> col_idx;  ///< rows*width, row-major, padded
  std::vector<double> values;          ///< rows*width, 0.0 in padding

  [[nodiscard]] std::size_t nnz() const;  ///< non-padding entries

  /// Stored slots / useful entries (1.0 = no padding waste).
  [[nodiscard]] double padding_ratio() const;
};

/// Format conversions (all normalize duplicates via COO).
[[nodiscard]] CsrMatrix coo_to_csr(const CooMatrix& coo);
[[nodiscard]] CscMatrix coo_to_csc(const CooMatrix& coo);
[[nodiscard]] CooMatrix csr_to_coo(const CsrMatrix& csr);
[[nodiscard]] EllMatrix csr_to_ell(const CsrMatrix& csr);

/// y = A x for each format (y is overwritten; sizes must match).
void spmv_coo(const CooMatrix& a, const std::vector<double>& x,
              std::vector<double>& y);
void spmv_csr(const CsrMatrix& a, const std::vector<double>& x,
              std::vector<double>& y);
void spmv_csc(const CscMatrix& a, const std::vector<double>& x,
              std::vector<double>& y);
void spmv_ell(const EllMatrix& a, const std::vector<double>& x,
              std::vector<double>& y);

/// Row-parallel CSR SpMV (dynamic scheduling absorbs row imbalance).
void spmv_csr_parallel(const CsrMatrix& a, const std::vector<double>& x,
                       std::vector<double>& y, ThreadPool& pool);

/// Split [0, rows) into `parts + 1` boundaries so each part covers about
/// the same number of non-zeros (row_ptr *is* the nnz prefix sum, so each
/// boundary is a lower-bound search for `part * nnz / parts`). Boundaries
/// are non-decreasing; parts with no rows are empty, never negative.
[[nodiscard]] std::vector<std::size_t> balanced_row_partition(
    const CsrMatrix& a, std::size_t parts);

/// Row-parallel CSR SpMV with a nonzero-balanced *static* partition: one
/// contiguous row range per worker, boundaries from
/// `balanced_row_partition`. Matches `spmv_csr` exactly (same per-row
/// summation order); preferable to dynamic chunks on power-law matrices
/// where a handful of heavy rows dominate the work.
void spmv_csr_parallel_balanced(const CsrMatrix& a,
                                const std::vector<double>& x,
                                std::vector<double>& y, ThreadPool& pool);

// ----------------------------------------------------------------- corpus

/// Structure classes the generators produce (the statistical model's
/// categorical feature).
enum class SparsityPattern { kUniform, kBanded, kPowerLaw };

[[nodiscard]] std::string pattern_name(SparsityPattern p);

/// Generate a rows x cols matrix with ~density fraction of non-zeros:
///  - kUniform:  entries scattered uniformly;
///  - kBanded:   entries within a band around the diagonal (good x reuse);
///  - kPowerLaw: per-row degree follows a Zipf law (imbalanced rows).
[[nodiscard]] CooMatrix generate_sparse(std::size_t rows, std::size_t cols,
                                        double density,
                                        SparsityPattern pattern, Rng& rng);

/// Feature vector used by the Assignment 3 statistical models:
/// {rows, cols, nnz, density, mean row degree, row-degree CV, bandwidth}.
[[nodiscard]] std::vector<double> sparse_features(const CsrMatrix& m);

/// Names matching `sparse_features` order.
[[nodiscard]] std::vector<std::string> sparse_feature_names();

}  // namespace pe::kernels
