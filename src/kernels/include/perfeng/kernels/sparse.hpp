#pragma once

/// \file sparse.hpp
/// Sparse matrix formats and SpMV — the Assignment 3 kernel family.
///
/// The assignment provides SpMV "based on the three classical storage
/// models, CSR, CSC, and COO" and asks students to model them
/// statistically. The formats here convert losslessly between each other,
/// agree numerically on y = A x, and come with the synthetic generators
/// (uniform random, banded, power-law rows) that build the training corpus
/// for the statistical models.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace pe::kernels {

/// One entry of a coordinate-format matrix.
struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

/// Coordinate (COO) storage: an unordered list of (row, col, value).
struct CooMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<Triplet> entries;

  [[nodiscard]] std::size_t nnz() const { return entries.size(); }

  /// Sort entries row-major (row, then column) and sum duplicates.
  void normalize();
};

/// Compressed sparse row storage.
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> row_ptr;  ///< rows + 1 offsets
  std::vector<std::uint32_t> col_idx;  ///< nnz column indices
  std::vector<double> values;          ///< nnz values

  [[nodiscard]] std::size_t nnz() const { return values.size(); }
};

/// Compressed sparse column storage.
struct CscMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> col_ptr;  ///< cols + 1 offsets
  std::vector<std::uint32_t> row_idx;  ///< nnz row indices
  std::vector<double> values;          ///< nnz values

  [[nodiscard]] std::size_t nnz() const { return values.size(); }
};

/// ELLPACK storage: fixed width = max row degree, padded with zeros.
/// Vector-friendly (regular accesses) but wasteful on skewed matrices —
/// the padding_ratio is the feature that predicts when ELL loses.
struct EllMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t width = 0;  ///< entries stored per row (max degree)
  std::vector<std::uint32_t> col_idx;  ///< rows*width, row-major, padded
  std::vector<double> values;          ///< rows*width, 0.0 in padding

  [[nodiscard]] std::size_t nnz() const;  ///< non-padding entries

  /// Stored slots / useful entries (1.0 = no padding waste).
  [[nodiscard]] double padding_ratio() const;
};

/// SELL-C-σ chunk height. Fixed at the native double-vector lane count
/// (pe::simd::kDoubleLanes; sparse.cpp static_asserts the match) so one
/// chunk's rows map one-to-one onto SIMD lanes.
inline constexpr std::size_t kSellChunk = 4;

/// SELL-C-σ storage (Kreutzer et al.): rows are grouped into chunks of
/// C = kSellChunk, each chunk padded only to *its own* widest row (not the
/// global max like ELL), and stored slot-major so slot s of all C rows is
/// contiguous — the SIMD SpMV walks lanes *across* rows, which keeps each
/// row's accumulation order identical to scalar CSR (exact equality, see
/// spmv_sell). Within windows of σ rows, rows are sorted by descending
/// degree before chunking so similar-degree rows share a chunk and padding
/// shrinks; `row_ids` remembers the permutation.
struct SellMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t sigma = 1;  ///< sorting-window height used at build time

  /// Chunk c's elements live at [chunk_ptr[c], chunk_ptr[c+1]) in
  /// col_idx/values; width_c = (chunk_ptr[c+1] - chunk_ptr[c]) / C.
  std::vector<std::uint32_t> chunk_ptr;
  /// Original row handled by lane l of chunk c, at [c * C + l];
  /// kSellPadRow marks a padding lane (rows not a multiple of C).
  std::vector<std::uint32_t> row_ids;
  std::vector<std::uint32_t> col_idx;  ///< slot-major, 0 in padding
  std::vector<double> values;          ///< slot-major, 0.0 in padding

  static constexpr std::uint32_t kSellPadRow = 0xffffffffu;

  [[nodiscard]] std::size_t chunks() const {
    return chunk_ptr.empty() ? 0 : chunk_ptr.size() - 1;
  }
  [[nodiscard]] std::size_t nnz() const;  ///< non-padding entries

  /// Stored slots / useful entries (1.0 = no padding waste). Bounded by
  /// ELL's ratio from below; approaches 1.0 as sigma grows.
  [[nodiscard]] double padding_ratio() const;
};

/// Format conversions (all normalize duplicates via COO).
[[nodiscard]] CsrMatrix coo_to_csr(const CooMatrix& coo);
[[nodiscard]] CscMatrix coo_to_csc(const CooMatrix& coo);
[[nodiscard]] CooMatrix csr_to_coo(const CsrMatrix& csr);
[[nodiscard]] EllMatrix csr_to_ell(const CsrMatrix& csr);

/// Build SELL-C-σ from CSR. `sigma` is the degree-sorting window in rows
/// (1 = no reordering; must be a multiple of kSellChunk or 1). The sort is
/// stable, so equal-degree rows keep their original order.
[[nodiscard]] SellMatrix csr_to_sell(const CsrMatrix& csr,
                                     std::size_t sigma = 32);

/// y = A x for each format (y is overwritten; sizes must match).
void spmv_coo(const CooMatrix& a, const std::vector<double>& x,
              std::vector<double>& y);
void spmv_csr(const CsrMatrix& a, const std::vector<double>& x,
              std::vector<double>& y);
void spmv_csc(const CscMatrix& a, const std::vector<double>& x,
              std::vector<double>& y);
void spmv_ell(const EllMatrix& a, const std::vector<double>& x,
              std::vector<double>& y);

/// SIMD SpMV over SELL-C-σ: one vector lane per row, unfused multiply-add
/// so every row's sum is computed in exactly the order and rounding of
/// `spmv_csr` — results are equal (operator==) for finite inputs. Padding
/// contributes `0.0 * x[0]`, which never changes a finite sum.
void spmv_sell(const SellMatrix& a, const std::vector<double>& x,
               std::vector<double>& y);

/// Row-parallel CSR SpMV (dynamic scheduling absorbs row imbalance).
void spmv_csr_parallel(const CsrMatrix& a, const std::vector<double>& x,
                       std::vector<double>& y, ThreadPool& pool);

/// Chunk-parallel SELL SpMV. Chunks own disjoint rows (row_ids is a
/// permutation), so this is race-free and matches `spmv_sell` exactly.
void spmv_sell_parallel(const SellMatrix& a, const std::vector<double>& x,
                        std::vector<double>& y, ThreadPool& pool);

/// Row-parallel ELL SpMV; matches `spmv_ell` exactly.
void spmv_ell_parallel(const EllMatrix& a, const std::vector<double>& x,
                       std::vector<double>& y, ThreadPool& pool);

/// Entry-parallel COO SpMV. Requires `a` to be normalized (row-sorted):
/// the entry list is partitioned at row boundaries so each worker owns a
/// disjoint row range of y. Throws pe::Error on out-of-order rows.
/// Matches `spmv_coo` exactly (same per-row accumulation order).
void spmv_coo_parallel(const CooMatrix& a, const std::vector<double>& x,
                       std::vector<double>& y, ThreadPool& pool);

/// Split [0, rows) into `parts + 1` boundaries so each part covers about
/// the same number of non-zeros (row_ptr *is* the nnz prefix sum, so each
/// boundary is a lower-bound search for `part * nnz / parts`). Boundaries
/// are non-decreasing; parts with no rows are empty, never negative.
[[nodiscard]] std::vector<std::size_t> balanced_row_partition(
    const CsrMatrix& a, std::size_t parts);

/// Row-parallel CSR SpMV with a nonzero-balanced *static* partition: one
/// contiguous row range per worker, boundaries from
/// `balanced_row_partition`. Matches `spmv_csr` exactly (same per-row
/// summation order); preferable to dynamic chunks on power-law matrices
/// where a handful of heavy rows dominate the work.
void spmv_csr_parallel_balanced(const CsrMatrix& a,
                                const std::vector<double>& x,
                                std::vector<double>& y, ThreadPool& pool);

// ----------------------------------------------------------------- corpus

/// Structure classes the generators produce (the statistical model's
/// categorical feature).
enum class SparsityPattern { kUniform, kBanded, kPowerLaw };

[[nodiscard]] std::string pattern_name(SparsityPattern p);

/// Generate a rows x cols matrix with ~density fraction of non-zeros:
///  - kUniform:  entries scattered uniformly;
///  - kBanded:   entries within a band around the diagonal (good x reuse);
///  - kPowerLaw: per-row degree follows a Zipf law (imbalanced rows).
[[nodiscard]] CooMatrix generate_sparse(std::size_t rows, std::size_t cols,
                                        double density,
                                        SparsityPattern pattern, Rng& rng);

/// Feature vector used by the Assignment 3 statistical models:
/// {rows, cols, nnz, density, mean row degree, row-degree CV, bandwidth}.
[[nodiscard]] std::vector<double> sparse_features(const CsrMatrix& m);

/// Names matching `sparse_features` order.
[[nodiscard]] std::vector<std::string> sparse_feature_names();

}  // namespace pe::kernels
