#pragma once

/// \file pattern_kernels.hpp
/// Synthetic kernels demonstrating classic performance patterns
/// (Assignment 4, after Treibig/Hager/Wellein's performance patterns).
///
/// Each pattern comes as a *broken* and a *fixed* variant with identical
/// results, so the pattern's cost — and its disappearance after the fix —
/// can be measured (wall-clock) and diagnosed (simulated counters):
///
///   strided access      -> fix: sequential traversal
///   false sharing       -> fix: cache-line padding
///   load imbalance      -> fix: dynamic scheduling
///   branch-heavy code   -> fix: sorted data / branchless form

#include <cstddef>
#include <cstdint>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace pe::kernels {

// -------------------------------------------------------- strided access

/// Sum every `stride`-th element, wrapping over the buffer, touching
/// exactly data.size() elements (same work for every stride).
[[nodiscard]] double strided_sum(const std::vector<double>& data,
                                 std::size_t stride);

/// The fixed version: sequential sum (equals strided_sum with stride 1).
[[nodiscard]] double sequential_sum(const std::vector<double>& data);

// -------------------------------------------------------- false sharing

/// Each worker increments its own counter `iterations` times; counters are
/// adjacent in one cache line (the broken layout). Returns the total.
[[nodiscard]] std::uint64_t false_sharing_counters(ThreadPool& pool,
                                                   std::uint64_t iterations);

/// Fixed: counters padded to one cache line each.
[[nodiscard]] std::uint64_t padded_counters(ThreadPool& pool,
                                            std::uint64_t iterations);

// -------------------------------------------------------- load imbalance

/// Triangular work distribution (task i costs ~i units) under static
/// scheduling: the last worker gets nearly all the work.
void imbalanced_static(ThreadPool& pool, std::size_t tasks,
                       std::vector<double>& out);

/// Fixed: the same tasks under dynamic self-scheduling.
void imbalanced_dynamic(ThreadPool& pool, std::size_t tasks,
                        std::vector<double>& out);

// -------------------------------------------------------- branchy code

/// Sum of elements above `threshold` with a data-dependent branch.
[[nodiscard]] double branchy_sum(const std::vector<double>& data,
                                 double threshold);

/// Fixed: branch-free (predicated) form with identical semantics.
[[nodiscard]] double branchless_sum(const std::vector<double>& data,
                                    double threshold);

/// Input generators: unsorted uniform data defeats the branch predictor;
/// sorting it makes the same branchy_sum nearly free.
[[nodiscard]] std::vector<double> random_doubles(std::size_t count, Rng& rng);
[[nodiscard]] std::vector<double> sorted_doubles(std::size_t count, Rng& rng);

}  // namespace pe::kernels
