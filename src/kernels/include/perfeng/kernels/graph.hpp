#pragma once

/// \file graph.hpp
/// CSR graph processing — the third recurring student project.
///
/// A compressed adjacency structure with the two canonical irregular
/// workloads: breadth-first search (frontier-based, level synchronous) and
/// PageRank (synchronous power iteration). Generators produce Erdős–Rényi
/// uniform graphs and power-law (preferential-attachment-flavoured) graphs
/// whose skewed degree distribution stresses load balancing.

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace pe::kernels {

/// Directed graph in CSR adjacency form.
class Graph {
 public:
  /// Build from an edge list (duplicates removed, self-loops kept).
  static Graph from_edges(std::size_t vertices,
                          std::vector<std::pair<std::uint32_t, std::uint32_t>>
                              edges);

  [[nodiscard]] std::size_t vertices() const { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t edges() const { return targets_.size(); }

  /// Out-neighbours of `v`.
  [[nodiscard]] std::span<const std::uint32_t> neighbours(
      std::uint32_t v) const;

  [[nodiscard]] std::size_t out_degree(std::uint32_t v) const;

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> targets_;
};

/// Uniform random directed graph with `edges` edges (Erdős–Rényi G(n, m)).
[[nodiscard]] Graph generate_uniform_graph(std::size_t vertices,
                                           std::size_t edges, Rng& rng);

/// Power-law graph: target of each edge drawn by Zipf popularity.
[[nodiscard]] Graph generate_powerlaw_graph(std::size_t vertices,
                                            std::size_t edges, double skew,
                                            Rng& rng);

/// BFS distances from `source` (UINT32_MAX = unreachable).
[[nodiscard]] std::vector<std::uint32_t> bfs(const Graph& g,
                                             std::uint32_t source);

/// PageRank by synchronous power iteration with damping `d`; iterates
/// until the L1 delta drops below `tolerance` or `max_iters` is hit.
/// Dangling-node mass is redistributed uniformly. Returns the rank vector
/// (sums to 1).
[[nodiscard]] std::vector<double> pagerank(const Graph& g, double d = 0.85,
                                           double tolerance = 1e-8,
                                           int max_iters = 100);

/// Row-parallel PageRank with identical semantics.
[[nodiscard]] std::vector<double> pagerank_parallel(const Graph& g,
                                                    ThreadPool& pool,
                                                    double d = 0.85,
                                                    double tolerance = 1e-8,
                                                    int max_iters = 100);

}  // namespace pe::kernels
