#pragma once

/// \file traces.hpp
/// Kernel address traces replayed into the cache/branch simulators.
///
/// Where the real course reads hardware counters while a kernel runs, this
/// repository replays the kernel's exact access pattern through the
/// simulators in perfeng/sim — same loop structure, symbolic addresses.
/// The result is a deterministic, portable set of "counter" values that
/// exhibit the same qualitative behaviour (loop-order miss blowups, stride
/// effects, branch-predictability differences).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "perfeng/sim/branch_predictor.hpp"
#include "perfeng/sim/cache_hierarchy.hpp"

namespace pe::kernels {

/// Matmul loop orders traced (mirrors perfeng/models MatmulVariant).
enum class TraceVariant { kNaiveIjk, kInterchangedIkj, kTiled };

/// Replay the address stream of an n x n matmul into the hierarchy.
/// Matrices are laid out contiguously (A, then B, then C), row-major.
void trace_matmul(pe::sim::CacheHierarchy& hierarchy, std::size_t n,
                  TraceVariant variant, std::size_t tile = 32);

/// Replay a strided read sweep: data.size() touches of 8-byte elements
/// with the given stride (wrapping), matching kernels::strided_sum.
void trace_strided(pe::sim::CacheHierarchy& hierarchy, std::size_t elements,
                   std::size_t stride);

/// Replay histogram counter updates (read-modify-write per index) plus the
/// streaming input reads.
void trace_histogram(pe::sim::CacheHierarchy& hierarchy,
                     const std::vector<std::uint32_t>& indices,
                     std::size_t bins);

/// Replay CSR SpMV: row_ptr/col_idx/values streams plus x gathers and y
/// writes, with the given column index stream.
void trace_spmv_csr(pe::sim::CacheHierarchy& hierarchy, std::size_t rows,
                    std::size_t cols,
                    const std::vector<std::uint32_t>& row_ptr,
                    const std::vector<std::uint32_t>& col_idx);

/// Feed the outcome stream of `branchy_sum` (one branch per element, taken
/// when above threshold) into a branch predictor.
void trace_branchy(pe::sim::BranchPredictor& predictor,
                   const std::vector<double>& data, double threshold);

}  // namespace pe::kernels
