#pragma once

/// \file matrix_market.hpp
/// Matrix Market (.mtx) coordinate-format IO.
///
/// The course ships "open-source code for reading matrices in the matrix
/// market format" with its assignment frameworks; this is that reader,
/// supporting the `matrix coordinate real/integer/pattern general|symmetric`
/// subset that covers the SuiteSparse matrices students typically pull.

#include <iosfwd>
#include <string>
#include <string_view>

#include "perfeng/kernels/sparse.hpp"

namespace pe::kernels {

/// Parse a Matrix Market stream into COO form. Symmetric matrices are
/// expanded (mirror entries added, diagonal kept single). Throws pe::Error
/// on malformed input or unsupported qualifiers (complex, hermitian); the
/// message names `source` (a file name or "<stream>") and the offending
/// 1-based line, so a bad SuiteSparse download is diagnosable from the log.
[[nodiscard]] CooMatrix read_matrix_market(std::istream& in,
                                           std::string_view source =
                                               "<stream>");

/// Parse a Matrix Market document held in a string.
[[nodiscard]] CooMatrix parse_matrix_market(const std::string& text);

/// Read a .mtx file from disk. Passes the `io.matrix_market` fault site.
[[nodiscard]] CooMatrix read_matrix_market_file(const std::string& path);

/// Serialize a COO matrix as `matrix coordinate real general`.
[[nodiscard]] std::string write_matrix_market(const CooMatrix& m);

}  // namespace pe::kernels
