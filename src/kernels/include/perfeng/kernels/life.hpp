#pragma once

/// \file life.hpp
/// Conway's Game of Life — the second-most popular student project.
///
/// Two engines with identical semantics on a non-wrapping (dead-border)
/// universe: a byte-per-cell reference engine, and a bit-packed engine that
/// computes 64 cells per word using bit-sliced full adders — the classic
/// optimization project result (an order of magnitude from data-layout
/// alone, which the Roofline model explains as an intensity increase).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perfeng/common/rng.hpp"

namespace pe::kernels {

/// Byte-per-cell universe (reference engine).
class LifeGrid {
 public:
  LifeGrid(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] bool alive(std::size_t r, std::size_t c) const {
    return cells_[r * cols_ + c] != 0;
  }
  void set(std::size_t r, std::size_t c, bool value) {
    cells_[r * cols_ + c] = value ? 1 : 0;
  }

  /// Number of live cells.
  [[nodiscard]] std::size_t population() const;

  /// Seed with density in [0,1] from a deterministic RNG.
  void randomize(double density, Rng& rng);

  /// Place a standard glider with its top-left at (r, c).
  void place_glider(std::size_t r, std::size_t c);

  /// One generation (dead border). Returns the next universe.
  [[nodiscard]] LifeGrid step() const;

  /// Render as '.'/'#' rows (debugging and golden tests).
  [[nodiscard]] std::string render() const;

  bool operator==(const LifeGrid& other) const = default;

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint8_t> cells_;
};

/// Bit-packed universe: 64 cells per word, bit-sliced neighbour adder.
class LifeGridPacked {
 public:
  LifeGridPacked(std::size_t rows, std::size_t cols);

  /// Convert from the byte engine (for differential testing).
  explicit LifeGridPacked(const LifeGrid& reference);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] bool alive(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool value);

  [[nodiscard]] std::size_t population() const;

  /// One generation with identical semantics to LifeGrid::step().
  [[nodiscard]] LifeGridPacked step() const;

  /// Convert back to the byte engine.
  [[nodiscard]] LifeGrid unpack() const;

 private:
  std::size_t rows_, cols_, words_per_row_;
  std::vector<std::uint64_t> bits_;

  [[nodiscard]] std::uint64_t shifted_row(std::size_t r, int dx,
                                          std::size_t w) const;
};

}  // namespace pe::kernels
