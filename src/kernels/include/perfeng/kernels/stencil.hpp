#pragma once

/// \file stencil.hpp
/// 2D 5-point Jacobi stencil — the most popular recurring student project.
///
/// The paper lists "2D stencil code optimization" as the most chosen
/// project; these variants reproduce the standard optimization path:
/// naive double-buffered sweep, cache-blocked sweep, and a thread-parallel
/// sweep over row blocks.

#include <cstddef>
#include <functional>
#include <vector>

#include "perfeng/parallel/thread_pool.hpp"

namespace pe::kernels {

/// Dense 2D grid with a one-cell halo convention: boundary cells are fixed
/// (Dirichlet) and only interior cells are updated.
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }

  /// Max absolute difference (shapes must match).
  [[nodiscard]] double max_abs_diff(const Grid2D& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// One Jacobi sweep: out(i,j) = (in(i,j) + 4-neighbourhood) / 5 for all
/// interior cells; boundaries copied through.
void stencil_step_naive(const Grid2D& in, Grid2D& out);

/// Cache-blocked sweep with `block` x `block` tiles.
void stencil_step_blocked(const Grid2D& in, Grid2D& out,
                          std::size_t block = 64);

/// Thread-parallel sweep over row blocks.
void stencil_step_parallel(const Grid2D& in, Grid2D& out, ThreadPool& pool);

/// Run `steps` sweeps ping-ponging two buffers; returns the final grid.
/// `step` is any of the step functions above wrapped in a closure.
Grid2D stencil_run(Grid2D initial, int steps,
                   const std::function<void(const Grid2D&, Grid2D&)>& step);

/// L2 norm of the residual between two successive iterates (convergence
/// tracking for the example application).
[[nodiscard]] double stencil_residual(const Grid2D& a, const Grid2D& b);

/// FLOPs per sweep: 5 per interior cell (4 adds + 1 multiply).
[[nodiscard]] double stencil_flops(std::size_t rows, std::size_t cols);

}  // namespace pe::kernels
