#pragma once

/// \file transpose.hpp
/// Matrix transpose — the canonical cache-blocking example.
///
/// A naive transpose streams reads but scatters writes column-wise (or
/// vice versa): at most one useful element per written cache line once
/// the matrix outgrows the cache. Blocking fixes both directions at once.
/// Zero FLOPs, pure traffic — the cleanest possible Roofline/x-axis
/// degenerate case, and a favourite course demo.

#include <cstddef>

#include "perfeng/kernels/matmul.hpp"
#include "perfeng/parallel/thread_pool.hpp"
#include "perfeng/sim/cache_hierarchy.hpp"

namespace pe::kernels {

/// out = in^T, row-major naive loops (reads stream, writes stride).
void transpose_naive(const Matrix& in, Matrix& out);

/// out = in^T with square blocking of edge `block`.
void transpose_blocked(const Matrix& in, Matrix& out,
                       std::size_t block = 32);

/// out = in^T, blocked, with the *output* rows partitioned over the pool —
/// each chunk's writes are one contiguous row-major slab of `out`, so the
/// race-checker claims are disjoint by construction and no written cache
/// line is shared between workers.
void transpose_parallel(const Matrix& in, Matrix& out, ThreadPool& pool,
                        std::size_t block = 32);

/// In-place transpose of a square matrix (swap-based).
void transpose_inplace(Matrix& m);

/// Replay the naive or blocked transpose address stream into a cache
/// hierarchy (`block` == 0 selects the naive loop order).
void trace_transpose(pe::sim::CacheHierarchy& hierarchy, std::size_t rows,
                     std::size_t cols, std::size_t block);

/// Compulsory traffic in bytes: every element read once + written once.
[[nodiscard]] double transpose_min_bytes(std::size_t rows,
                                         std::size_t cols);

}  // namespace pe::kernels
