#pragma once

/// \file fft.hpp
/// Radix-2 FFT — one of the "exotic" student projects the paper mentions.
///
/// A naive O(n^2) DFT serves as the correctness oracle and pedagogical
/// baseline; the iterative radix-2 Cooley–Tukey FFT is the optimized
/// version whose asymptotic win the performance-engineering process should
/// confirm empirically (and whose memory behaviour — bit-reversal — makes a
/// nice cache-analysis subject).

#include <complex>
#include <cstddef>
#include <vector>

namespace pe::kernels {

using Complex = std::complex<double>;

/// Naive O(n^2) discrete Fourier transform (any n >= 1).
[[nodiscard]] std::vector<Complex> dft(const std::vector<Complex>& input);

/// Iterative radix-2 Cooley–Tukey FFT; n must be a power of two.
[[nodiscard]] std::vector<Complex> fft(const std::vector<Complex>& input);

/// Inverse FFT; n must be a power of two.
[[nodiscard]] std::vector<Complex> ifft(const std::vector<Complex>& input);

/// Max absolute componentwise difference between two spectra.
[[nodiscard]] double spectrum_diff(const std::vector<Complex>& a,
                                   const std::vector<Complex>& b);

/// FLOP estimate of a radix-2 FFT: 5 n log2 n (the classic count).
[[nodiscard]] double fft_flops(std::size_t n);

}  // namespace pe::kernels
