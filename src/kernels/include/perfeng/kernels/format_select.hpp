#pragma once

/// \file format_select.hpp
/// Statistically trained sparse-format auto-selection.
///
/// No single sparse format wins everywhere: CSR is the safe default, ELL
/// flies on regular matrices and drowns in padding on skewed ones,
/// SELL-C-σ splits the difference, COO/CSC have their niches. Instead of
/// hand-written switch heuristics (the SNIPPETS.md idiom), the selector is
/// *learned*: one statmodel decision tree per format, fit on
/// (shape features -> log seconds) samples from the spmv_formats corpus,
/// and the cheapest predicted format wins. This is the Assignment 3 move —
/// model the machine empirically, then let the model make the call.

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "perfeng/kernels/sparse.hpp"
#include "perfeng/statmodel/tree.hpp"

namespace pe::kernels {

/// The SpMV storage formats the engine can choose between.
enum class SpmvFormat { kCsr, kCsc, kCoo, kEll, kSell };

inline constexpr std::size_t kNumSpmvFormats = 5;

inline constexpr std::array<SpmvFormat, kNumSpmvFormats> kAllSpmvFormats = {
    SpmvFormat::kCsr, SpmvFormat::kCsc, SpmvFormat::kCoo, SpmvFormat::kEll,
    SpmvFormat::kSell};

[[nodiscard]] std::string spmv_format_name(SpmvFormat f);

/// Matrix-shape features the selector sees — computable from CSR alone in
/// one pass, cheap relative to even a single SpMV.
struct FormatFeatures {
  double rows = 0.0;
  double cols = 0.0;
  double nnz = 0.0;
  double mean_deg = 0.0;     ///< nnz / rows
  double deg_cv = 0.0;       ///< row-degree coefficient of variation
  double deg_max = 0.0;      ///< heaviest row (ELL width)
  double bandwidth = 0.0;    ///< max |col - row| over entries
  double ell_padding = 0.0;  ///< rows * deg_max / nnz (ELL waste factor)

  [[nodiscard]] static FormatFeatures from_csr(const CsrMatrix& m);

  [[nodiscard]] std::vector<double> as_vector() const;
  [[nodiscard]] static std::vector<std::string> names();
};

/// One training observation: a matrix's features plus the measured SpMV
/// seconds for every format.
struct FormatSample {
  FormatFeatures features;
  std::array<double, kNumSpmvFormats> seconds{};  ///< indexed by format
};

/// Per-format runtime regressors; `choose` returns the format with the
/// smallest predicted time. Deterministic given the training set.
class FormatSelector {
 public:
  /// Fit one tree per format on log(seconds) — log because runtimes span
  /// orders of magnitude across the corpus and variance-minimizing splits
  /// would otherwise only see the big matrices.
  [[nodiscard]] static FormatSelector train(
      const std::vector<FormatSample>& samples);

  [[nodiscard]] SpmvFormat choose(const FormatFeatures& f) const;

  /// Predicted seconds for one format (exp of the tree output).
  [[nodiscard]] double predict_seconds(const FormatFeatures& f,
                                       SpmvFormat format) const;

  [[nodiscard]] bool trained() const { return trained_; }

 private:
  std::array<statmodel::DecisionTreeRegressor, kNumSpmvFormats> models_;
  bool trained_ = false;
};

}  // namespace pe::kernels
