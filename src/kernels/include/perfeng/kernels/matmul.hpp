#pragma once

/// \file matmul.hpp
/// Dense matrix multiplication — the Assignment 1 kernel.
///
/// The assignment hands students a naive triple loop and asks for a
/// Roofline model, then for optimizations "like loop reordering and loop
/// tiling" whose effect the model must capture. The variants here are the
/// canonical progression: naive ijk (column-walking B), interchanged ikj
/// (all-sequential streams), tiled (cache blocking), and a thread-parallel
/// tiled version on the toolbox's thread pool.

#include <cstddef>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace pe::machine {
struct Machine;
}

namespace pe::kernels {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  /// Fill with uniform values in [-1, 1) from a deterministic RNG.
  void randomize(Rng& rng);

  /// Max absolute elementwise difference (matrices must match in shape).
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B with the naive i-j-k loop order (B walked down columns).
void matmul_naive(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B with the i-k-j interchange (all rows streamed sequentially).
void matmul_interchanged(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B with square cache blocking of edge `tile`.
void matmul_tiled(const Matrix& a, const Matrix& b, Matrix& c,
                  std::size_t tile = 64);

/// C = A * B, tiled, with row-blocks distributed over the pool.
void matmul_parallel(const Matrix& a, const Matrix& b, Matrix& c,
                     ThreadPool& pool, std::size_t tile = 64);

/// Cache-blocking parameters for the packed microkernel (BLIS-style
/// nomenclature): the kernel packs `mc x kc` panels of A and `kc x nc`
/// panels of B into contiguous tiles, then runs a register-blocked
/// microkernel over them. The register tile (mr x nr) is a compile-time
/// constant of the kernel; these three only set the cache footprint.
struct MatmulBlocking {
  std::size_t mc = 128;   ///< A-panel rows   (mc*kc doubles ~ half of L2)
  std::size_t kc = 256;   ///< panel depth    (kc*nr doubles ~ part of L1)
  std::size_t nc = 2048;  ///< B-panel cols   (kc*nc doubles ~ half of LLC)

  /// Derive the panel sizes from a machine description's cache capacities
  /// (kc from the fastest level, mc from the next, nc from the largest
  /// cache). Falls back to the defaults where the hierarchy is silent.
  [[nodiscard]] static MatmulBlocking from_machine(const machine::Machine& m);
};

/// C = A * B with A/B packed into contiguous panels and a register-blocked
/// microkernel, row-panels distributed over the pool. Numerically
/// equivalent to the other variants up to floating-point reassociation.
void matmul_parallel_packed(const Matrix& a, const Matrix& b, Matrix& c,
                            ThreadPool& pool,
                            const MatmulBlocking& blocking = {});

/// Useful FLOPs of an (m x k) * (k x n) multiplication: 2 m k n.
[[nodiscard]] double matmul_flops(std::size_t m, std::size_t k,
                                  std::size_t n);

/// Compulsory memory traffic in bytes (every operand touched once):
/// the *lower bound* students use for the optimistic intensity.
[[nodiscard]] double matmul_min_bytes(std::size_t m, std::size_t k,
                                      std::size_t n);

}  // namespace pe::kernels
