#pragma once

/// \file histogram.hpp
/// Histogram — Assignment 2's data-dependent kernel.
///
/// Binning n values into b counters looks trivially cheap, but its
/// performance depends on the *distribution* of the data: a huge bin table
/// with uniform indices thrashes the cache, while skewed (Zipf) data keeps
/// the hot bins resident. The generators below produce both regimes so the
/// analytical model's data-dependent term can be validated.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace pe::kernels {

/// Input samples pre-binned to [0, bins): the kernel under study is the
/// counter update, not the float-to-bin mapping.
[[nodiscard]] std::vector<std::uint32_t> generate_uniform_indices(
    std::size_t count, std::size_t bins, Rng& rng);

/// Zipf-skewed indices (skew 0 = uniform; ~1 = heavily skewed). Hot bins
/// are scattered through the table so locality comes from popularity, not
/// from adjacency.
[[nodiscard]] std::vector<std::uint32_t> generate_zipf_indices(
    std::size_t count, std::size_t bins, double skew, Rng& rng);

/// Serial histogram: counts[index[i]]++ for all i.
void histogram_serial(const std::vector<std::uint32_t>& indices,
                      std::vector<std::uint64_t>& counts);

/// Parallel histogram over one shared table of atomic counters — correct
/// but contended: on skewed data the hot bins serialize (the broken
/// variant of the contention pattern).
void histogram_parallel_atomic(const std::vector<std::uint32_t>& indices,
                               std::vector<std::uint64_t>& counts,
                               ThreadPool& pool);

/// Parallel histogram with per-worker private tables merged at the end —
/// the standard fix for atomic contention the course teaches.
void histogram_parallel_private(const std::vector<std::uint32_t>& indices,
                                std::vector<std::uint64_t>& counts,
                                ThreadPool& pool);

/// Total of all counters (sanity invariant: equals the index count).
[[nodiscard]] std::uint64_t histogram_total(
    const std::vector<std::uint64_t>& counts);

}  // namespace pe::kernels
