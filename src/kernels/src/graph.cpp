#include "perfeng/kernels/graph.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "perfeng/common/access_hook.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/parallel/parallel_for.hpp"

namespace pe::kernels {

Graph Graph::from_edges(
    std::size_t vertices,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  PE_REQUIRE(vertices >= 1, "graph must have at least one vertex");
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_.assign(vertices + 1, 0);
  g.targets_.reserve(edges.size());
  for (const auto& [src, dst] : edges) {
    PE_REQUIRE(src < vertices && dst < vertices, "edge out of bounds");
    ++g.offsets_[src + 1];
    g.targets_.push_back(dst);
  }
  for (std::size_t v = 0; v < vertices; ++v)
    g.offsets_[v + 1] += g.offsets_[v];
  return g;
}

std::span<const std::uint32_t> Graph::neighbours(std::uint32_t v) const {
  PE_REQUIRE(v < vertices(), "vertex out of range");
  return {targets_.data() + offsets_[v],
          static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
}

std::size_t Graph::out_degree(std::uint32_t v) const {
  PE_REQUIRE(v < vertices(), "vertex out of range");
  return offsets_[v + 1] - offsets_[v];
}

Graph generate_uniform_graph(std::size_t vertices, std::size_t edges,
                             Rng& rng) {
  PE_REQUIRE(vertices >= 2, "need at least two vertices");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> list;
  list.reserve(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    list.emplace_back(
        static_cast<std::uint32_t>(rng.next_range(0, vertices - 1)),
        static_cast<std::uint32_t>(rng.next_range(0, vertices - 1)));
  }
  return Graph::from_edges(vertices, std::move(list));
}

Graph generate_powerlaw_graph(std::size_t vertices, std::size_t edges,
                              double skew, Rng& rng) {
  PE_REQUIRE(vertices >= 2, "need at least two vertices");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> list;
  list.reserve(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto src =
        static_cast<std::uint32_t>(rng.next_range(0, vertices - 1));
    // Popular targets follow a Zipf law, scattered over the id space.
    const std::uint64_t rank = rng.next_zipf(vertices, skew);
    const auto dst = static_cast<std::uint32_t>(
        (rank * 2654435761ULL) % vertices);
    list.emplace_back(src, dst);
  }
  return Graph::from_edges(vertices, std::move(list));
}

std::vector<std::uint32_t> bfs(const Graph& g, std::uint32_t source) {
  PE_REQUIRE(source < g.vertices(), "source out of range");
  std::vector<std::uint32_t> dist(g.vertices(), UINT32_MAX);
  std::deque<std::uint32_t> frontier;
  dist[source] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const std::uint32_t v = frontier.front();
    frontier.pop_front();
    for (std::uint32_t w : g.neighbours(v)) {
      if (dist[w] == UINT32_MAX) {
        dist[w] = dist[v] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

namespace {

/// One synchronous PageRank iteration (push-based); returns the L1 delta.
double pagerank_iteration(const Graph& g, double d,
                          const std::vector<double>& rank,
                          std::vector<double>& next) {
  const std::size_t n = g.vertices();
  const double base = (1.0 - d) / static_cast<double>(n);

  double dangling = 0.0;
  std::fill(next.begin(), next.end(), 0.0);
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto out = g.neighbours(v);
    if (out.empty()) {
      dangling += rank[v];
      continue;
    }
    const double share = rank[v] / static_cast<double>(out.size());
    for (std::uint32_t w : out) next[w] += share;
  }
  const double dangling_share = dangling / static_cast<double>(n);
  double delta = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    next[v] = base + d * (next[v] + dangling_share);
    delta += std::abs(next[v] - rank[v]);
  }
  return delta;
}

}  // namespace

std::vector<double> pagerank(const Graph& g, double d, double tolerance,
                             int max_iters) {
  PE_REQUIRE(d > 0.0 && d < 1.0, "damping must be in (0,1)");
  PE_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  PE_REQUIRE(max_iters >= 1, "need at least one iteration");
  const std::size_t n = g.vertices();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < max_iters; ++iter) {
    const double delta = pagerank_iteration(g, d, rank, next);
    rank.swap(next);
    if (delta < tolerance) break;
  }
  return rank;
}

std::vector<double> pagerank_parallel(const Graph& g, ThreadPool& pool,
                                      double d, double tolerance,
                                      int max_iters) {
  PE_REQUIRE(d > 0.0 && d < 1.0, "damping must be in (0,1)");
  PE_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  PE_REQUIRE(max_iters >= 1, "need at least one iteration");
  const std::size_t n = g.vertices();
  const std::size_t workers = pool.size();
  const double dn = static_cast<double>(n);
  std::vector<double> rank(n, 1.0 / dn);
  std::vector<double> next(n, 0.0);
  std::vector<std::vector<double>> privates(
      workers, std::vector<double>(n, 0.0));

  for (int iter = 0; iter < max_iters; ++iter) {
    // Push contributions into per-worker accumulators, then merge — the
    // private-table pattern shared with the parallel histogram.
    const std::size_t block = (n + workers - 1) / workers;
    std::vector<double> dangling_per_worker(workers, 0.0);
    parallel_for(pool, 0, workers, [&](std::size_t w) {
      auto& mine = privates[w];
      std::fill(mine.begin(), mine.end(), 0.0);
      double dangling = 0.0;
      const std::size_t lo = w * block;
      const std::size_t hi = std::min(n, lo + block);
      // Race-checker claims: each worker scatters into its own private
      // accumulator (distinct base per w), reads its own block of `rank`,
      // and writes one distinct slot of the dangling sums.
      access_record(mine.data(), sizeof(double), 0, n, true,
                    "pagerank.private");
      access_record(rank.data(), sizeof(double), lo, hi, false,
                    "pagerank.rank");
      access_record(dangling_per_worker.data(), sizeof(double), w, w + 1,
                    true, "pagerank.dangling");
      for (std::size_t v = lo; v < hi; ++v) {
        const auto out = g.neighbours(static_cast<std::uint32_t>(v));
        if (out.empty()) {
          dangling += rank[v];
          continue;
        }
        const double share = rank[v] / static_cast<double>(out.size());
        for (std::uint32_t t : out) mine[t] += share;
      }
      dangling_per_worker[w] = dangling;
    });

    double dangling = 0.0;
    for (double v : dangling_per_worker) dangling += v;
    const double base = (1.0 - d) / dn;
    const double dangling_share = dangling / dn;

    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      double acc = 0.0;
      for (std::size_t w = 0; w < workers; ++w) acc += privates[w][v];
      next[v] = base + d * (acc + dangling_share);
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta < tolerance) break;
  }
  return rank;
}

}  // namespace pe::kernels
