#include "perfeng/kernels/matrix_market.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "perfeng/common/error.hpp"
#include "perfeng/common/fault_hook.hpp"

namespace pe::kernels {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// "mtx: <source>: line N: " prefix for diagnostics.
std::string where(std::string_view source, std::size_t line) {
  return "mtx: " + std::string(source) + ": line " + std::to_string(line) +
         ": ";
}

/// Line-counting getline so every error can name the offending line.
bool next_line(std::istream& in, std::string& line, std::size_t& lineno) {
  if (!std::getline(in, line)) return false;
  ++lineno;
  return true;
}

}  // namespace

CooMatrix read_matrix_market(std::istream& in, std::string_view source) {
  std::string line;
  std::size_t lineno = 0;
  if (!next_line(in, line, lineno))
    throw Error("mtx: " + std::string(source) + ": empty input");

  // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (lower(tag) != "%%matrixmarket")
    throw Error(where(source, lineno) + "missing %%MatrixMarket banner");
  if (lower(object) != "matrix" || lower(format) != "coordinate")
    throw Error(where(source, lineno) +
                "only 'matrix coordinate' is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern)
    throw Error(where(source, lineno) + "unsupported field '" + field + "'");
  const bool symmetric =
      symmetry == "symmetric" || symmetry == "skew-symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && symmetry != "general")
    throw Error(where(source, lineno) + "unsupported symmetry '" + symmetry +
                "'");

  // Skip comments, read the size line.
  std::size_t rows = 0, cols = 0, nnz = 0;
  for (;;) {
    if (!next_line(in, line, lineno))
      throw Error("mtx: " + std::string(source) + ": missing size line");
    if (line.empty() || line[0] == '%') continue;
    std::istringstream size_line(line);
    if (!(size_line >> rows >> cols >> nnz))
      throw Error(where(source, lineno) + "malformed size line '" + line +
                  "'");
    break;
  }
  if (rows < 1 || cols < 1)
    throw Error(where(source, lineno) + "empty matrix");

  CooMatrix coo;
  coo.rows = rows;
  coo.cols = cols;
  coo.entries.reserve(symmetric ? nnz * 2 : nnz);
  for (std::size_t e = 0; e < nnz; ++e) {
    if (!next_line(in, line, lineno))
      throw Error(where(source, lineno) + "truncated entry list (got " +
                  std::to_string(e) + " of " + std::to_string(nnz) +
                  " entries)");
    if (line.empty() || line[0] == '%') {
      --e;
      continue;
    }
    std::istringstream entry(line);
    std::size_t r = 0, c = 0;
    double v = 1.0;
    if (!(entry >> r >> c))
      throw Error(where(source, lineno) + "malformed entry '" + line + "'");
    if (!pattern && !(entry >> v))
      throw Error(where(source, lineno) + "missing value in '" + line + "'");
    if (r < 1 || r > rows || c < 1 || c > cols)
      throw Error(where(source, lineno) + "entry (" + std::to_string(r) +
                  ", " + std::to_string(c) + ") out of bounds for " +
                  std::to_string(rows) + "x" + std::to_string(cols));
    const auto row = static_cast<std::uint32_t>(r - 1);
    const auto col = static_cast<std::uint32_t>(c - 1);
    coo.entries.push_back({row, col, v});
    if (symmetric && row != col)
      coo.entries.push_back({col, row, skew ? -v : v});
  }
  coo.normalize();
  return coo;
}

CooMatrix parse_matrix_market(const std::string& text) {
  std::istringstream in(text);
  return read_matrix_market(in, "<string>");
}

CooMatrix read_matrix_market_file(const std::string& path) {
  fault_point(fault_sites::kIoMatrixMarket);
  std::ifstream in(path);
  if (!in) throw Error("mtx: cannot open '" + path + "'");
  return read_matrix_market(in, path);
}

std::string write_matrix_market(const CooMatrix& m) {
  std::ostringstream out;
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by perfeng\n";
  out << m.rows << " " << m.cols << " " << m.entries.size() << "\n";
  out.precision(17);
  for (const Triplet& t : m.entries)
    out << (t.row + 1) << " " << (t.col + 1) << " " << t.value << "\n";
  return out.str();
}

}  // namespace pe::kernels
