#include "perfeng/kernels/matrix_market.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "perfeng/common/error.hpp"

namespace pe::kernels {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CooMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw Error("mtx: empty input");

  // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (lower(tag) != "%%matrixmarket")
    throw Error("mtx: missing %%MatrixMarket banner");
  if (lower(object) != "matrix" || lower(format) != "coordinate")
    throw Error("mtx: only 'matrix coordinate' is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern)
    throw Error("mtx: unsupported field '" + field + "'");
  const bool symmetric = symmetry == "symmetric" || symmetry == "skew-symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && symmetry != "general")
    throw Error("mtx: unsupported symmetry '" + symmetry + "'");

  // Skip comments, read the size line.
  std::size_t rows = 0, cols = 0, nnz = 0;
  for (;;) {
    if (!std::getline(in, line)) throw Error("mtx: missing size line");
    if (line.empty() || line[0] == '%') continue;
    std::istringstream size_line(line);
    if (!(size_line >> rows >> cols >> nnz))
      throw Error("mtx: malformed size line");
    break;
  }
  PE_REQUIRE(rows >= 1 && cols >= 1, "mtx: empty matrix");

  CooMatrix coo;
  coo.rows = rows;
  coo.cols = cols;
  coo.entries.reserve(symmetric ? nnz * 2 : nnz);
  for (std::size_t e = 0; e < nnz; ++e) {
    if (!std::getline(in, line)) throw Error("mtx: truncated entry list");
    if (line.empty() || line[0] == '%') {
      --e;
      continue;
    }
    std::istringstream entry(line);
    std::size_t r = 0, c = 0;
    double v = 1.0;
    if (!(entry >> r >> c)) throw Error("mtx: malformed entry");
    if (!pattern && !(entry >> v)) throw Error("mtx: missing value");
    if (r < 1 || r > rows || c < 1 || c > cols)
      throw Error("mtx: entry out of bounds");
    const auto row = static_cast<std::uint32_t>(r - 1);
    const auto col = static_cast<std::uint32_t>(c - 1);
    coo.entries.push_back({row, col, v});
    if (symmetric && row != col)
      coo.entries.push_back({col, row, skew ? -v : v});
  }
  coo.normalize();
  return coo;
}

CooMatrix parse_matrix_market(const std::string& text) {
  std::istringstream in(text);
  return read_matrix_market(in);
}

CooMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("mtx: cannot open '" + path + "'");
  return read_matrix_market(in);
}

std::string write_matrix_market(const CooMatrix& m) {
  std::ostringstream out;
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by perfeng\n";
  out << m.rows << " " << m.cols << " " << m.entries.size() << "\n";
  out.precision(17);
  for (const Triplet& t : m.entries)
    out << (t.row + 1) << " " << (t.col + 1) << " " << t.value << "\n";
  return out.str();
}

}  // namespace pe::kernels
