#include "perfeng/kernels/matmul.hpp"

#include <algorithm>
#include <cmath>

#include "perfeng/common/access_hook.hpp"
#include "perfeng/common/aligned_buffer.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/machine/machine.hpp"
#include "perfeng/parallel/parallel_for.hpp"
#include "perfeng/simd/vec.hpp"

namespace pe::kernels {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  PE_REQUIRE(rows >= 1 && cols >= 1, "matrix must be non-empty");
}

void Matrix::randomize(Rng& rng) {
  for (double& v : data_) v = rng.next_range_double(-1.0, 1.0);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  PE_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
             "shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

namespace {

void check_shapes(const Matrix& a, const Matrix& b, const Matrix& c) {
  PE_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  PE_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
             "output shape mismatch");
}

}  // namespace

void matmul_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  check_shapes(a, b, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a(i, kk) * b(kk, j);
      c(i, j) = acc;
    }
  }
}

void matmul_interchanged(const Matrix& a, const Matrix& b, Matrix& c) {
  check_shapes(a, b, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) c(i, j) = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = a(i, kk);
      for (std::size_t j = 0; j < n; ++j) c(i, j) += aik * b(kk, j);
    }
  }
}

void matmul_tiled(const Matrix& a, const Matrix& b, Matrix& c,
                  std::size_t tile) {
  check_shapes(a, b, c);
  PE_REQUIRE(tile >= 1, "tile must be positive");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) c(i, j) = 0.0;

  for (std::size_t i0 = 0; i0 < m; i0 += tile) {
    const std::size_t i1 = std::min(m, i0 + tile);
    for (std::size_t k0 = 0; k0 < k; k0 += tile) {
      const std::size_t k1 = std::min(k, k0 + tile);
      for (std::size_t j0 = 0; j0 < n; j0 += tile) {
        const std::size_t j1 = std::min(n, j0 + tile);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const double aik = a(i, kk);
            for (std::size_t j = j0; j < j1; ++j) c(i, j) += aik * b(kk, j);
          }
        }
      }
    }
  }
}

void matmul_parallel(const Matrix& a, const Matrix& b, Matrix& c,
                     ThreadPool& pool, std::size_t tile) {
  check_shapes(a, b, c);
  PE_REQUIRE(tile >= 1, "tile must be positive");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const std::size_t row_blocks = (m + tile - 1) / tile;

  parallel_for(pool, 0, row_blocks, [&](std::size_t block) {
    const std::size_t i0 = block * tile;
    const std::size_t i1 = std::min(m, i0 + tile);
    for (std::size_t i = i0; i < i1; ++i)
      for (std::size_t j = 0; j < n; ++j) c(i, j) = 0.0;
    for (std::size_t k0 = 0; k0 < k; k0 += tile) {
      const std::size_t k1 = std::min(k, k0 + tile);
      for (std::size_t j0 = 0; j0 < n; j0 += tile) {
        const std::size_t j1 = std::min(n, j0 + tile);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const double aik = a(i, kk);
            for (std::size_t j = j0; j < j1; ++j) c(i, j) += aik * b(kk, j);
          }
        }
      }
    }
  });
}

namespace {

// Register tile of the packed microkernel: a 4x8 block of C accumulators
// stays resident in registers across the whole kc-deep update.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;

/// Pack a kcb-deep strip of up to kNr columns of B (starting at j0) into
/// k-major contiguous layout, zero-padding missing columns so the
/// microkernel never branches on the edge.
void pack_b_strip(const Matrix& b, std::size_t k0, std::size_t kcb,
                  std::size_t j0, std::size_t width, double* dst) {
  for (std::size_t kk = 0; kk < kcb; ++kk) {
    const double* row = b.data() + (k0 + kk) * b.cols() + j0;
    std::size_t j = 0;
    for (; j < width; ++j) dst[kk * kNr + j] = row[j];
    for (; j < kNr; ++j) dst[kk * kNr + j] = 0.0;
  }
}

/// Pack a kcb-deep strip of up to kMr rows of A (starting at i0) into
/// k-major contiguous layout, zero-padding missing rows.
void pack_a_strip(const Matrix& a, std::size_t i0, std::size_t height,
                  std::size_t k0, std::size_t kcb, double* dst) {
  for (std::size_t kk = 0; kk < kcb; ++kk)
    for (std::size_t r = 0; r < kMr; ++r)
      dst[kk * kMr + r] = r < height ? a(i0 + r, k0 + kk) : 0.0;
}

/// C[0..rows)[0..cols) += packed-A-strip * packed-B-strip. The accumulator
/// block covers the full kMr x kNr register tile (padding contributes
/// zeros); only the writeback is guarded for edge tiles.
///
/// Each C row is two VecD accumulators (kNr = 2 * VecD::lanes) updated by
/// mul_add — fused to one rounding per update on the AVX2+FMA backend,
/// which is why the packed path promises a small ULP envelope against the
/// scalar references rather than bit-equality (see docs/simd.md).
void microkernel(const double* ap, const double* bp, std::size_t kcb,
                 double* c, std::size_t ldc, std::size_t rows,
                 std::size_t cols) {
  using simd::VecD;
  static_assert(kNr == 2 * VecD::lanes,
                "register tile is two native double vectors wide");
  VecD acc_lo[kMr], acc_hi[kMr];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc_lo[r] = VecD::zero();
    acc_hi[r] = VecD::zero();
  }
  for (std::size_t kk = 0; kk < kcb; ++kk) {
    const double* arow = ap + kk * kMr;
    const VecD b_lo = VecD::load(bp + kk * kNr);
    const VecD b_hi = VecD::load(bp + kk * kNr + VecD::lanes);
    for (std::size_t r = 0; r < kMr; ++r) {
      const VecD av = VecD::broadcast(arow[r]);
      acc_lo[r] = av.mul_add(b_lo, acc_lo[r]);
      acc_hi[r] = av.mul_add(b_hi, acc_hi[r]);
    }
  }
  if (rows == kMr && cols == kNr) {
    for (std::size_t r = 0; r < kMr; ++r) {
      double* crow = c + r * ldc;
      (VecD::load(crow) + acc_lo[r]).store(crow);
      (VecD::load(crow + VecD::lanes) + acc_hi[r]).store(crow + VecD::lanes);
    }
  } else {
    double acc[kMr][kNr];
    for (std::size_t r = 0; r < kMr; ++r) {
      acc_lo[r].store(&acc[r][0]);
      acc_hi[r].store(&acc[r][VecD::lanes]);
    }
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t j = 0; j < cols; ++j) c[r * ldc + j] += acc[r][j];
  }
}

std::size_t round_down_to(std::size_t v, std::size_t unit,
                          std::size_t floor_v) {
  return std::max(v - v % unit, floor_v);
}

}  // namespace

MatmulBlocking MatmulBlocking::from_machine(const machine::Machine& m) {
  MatmulBlocking blk;
  const auto& levels = m.hierarchy;
  const std::size_t cache_levels =
      levels.size() > 1 ? levels.size() - 1 : 0;
  // kc: one kMr x kc A strip plus one kc x kNr B strip resident in the
  // fastest level while the microkernel streams them.
  if (cache_levels >= 1 && levels[0].capacity > 0)
    blk.kc = std::clamp<std::size_t>(
        levels[0].capacity / ((kMr + kNr) * sizeof(double)), 64, 1024);
  // mc: the packed mc x kc A panel should occupy about half of the next
  // level so B strips and C rows fit beside it.
  if (cache_levels >= 2 && levels[1].capacity > 0)
    blk.mc = round_down_to(
        std::clamp<std::size_t>(
            levels[1].capacity / (2 * blk.kc * sizeof(double)), kMr, 2048),
        kMr, kMr);
  // nc: the shared kc x nc B panel should occupy about half of the
  // largest cache (largest_cache_bytes falls back to 2 MiB).
  blk.nc = round_down_to(
      std::clamp<std::size_t>(
          m.largest_cache_bytes() / (2 * blk.kc * sizeof(double)), kNr,
          8192),
      kNr, kNr);
  return blk;
}

void matmul_parallel_packed(const Matrix& a, const Matrix& b, Matrix& c,
                            ThreadPool& pool,
                            const MatmulBlocking& blocking) {
  check_shapes(a, b, c);
  PE_REQUIRE(blocking.mc >= 1 && blocking.kc >= 1 && blocking.nc >= 1,
             "blocking parameters must be positive");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  // Clamp panels to the problem and round to whole register tiles.
  const std::size_t mc =
      std::min(round_down_to(blocking.mc, kMr, kMr),
               (m + kMr - 1) / kMr * kMr);
  const std::size_t kc = std::min(blocking.kc, k);
  const std::size_t nc =
      std::min(round_down_to(blocking.nc, kNr, kNr),
               (n + kNr - 1) / kNr * kNr);

  const std::size_t lanes = pool.size() + 1;
  const std::size_t a_panel_elems = mc * kc;
  AlignedBuffer<double> a_pack(lanes * a_panel_elems);
  AlignedBuffer<double> b_pack(nc * kc);

  parallel_for_chunks(
      pool, 0, m,
      [&](std::size_t lo, std::size_t hi, std::size_t /*lane*/) {
        access_record(c.data(), sizeof(double), lo * n, hi * n, true,
                      "matmul.c");
        std::fill(c.data() + lo * n, c.data() + hi * n, 0.0);
      });

  for (std::size_t jc = 0; jc < n; jc += nc) {
    const std::size_t ncb = std::min(nc, n - jc);
    const std::size_t b_strips = (ncb + kNr - 1) / kNr;
    for (std::size_t pc = 0; pc < k; pc += kc) {
      const std::size_t kcb = std::min(kc, k - pc);
      // Pack the shared kcb x ncb panel of B once; all lanes reuse it.
      parallel_for(
          pool, 0, b_strips,
          [&](std::size_t s) {
            const std::size_t j0 = jc + s * kNr;
            access_record(b_pack.data(), sizeof(double), s * kNr * kcb,
                          (s + 1) * kNr * kcb, true, "matmul.b_pack");
            pack_b_strip(b, pc, kcb, j0, std::min(kNr, n - j0),
                         b_pack.data() + s * kNr * kcb);
          },
          Schedule::kDynamic, 8);
      // Row panels in parallel; each lane packs A into its own slot.
      const std::size_t ic_blocks = (m + mc - 1) / mc;
      parallel_for_chunks(
          pool, 0, ic_blocks,
          [&](std::size_t lo, std::size_t hi, std::size_t lane) {
            // a_pack is lane-indexed private scratch — partitioned by
            // lane, not by chunk — so it is deliberately not recorded
            // (see the AccessChecker model in docs/analysis.md).
            double* apack = a_pack.data() + lane * a_panel_elems;
            access_record(b_pack.data(), sizeof(double), 0,
                          b_strips * kNr * kcb, false, "matmul.b_pack");
            for (std::size_t blk = lo; blk < hi; ++blk) {
              const std::size_t i0 = blk * mc;
              const std::size_t mcb = std::min(mc, m - i0);
              access_record(c.data(), sizeof(double), i0 * n,
                            (i0 + mcb) * n, true, "matmul.c");
              const std::size_t a_strips = (mcb + kMr - 1) / kMr;
              for (std::size_t t = 0; t < a_strips; ++t)
                pack_a_strip(a, i0 + t * kMr,
                             std::min(kMr, mcb - t * kMr), pc, kcb,
                             apack + t * kMr * kcb);
              for (std::size_t s = 0; s < b_strips; ++s) {
                const std::size_t j0 = jc + s * kNr;
                const double* bp = b_pack.data() + s * kNr * kcb;
                for (std::size_t t = 0; t < a_strips; ++t)
                  microkernel(apack + t * kMr * kcb, bp, kcb,
                              c.data() + (i0 + t * kMr) * n + j0, n,
                              std::min(kMr, mcb - t * kMr),
                              std::min(kNr, n - j0));
              }
            }
          },
          Schedule::kDynamic, 1);
    }
  }
}

double matmul_flops(std::size_t m, std::size_t k, std::size_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

double matmul_min_bytes(std::size_t m, std::size_t k, std::size_t n) {
  const double a = static_cast<double>(m) * static_cast<double>(k);
  const double b = static_cast<double>(k) * static_cast<double>(n);
  const double c = static_cast<double>(m) * static_cast<double>(n);
  return (a + b + 2.0 * c) * sizeof(double);  // C read+written
}

}  // namespace pe::kernels
