#include "perfeng/kernels/matmul.hpp"

#include <algorithm>
#include <cmath>

#include "perfeng/common/error.hpp"
#include "perfeng/parallel/parallel_for.hpp"

namespace pe::kernels {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  PE_REQUIRE(rows >= 1 && cols >= 1, "matrix must be non-empty");
}

void Matrix::randomize(Rng& rng) {
  for (double& v : data_) v = rng.next_range_double(-1.0, 1.0);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  PE_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
             "shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

namespace {

void check_shapes(const Matrix& a, const Matrix& b, const Matrix& c) {
  PE_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  PE_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
             "output shape mismatch");
}

}  // namespace

void matmul_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  check_shapes(a, b, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a(i, kk) * b(kk, j);
      c(i, j) = acc;
    }
  }
}

void matmul_interchanged(const Matrix& a, const Matrix& b, Matrix& c) {
  check_shapes(a, b, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) c(i, j) = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = a(i, kk);
      for (std::size_t j = 0; j < n; ++j) c(i, j) += aik * b(kk, j);
    }
  }
}

void matmul_tiled(const Matrix& a, const Matrix& b, Matrix& c,
                  std::size_t tile) {
  check_shapes(a, b, c);
  PE_REQUIRE(tile >= 1, "tile must be positive");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) c(i, j) = 0.0;

  for (std::size_t i0 = 0; i0 < m; i0 += tile) {
    const std::size_t i1 = std::min(m, i0 + tile);
    for (std::size_t k0 = 0; k0 < k; k0 += tile) {
      const std::size_t k1 = std::min(k, k0 + tile);
      for (std::size_t j0 = 0; j0 < n; j0 += tile) {
        const std::size_t j1 = std::min(n, j0 + tile);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const double aik = a(i, kk);
            for (std::size_t j = j0; j < j1; ++j) c(i, j) += aik * b(kk, j);
          }
        }
      }
    }
  }
}

void matmul_parallel(const Matrix& a, const Matrix& b, Matrix& c,
                     ThreadPool& pool, std::size_t tile) {
  check_shapes(a, b, c);
  PE_REQUIRE(tile >= 1, "tile must be positive");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const std::size_t row_blocks = (m + tile - 1) / tile;

  parallel_for(pool, 0, row_blocks, [&](std::size_t block) {
    const std::size_t i0 = block * tile;
    const std::size_t i1 = std::min(m, i0 + tile);
    for (std::size_t i = i0; i < i1; ++i)
      for (std::size_t j = 0; j < n; ++j) c(i, j) = 0.0;
    for (std::size_t k0 = 0; k0 < k; k0 += tile) {
      const std::size_t k1 = std::min(k, k0 + tile);
      for (std::size_t j0 = 0; j0 < n; j0 += tile) {
        const std::size_t j1 = std::min(n, j0 + tile);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const double aik = a(i, kk);
            for (std::size_t j = j0; j < j1; ++j) c(i, j) += aik * b(kk, j);
          }
        }
      }
    }
  });
}

double matmul_flops(std::size_t m, std::size_t k, std::size_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

double matmul_min_bytes(std::size_t m, std::size_t k, std::size_t n) {
  const double a = static_cast<double>(m) * static_cast<double>(k);
  const double b = static_cast<double>(k) * static_cast<double>(n);
  const double c = static_cast<double>(m) * static_cast<double>(n);
  return (a + b + 2.0 * c) * sizeof(double);  // C read+written
}

}  // namespace pe::kernels
