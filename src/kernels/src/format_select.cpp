#include "perfeng/kernels/format_select.hpp"

#include <cmath>

#include "perfeng/common/error.hpp"
#include "perfeng/statmodel/dataset.hpp"

namespace pe::kernels {

std::string spmv_format_name(SpmvFormat f) {
  switch (f) {
    case SpmvFormat::kCsr: return "csr";
    case SpmvFormat::kCsc: return "csc";
    case SpmvFormat::kCoo: return "coo";
    case SpmvFormat::kEll: return "ell";
    case SpmvFormat::kSell: return "sell";
  }
  return "?";
}

FormatFeatures FormatFeatures::from_csr(const CsrMatrix& m) {
  FormatFeatures f;
  f.rows = static_cast<double>(m.rows);
  f.cols = static_cast<double>(m.cols);
  f.nnz = static_cast<double>(m.nnz());

  double deg_sum = 0.0, deg_sq = 0.0, deg_max = 0.0, band = 0.0;
  for (std::size_t r = 0; r < m.rows; ++r) {
    const double deg = static_cast<double>(m.row_ptr[r + 1] - m.row_ptr[r]);
    deg_sum += deg;
    deg_sq += deg * deg;
    deg_max = std::max(deg_max, deg);
    for (std::uint32_t i = m.row_ptr[r]; i < m.row_ptr[r + 1]; ++i)
      band = std::max(band, std::abs(static_cast<double>(m.col_idx[i]) -
                                     static_cast<double>(r)));
  }
  f.mean_deg = f.rows > 0.0 ? deg_sum / f.rows : 0.0;
  const double var =
      f.rows > 0.0 ? std::max(0.0, deg_sq / f.rows - f.mean_deg * f.mean_deg)
                   : 0.0;
  f.deg_cv = f.mean_deg > 0.0 ? std::sqrt(var) / f.mean_deg : 0.0;
  f.deg_max = deg_max;
  f.bandwidth = band;
  f.ell_padding = f.nnz > 0.0 ? f.rows * deg_max / f.nnz : 1.0;
  return f;
}

std::vector<double> FormatFeatures::as_vector() const {
  return {rows,    cols,      nnz, mean_deg, deg_cv,
          deg_max, bandwidth, ell_padding};
}

std::vector<std::string> FormatFeatures::names() {
  return {"rows",    "cols",      "nnz",        "mean_deg", "deg_cv",
          "deg_max", "bandwidth", "ell_padding"};
}

FormatSelector FormatSelector::train(
    const std::vector<FormatSample>& samples) {
  PE_REQUIRE(!samples.empty(), "cannot train a selector on zero samples");
  FormatSelector sel;
  for (std::size_t fi = 0; fi < kNumSpmvFormats; ++fi) {
    statmodel::Dataset data(FormatFeatures::names());
    for (const FormatSample& s : samples) {
      PE_REQUIRE(s.seconds[fi] > 0.0,
                 "training sample has non-positive runtime");
      data.add_row(s.features.as_vector(), std::log(s.seconds[fi]));
    }
    sel.models_[fi].fit(data);
  }
  sel.trained_ = true;
  return sel;
}

SpmvFormat FormatSelector::choose(const FormatFeatures& f) const {
  PE_REQUIRE(trained_, "selector is not trained");
  SpmvFormat best = SpmvFormat::kCsr;
  double best_log = 0.0;
  bool first = true;
  const std::vector<double> x = f.as_vector();
  for (std::size_t fi = 0; fi < kNumSpmvFormats; ++fi) {
    const double pred = models_[fi].predict(x);
    if (first || pred < best_log) {
      best = kAllSpmvFormats[fi];
      best_log = pred;
      first = false;
    }
  }
  return best;
}

double FormatSelector::predict_seconds(const FormatFeatures& f,
                                       SpmvFormat format) const {
  PE_REQUIRE(trained_, "selector is not trained");
  return std::exp(
      models_[static_cast<std::size_t>(format)].predict(f.as_vector()));
}

}  // namespace pe::kernels
