#include "perfeng/kernels/stencil.hpp"

#include <algorithm>
#include <cmath>

#include "perfeng/common/access_hook.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/parallel/parallel_for.hpp"

namespace pe::kernels {

Grid2D::Grid2D(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  PE_REQUIRE(rows >= 3 && cols >= 3, "grid needs an interior");
}

double Grid2D::max_abs_diff(const Grid2D& other) const {
  PE_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

namespace {

void check_shapes(const Grid2D& in, Grid2D& out) {
  PE_REQUIRE(in.rows() == out.rows() && in.cols() == out.cols(),
             "shape mismatch");
}

void copy_boundary(const Grid2D& in, Grid2D& out) {
  const std::size_t rows = in.rows(), cols = in.cols();
  for (std::size_t c = 0; c < cols; ++c) {
    out.at(0, c) = in.at(0, c);
    out.at(rows - 1, c) = in.at(rows - 1, c);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    out.at(r, 0) = in.at(r, 0);
    out.at(r, cols - 1) = in.at(r, cols - 1);
  }
}

inline double relax(const Grid2D& in, std::size_t r, std::size_t c) {
  return 0.2 * (in.at(r, c) + in.at(r - 1, c) + in.at(r + 1, c) +
                in.at(r, c - 1) + in.at(r, c + 1));
}

}  // namespace

void stencil_step_naive(const Grid2D& in, Grid2D& out) {
  check_shapes(in, out);
  copy_boundary(in, out);
  for (std::size_t r = 1; r + 1 < in.rows(); ++r)
    for (std::size_t c = 1; c + 1 < in.cols(); ++c)
      out.at(r, c) = relax(in, r, c);
}

void stencil_step_blocked(const Grid2D& in, Grid2D& out, std::size_t block) {
  check_shapes(in, out);
  PE_REQUIRE(block >= 1, "block must be positive");
  copy_boundary(in, out);
  const std::size_t rows = in.rows(), cols = in.cols();
  for (std::size_t r0 = 1; r0 + 1 < rows; r0 += block) {
    const std::size_t r1 = std::min(rows - 1, r0 + block);
    for (std::size_t c0 = 1; c0 + 1 < cols; c0 += block) {
      const std::size_t c1 = std::min(cols - 1, c0 + block);
      for (std::size_t r = r0; r < r1; ++r)
        for (std::size_t c = c0; c < c1; ++c) out.at(r, c) = relax(in, r, c);
    }
  }
}

void stencil_step_parallel(const Grid2D& in, Grid2D& out, ThreadPool& pool) {
  check_shapes(in, out);
  copy_boundary(in, out);
  const std::size_t cols = in.cols();
  parallel_for_chunks(
      pool, 1, in.rows() - 1,
      [&](std::size_t lo, std::size_t hi, std::size_t /*lane*/) {
        // Row-range claims for the race checker: each chunk reads its rows
        // plus the one-row halo above and below, and writes only its own
        // rows — write claims are disjoint across chunks by construction.
        access_record(in.data().data(), sizeof(double), (lo - 1) * cols,
                      (hi + 1) * cols, false, "stencil.in");
        access_record(out.data().data(), sizeof(double), lo * cols,
                      hi * cols, true, "stencil.out");
        for (std::size_t r = lo; r < hi; ++r)
          for (std::size_t c = 1; c + 1 < cols; ++c)
            out.at(r, c) = relax(in, r, c);
      });
}

Grid2D stencil_run(Grid2D initial, int steps,
                   const std::function<void(const Grid2D&, Grid2D&)>& step) {
  PE_REQUIRE(steps >= 0, "negative step count");
  PE_REQUIRE(static_cast<bool>(step), "null step function");
  Grid2D other(initial.rows(), initial.cols());
  Grid2D* src = &initial;
  Grid2D* dst = &other;
  for (int s = 0; s < steps; ++s) {
    step(*src, *dst);
    std::swap(src, dst);
  }
  return *src;
}

double stencil_residual(const Grid2D& a, const Grid2D& b) {
  PE_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  double acc = 0.0;
  for (std::size_t r = 1; r + 1 < a.rows(); ++r)
    for (std::size_t c = 1; c + 1 < a.cols(); ++c) {
      const double d = a.at(r, c) - b.at(r, c);
      acc += d * d;
    }
  return std::sqrt(acc);
}

double stencil_flops(std::size_t rows, std::size_t cols) {
  PE_REQUIRE(rows >= 3 && cols >= 3, "grid needs an interior");
  return 5.0 * static_cast<double>(rows - 2) * static_cast<double>(cols - 2);
}

}  // namespace pe::kernels
