#include "perfeng/kernels/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "perfeng/common/access_hook.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/parallel/parallel_for.hpp"
#include "perfeng/simd/vec.hpp"

namespace pe::kernels {

static_assert(kSellChunk == simd::kDoubleLanes,
              "SELL chunk height must equal the native double lane count");

void CooMatrix::normalize() {
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  std::vector<Triplet> merged;
  merged.reserve(entries.size());
  for (const Triplet& t : entries) {
    if (!merged.empty() && merged.back().row == t.row &&
        merged.back().col == t.col) {
      merged.back().value += t.value;
    } else {
      merged.push_back(t);
    }
  }
  entries = std::move(merged);
}

CsrMatrix coo_to_csr(const CooMatrix& coo) {
  PE_REQUIRE(coo.rows >= 1 && coo.cols >= 1, "matrix must be non-empty");
  CooMatrix sorted = coo;
  sorted.normalize();

  CsrMatrix csr;
  csr.rows = coo.rows;
  csr.cols = coo.cols;
  csr.row_ptr.assign(coo.rows + 1, 0);
  csr.col_idx.reserve(sorted.entries.size());
  csr.values.reserve(sorted.entries.size());
  for (const Triplet& t : sorted.entries) {
    PE_REQUIRE(t.row < coo.rows && t.col < coo.cols, "entry out of bounds");
    ++csr.row_ptr[t.row + 1];
    csr.col_idx.push_back(t.col);
    csr.values.push_back(t.value);
  }
  for (std::size_t r = 0; r < coo.rows; ++r)
    csr.row_ptr[r + 1] += csr.row_ptr[r];
  return csr;
}

CscMatrix coo_to_csc(const CooMatrix& coo) {
  PE_REQUIRE(coo.rows >= 1 && coo.cols >= 1, "matrix must be non-empty");
  CooMatrix sorted = coo;
  sorted.normalize();
  // Re-sort column-major.
  std::sort(sorted.entries.begin(), sorted.entries.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.col != b.col) return a.col < b.col;
              return a.row < b.row;
            });

  CscMatrix csc;
  csc.rows = coo.rows;
  csc.cols = coo.cols;
  csc.col_ptr.assign(coo.cols + 1, 0);
  csc.row_idx.reserve(sorted.entries.size());
  csc.values.reserve(sorted.entries.size());
  for (const Triplet& t : sorted.entries) {
    PE_REQUIRE(t.row < coo.rows && t.col < coo.cols, "entry out of bounds");
    ++csc.col_ptr[t.col + 1];
    csc.row_idx.push_back(t.row);
    csc.values.push_back(t.value);
  }
  for (std::size_t c = 0; c < coo.cols; ++c)
    csc.col_ptr[c + 1] += csc.col_ptr[c];
  return csc;
}

CooMatrix csr_to_coo(const CsrMatrix& csr) {
  CooMatrix coo;
  coo.rows = csr.rows;
  coo.cols = csr.cols;
  coo.entries.reserve(csr.nnz());
  for (std::size_t r = 0; r < csr.rows; ++r) {
    for (std::uint32_t i = csr.row_ptr[r]; i < csr.row_ptr[r + 1]; ++i) {
      coo.entries.push_back({static_cast<std::uint32_t>(r), csr.col_idx[i],
                             csr.values[i]});
    }
  }
  return coo;
}

std::size_t EllMatrix::nnz() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] != 0.0) ++count;
  return count;
}

double EllMatrix::padding_ratio() const {
  const std::size_t useful = nnz();
  return useful == 0 ? 0.0
                     : static_cast<double>(rows * width) /
                           static_cast<double>(useful);
}

EllMatrix csr_to_ell(const CsrMatrix& csr) {
  EllMatrix ell;
  ell.rows = csr.rows;
  ell.cols = csr.cols;
  for (std::size_t r = 0; r < csr.rows; ++r) {
    ell.width = std::max<std::size_t>(
        ell.width, csr.row_ptr[r + 1] - csr.row_ptr[r]);
  }
  ell.width = std::max<std::size_t>(ell.width, 1);
  ell.col_idx.assign(csr.rows * ell.width, 0);
  ell.values.assign(csr.rows * ell.width, 0.0);
  for (std::size_t r = 0; r < csr.rows; ++r) {
    std::size_t slot = 0;
    for (std::uint32_t i = csr.row_ptr[r]; i < csr.row_ptr[r + 1];
         ++i, ++slot) {
      ell.col_idx[r * ell.width + slot] = csr.col_idx[i];
      ell.values[r * ell.width + slot] = csr.values[i];
    }
  }
  return ell;
}

std::size_t SellMatrix::nnz() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] != 0.0) ++count;
  return count;
}

double SellMatrix::padding_ratio() const {
  const std::size_t useful = nnz();
  return useful == 0 ? 0.0
                     : static_cast<double>(values.size()) /
                           static_cast<double>(useful);
}

SellMatrix csr_to_sell(const CsrMatrix& csr, std::size_t sigma) {
  PE_REQUIRE(sigma == 1 || (sigma > 0 && sigma % kSellChunk == 0),
             "sigma must be 1 or a positive multiple of the chunk height");
  constexpr std::size_t c = kSellChunk;
  SellMatrix sell;
  sell.rows = csr.rows;
  sell.cols = csr.cols;
  sell.sigma = sigma;

  const std::size_t n_chunks = (csr.rows + c - 1) / c;
  const std::size_t padded_rows = n_chunks * c;

  // Permutation: within each sigma-window, stable-sort rows by descending
  // degree so a chunk's rows have similar width and padding stays small.
  sell.row_ids.resize(padded_rows);
  for (std::size_t r = 0; r < padded_rows; ++r)
    sell.row_ids[r] = r < csr.rows ? static_cast<std::uint32_t>(r)
                                   : SellMatrix::kSellPadRow;
  auto degree = [&csr](std::uint32_t r) {
    return csr.row_ptr[r + 1] - csr.row_ptr[r];
  };
  for (std::size_t w0 = 0; w0 < csr.rows; w0 += sigma) {
    const std::size_t w1 = std::min(csr.rows, w0 + sigma);
    std::stable_sort(sell.row_ids.begin() + static_cast<std::ptrdiff_t>(w0),
                     sell.row_ids.begin() + static_cast<std::ptrdiff_t>(w1),
                     [&degree](std::uint32_t a, std::uint32_t b) {
                       return degree(a) > degree(b);
                     });
  }

  // Chunk widths -> element offsets (slot-major: width * c elements).
  sell.chunk_ptr.assign(n_chunks + 1, 0);
  for (std::size_t ch = 0; ch < n_chunks; ++ch) {
    std::size_t width = 0;
    for (std::size_t l = 0; l < c; ++l) {
      const std::uint32_t r = sell.row_ids[ch * c + l];
      if (r != SellMatrix::kSellPadRow)
        width = std::max<std::size_t>(width, degree(r));
    }
    sell.chunk_ptr[ch + 1] =
        sell.chunk_ptr[ch] + static_cast<std::uint32_t>(width * c);
  }

  sell.col_idx.assign(sell.chunk_ptr[n_chunks], 0);
  sell.values.assign(sell.chunk_ptr[n_chunks], 0.0);
  for (std::size_t ch = 0; ch < n_chunks; ++ch) {
    const std::size_t base = sell.chunk_ptr[ch];
    for (std::size_t l = 0; l < c; ++l) {
      const std::uint32_t r = sell.row_ids[ch * c + l];
      if (r == SellMatrix::kSellPadRow) continue;
      std::size_t slot = 0;
      for (std::uint32_t i = csr.row_ptr[r]; i < csr.row_ptr[r + 1];
           ++i, ++slot) {
        sell.col_idx[base + slot * c + l] = csr.col_idx[i];
        sell.values[base + slot * c + l] = csr.values[i];
      }
    }
  }
  return sell;
}

namespace {

/// Shared body of the serial and chunk-parallel SELL SpMV: process one
/// chunk. Lane l walks original row row_ids[chunk*C + l] in CSR order;
/// the accumulate is deliberately *unfused* (acc + v * xv, two roundings)
/// so each lane reproduces spmv_csr's scalar arithmetic exactly.
void sell_chunk_spmv(const SellMatrix& a, const std::vector<double>& x,
                     std::vector<double>& y, std::size_t chunk) {
  using simd::VecD;
  constexpr std::size_t c = kSellChunk;
  const std::size_t base = a.chunk_ptr[chunk];
  const std::size_t width = (a.chunk_ptr[chunk + 1] - base) / c;
  VecD acc = VecD::zero();
  double xg[c];
  for (std::size_t slot = 0; slot < width; ++slot) {
    const std::size_t off = base + slot * c;
    for (std::size_t l = 0; l < c; ++l) xg[l] = x[a.col_idx[off + l]];
    acc = acc + VecD::load(a.values.data() + off) * VecD::load(xg);
  }
  double out[c];
  acc.store(out);
  for (std::size_t l = 0; l < c; ++l) {
    const std::uint32_t r = a.row_ids[chunk * c + l];
    if (r != SellMatrix::kSellPadRow) y[r] = out[l];
  }
}

}  // namespace

void spmv_sell(const SellMatrix& a, const std::vector<double>& x,
               std::vector<double>& y) {
  PE_REQUIRE(x.size() == a.cols, "x size mismatch");
  PE_REQUIRE(y.size() == a.rows, "y size mismatch");
  for (std::size_t ch = 0; ch < a.chunks(); ++ch)
    sell_chunk_spmv(a, x, y, ch);
}

void spmv_sell_parallel(const SellMatrix& a, const std::vector<double>& x,
                        std::vector<double>& y, ThreadPool& pool) {
  PE_REQUIRE(x.size() == a.cols, "x size mismatch");
  PE_REQUIRE(y.size() == a.rows, "y size mismatch");
  constexpr std::size_t c = kSellChunk;
  parallel_for(
      pool, 0, a.chunks(),
      [&](std::size_t ch) {
        // Each lane's target row is recorded individually: the sigma
        // permutation scatters a chunk's rows, so there is no contiguous
        // range to report.
        for (std::size_t l = 0; l < c; ++l) {
          const std::uint32_t r = a.row_ids[ch * c + l];
          if (r != SellMatrix::kSellPadRow)
            access_record(y.data(), sizeof(double), r, r + 1, true,
                          "spmv.y");
        }
        sell_chunk_spmv(a, x, y, ch);
      },
      Schedule::kDynamic, 64);
}

void spmv_ell_parallel(const EllMatrix& a, const std::vector<double>& x,
                       std::vector<double>& y, ThreadPool& pool) {
  PE_REQUIRE(x.size() == a.cols, "x size mismatch");
  PE_REQUIRE(y.size() == a.rows, "y size mismatch");
  parallel_for(
      pool, 0, a.rows,
      [&](std::size_t r) {
        double acc = 0.0;
        for (std::size_t slot = 0; slot < a.width; ++slot)
          acc +=
              a.values[r * a.width + slot] * x[a.col_idx[r * a.width + slot]];
        access_record(y.data(), sizeof(double), r, r + 1, true, "spmv.y");
        y[r] = acc;
      },
      Schedule::kDynamic, 256);
}

void spmv_coo_parallel(const CooMatrix& a, const std::vector<double>& x,
                       std::vector<double>& y, ThreadPool& pool) {
  PE_REQUIRE(x.size() == a.cols, "x size mismatch");
  PE_REQUIRE(y.size() == a.rows, "y size mismatch");
  for (std::size_t e = 1; e < a.entries.size(); ++e)
    PE_REQUIRE(a.entries[e - 1].row <= a.entries[e].row,
               "spmv_coo_parallel requires row-sorted entries "
               "(call normalize() first)");

  const std::size_t nnz = a.entries.size();
  const std::size_t parts =
      std::min<std::size_t>(pool.size() + 1, std::max<std::size_t>(1, nnz));
  // Entry-balanced boundaries, then advanced to the next row change so no
  // row straddles two parts — each part owns a disjoint slice of y.
  std::vector<std::size_t> bounds(parts + 1, nnz);
  bounds[0] = 0;
  for (std::size_t p = 1; p < parts; ++p) {
    std::size_t e = std::max(bounds[p - 1], nnz * p / parts);
    while (e < nnz && e > 0 && a.entries[e - 1].row == a.entries[e].row)
      ++e;
    bounds[p] = e;
  }

  parallel_for(
      pool, 0, parts,
      [&](std::size_t p) {
        const std::size_t lo = bounds[p], hi = bounds[p + 1];
        // Zero this part's row slice: rows between parts' slices (fully
        // empty rows) are zeroed by whichever neighbour's slice covers
        // them below.
        const std::size_t row_lo =
            p == 0 ? 0 : (lo < nnz ? a.entries[lo].row : a.rows);
        const std::size_t row_hi =
            p + 1 == parts ? a.rows
                           : (hi < nnz ? a.entries[hi].row : a.rows);
        if (row_lo < row_hi) {
          access_record(y.data(), sizeof(double), row_lo, row_hi, true,
                        "spmv.y");
          std::fill(y.begin() + static_cast<std::ptrdiff_t>(row_lo),
                    y.begin() + static_cast<std::ptrdiff_t>(row_hi), 0.0);
          for (std::size_t e = lo; e < hi; ++e) {
            const Triplet& t = a.entries[e];
            y[t.row] += t.value * x[t.col];
          }
        }
      },
      Schedule::kStatic);
}

void spmv_ell(const EllMatrix& a, const std::vector<double>& x,
              std::vector<double>& y) {
  PE_REQUIRE(x.size() == a.cols, "x size mismatch");
  PE_REQUIRE(y.size() == a.rows, "y size mismatch");
  for (std::size_t r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (std::size_t slot = 0; slot < a.width; ++slot) {
      // Padding has value 0.0, so it contributes nothing; the regular
      // iteration count is exactly what makes ELL vectorizable.
      acc += a.values[r * a.width + slot] * x[a.col_idx[r * a.width + slot]];
    }
    y[r] = acc;
  }
}

void spmv_coo(const CooMatrix& a, const std::vector<double>& x,
              std::vector<double>& y) {
  PE_REQUIRE(x.size() == a.cols, "x size mismatch");
  PE_REQUIRE(y.size() == a.rows, "y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (const Triplet& t : a.entries) y[t.row] += t.value * x[t.col];
}

void spmv_csr(const CsrMatrix& a, const std::vector<double>& x,
              std::vector<double>& y) {
  PE_REQUIRE(x.size() == a.cols, "x size mismatch");
  PE_REQUIRE(y.size() == a.rows, "y size mismatch");
  for (std::size_t r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (std::uint32_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i)
      acc += a.values[i] * x[a.col_idx[i]];
    y[r] = acc;
  }
}

void spmv_csc(const CscMatrix& a, const std::vector<double>& x,
              std::vector<double>& y) {
  PE_REQUIRE(x.size() == a.cols, "x size mismatch");
  PE_REQUIRE(y.size() == a.rows, "y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t c = 0; c < a.cols; ++c) {
    const double xc = x[c];
    for (std::uint32_t i = a.col_ptr[c]; i < a.col_ptr[c + 1]; ++i)
      y[a.row_idx[i]] += a.values[i] * xc;
  }
}

void spmv_csr_parallel(const CsrMatrix& a, const std::vector<double>& x,
                       std::vector<double>& y, ThreadPool& pool) {
  PE_REQUIRE(x.size() == a.cols, "x size mismatch");
  PE_REQUIRE(y.size() == a.rows, "y size mismatch");
  parallel_for(
      pool, 0, a.rows,
      [&](std::size_t r) {
        double acc = 0.0;
        for (std::uint32_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i)
          acc += a.values[i] * x[a.col_idx[i]];
        access_record(y.data(), sizeof(double), r, r + 1, true, "spmv.y");
        y[r] = acc;
      },
      Schedule::kDynamic, 256);
}

std::vector<std::size_t> balanced_row_partition(const CsrMatrix& a,
                                                std::size_t parts) {
  PE_REQUIRE(parts >= 1, "parts must be positive");
  std::vector<std::size_t> bounds(parts + 1, a.rows);
  bounds[0] = 0;
  const std::uint32_t nnz = a.row_ptr.empty() ? 0 : a.row_ptr[a.rows];
  for (std::size_t p = 1; p < parts; ++p) {
    // First row whose starting offset reaches this part's nnz quota; rows
    // are never split, so a very heavy row simply owns its part alone.
    const std::uint32_t target = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(nnz) * p) / parts);
    const auto it = std::lower_bound(a.row_ptr.begin(),
                                     a.row_ptr.begin() + a.rows, target);
    bounds[p] = std::max<std::size_t>(
        bounds[p - 1],
        static_cast<std::size_t>(it - a.row_ptr.begin()));
  }
  return bounds;
}

void spmv_csr_parallel_balanced(const CsrMatrix& a,
                                const std::vector<double>& x,
                                std::vector<double>& y, ThreadPool& pool) {
  PE_REQUIRE(x.size() == a.cols, "x size mismatch");
  PE_REQUIRE(y.size() == a.rows, "y size mismatch");
  const std::size_t parts = std::min<std::size_t>(
      pool.size() + 1, std::max<std::size_t>(1, a.rows));
  const std::vector<std::size_t> bounds = balanced_row_partition(a, parts);
  parallel_for(
      pool, 0, parts,
      [&](std::size_t p) {
        access_record(y.data(), sizeof(double), bounds[p], bounds[p + 1],
                      true, "spmv.y");
        for (std::size_t r = bounds[p]; r < bounds[p + 1]; ++r) {
          double acc = 0.0;
          for (std::uint32_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i)
            acc += a.values[i] * x[a.col_idx[i]];
          y[r] = acc;
        }
      },
      Schedule::kStatic);
}

std::string pattern_name(SparsityPattern p) {
  switch (p) {
    case SparsityPattern::kUniform: return "uniform";
    case SparsityPattern::kBanded: return "banded";
    case SparsityPattern::kPowerLaw: return "powerlaw";
  }
  return "?";
}

CooMatrix generate_sparse(std::size_t rows, std::size_t cols, double density,
                          SparsityPattern pattern, Rng& rng) {
  PE_REQUIRE(rows >= 1 && cols >= 1, "matrix must be non-empty");
  PE_REQUIRE(density > 0.0 && density <= 1.0, "density must be in (0,1]");
  CooMatrix coo;
  coo.rows = rows;
  coo.cols = cols;
  const auto target_nnz = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(rows) *
                                  static_cast<double>(cols) * density));
  coo.entries.reserve(target_nnz);

  auto value = [&rng] { return rng.next_range_double(0.1, 1.0); };

  switch (pattern) {
    case SparsityPattern::kUniform: {
      for (std::size_t e = 0; e < target_nnz; ++e) {
        coo.entries.push_back(
            {static_cast<std::uint32_t>(rng.next_range(0, rows - 1)),
             static_cast<std::uint32_t>(rng.next_range(0, cols - 1)),
             value()});
      }
      break;
    }
    case SparsityPattern::kBanded: {
      // Bandwidth chosen so the band holds the target density.
      const std::size_t per_row =
          std::max<std::size_t>(1, target_nnz / rows);
      const std::size_t half_band = std::max<std::size_t>(1, per_row / 2 + 1);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t diag =
            cols > 1 ? r * (cols - 1) / std::max<std::size_t>(1, rows - 1)
                     : 0;
        const std::size_t lo = diag >= half_band ? diag - half_band : 0;
        const std::size_t hi = std::min(cols - 1, diag + half_band);
        for (std::size_t e = 0; e < per_row; ++e) {
          coo.entries.push_back(
              {static_cast<std::uint32_t>(r),
               static_cast<std::uint32_t>(rng.next_range(lo, hi)), value()});
        }
      }
      break;
    }
    case SparsityPattern::kPowerLaw: {
      // Zipf row popularity: a few rows hold most of the non-zeros.
      for (std::size_t e = 0; e < target_nnz; ++e) {
        const std::size_t r =
            static_cast<std::size_t>(rng.next_zipf(rows, 1.1));
        coo.entries.push_back(
            {static_cast<std::uint32_t>(r),
             static_cast<std::uint32_t>(rng.next_range(0, cols - 1)),
             value()});
      }
      break;
    }
  }
  coo.normalize();
  return coo;
}

std::vector<std::string> sparse_feature_names() {
  return {"rows",      "cols",       "nnz",      "density",
          "mean_deg",  "deg_cv",     "bandwidth"};
}

std::vector<double> sparse_features(const CsrMatrix& m) {
  const double rows = static_cast<double>(m.rows);
  const double cols = static_cast<double>(m.cols);
  const double nnz = static_cast<double>(m.nnz());

  double deg_sum = 0.0, deg_sq = 0.0, band = 0.0;
  for (std::size_t r = 0; r < m.rows; ++r) {
    const double deg =
        static_cast<double>(m.row_ptr[r + 1] - m.row_ptr[r]);
    deg_sum += deg;
    deg_sq += deg * deg;
    for (std::uint32_t i = m.row_ptr[r]; i < m.row_ptr[r + 1]; ++i) {
      const double spread = std::abs(static_cast<double>(m.col_idx[i]) -
                                     static_cast<double>(r));
      band = std::max(band, spread);
    }
  }
  const double mean_deg = rows > 0 ? deg_sum / rows : 0.0;
  const double var_deg =
      rows > 0 ? std::max(0.0, deg_sq / rows - mean_deg * mean_deg) : 0.0;
  const double cv = mean_deg > 0.0 ? std::sqrt(var_deg) / mean_deg : 0.0;

  return {rows, cols, nnz, nnz / (rows * cols), mean_deg, cv, band};
}

}  // namespace pe::kernels
