#include "perfeng/kernels/transpose.hpp"

#include <algorithm>

#include "perfeng/common/access_hook.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/parallel/parallel_for.hpp"

namespace pe::kernels {

namespace {

void check_shapes(const Matrix& in, const Matrix& out) {
  PE_REQUIRE(in.rows() == out.cols() && in.cols() == out.rows(),
             "output must have transposed shape");
}

}  // namespace

void transpose_naive(const Matrix& in, Matrix& out) {
  check_shapes(in, out);
  for (std::size_t r = 0; r < in.rows(); ++r)
    for (std::size_t c = 0; c < in.cols(); ++c) out(c, r) = in(r, c);
}

void transpose_blocked(const Matrix& in, Matrix& out, std::size_t block) {
  check_shapes(in, out);
  PE_REQUIRE(block >= 1, "block must be positive");
  for (std::size_t r0 = 0; r0 < in.rows(); r0 += block) {
    const std::size_t r1 = std::min(in.rows(), r0 + block);
    for (std::size_t c0 = 0; c0 < in.cols(); c0 += block) {
      const std::size_t c1 = std::min(in.cols(), c0 + block);
      for (std::size_t r = r0; r < r1; ++r)
        for (std::size_t c = c0; c < c1; ++c) out(c, r) = in(r, c);
    }
  }
}

void transpose_parallel(const Matrix& in, Matrix& out, ThreadPool& pool,
                        std::size_t block) {
  check_shapes(in, out);
  PE_REQUIRE(block >= 1, "block must be positive");
  const std::size_t rows = in.rows(), cols = in.cols();
  parallel_for_chunks(
      pool, 0, cols,
      [&](std::size_t lo, std::size_t hi, std::size_t /*lane*/) {
        // Each chunk owns output rows [lo, hi): a contiguous slab of
        // `out`, a column stripe of `in` (reads may overlap freely).
        access_record(in.data(), sizeof(double), 0, rows * cols, false,
                      "transpose.in");
        access_record(out.data(), sizeof(double), lo * rows, hi * rows,
                      true, "transpose.out");
        for (std::size_t r0 = 0; r0 < rows; r0 += block) {
          const std::size_t r1 = std::min(rows, r0 + block);
          for (std::size_t c0 = lo; c0 < hi; c0 += block) {
            const std::size_t c1 = std::min(hi, c0 + block);
            for (std::size_t r = r0; r < r1; ++r)
              for (std::size_t c = c0; c < c1; ++c) out(c, r) = in(r, c);
          }
        }
      });
}

void transpose_inplace(Matrix& m) {
  PE_REQUIRE(m.rows() == m.cols(), "in-place transpose needs a square");
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = r + 1; c < m.cols(); ++c)
      std::swap(m(r, c), m(c, r));
}

void trace_transpose(pe::sim::CacheHierarchy& hierarchy, std::size_t rows,
                     std::size_t cols, std::size_t block) {
  PE_REQUIRE(rows >= 1 && cols >= 1, "matrix must be non-empty");
  using pe::sim::AccessType;
  const std::uint64_t elem = sizeof(double);
  const std::uint64_t in_base = 0;
  const std::uint64_t out_base = in_base + rows * cols * elem;
  auto in_addr = [&](std::size_t r, std::size_t c) {
    return in_base + (r * cols + c) * elem;
  };
  auto out_addr = [&](std::size_t r, std::size_t c) {
    return out_base + (c * rows + r) * elem;
  };

  const std::size_t rb = block == 0 ? rows : block;
  const std::size_t cb = block == 0 ? cols : block;
  for (std::size_t r0 = 0; r0 < rows; r0 += rb) {
    const std::size_t r1 = std::min(rows, r0 + rb);
    for (std::size_t c0 = 0; c0 < cols; c0 += cb) {
      const std::size_t c1 = std::min(cols, c0 + cb);
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t c = c0; c < c1; ++c) {
          hierarchy.access(in_addr(r, c), elem, AccessType::kRead);
          hierarchy.access(out_addr(r, c), elem, AccessType::kWrite);
        }
      }
    }
  }
}

double transpose_min_bytes(std::size_t rows, std::size_t cols) {
  PE_REQUIRE(rows >= 1 && cols >= 1, "matrix must be non-empty");
  return 2.0 * static_cast<double>(rows) * static_cast<double>(cols) *
         sizeof(double);
}

}  // namespace pe::kernels
