#include "perfeng/kernels/histogram.hpp"

#include <atomic>
#include <numeric>

#include "perfeng/common/access_hook.hpp"
#include "perfeng/common/aligned_buffer.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/parallel/parallel_for.hpp"

namespace pe::kernels {

std::vector<std::uint32_t> generate_uniform_indices(std::size_t count,
                                                    std::size_t bins,
                                                    Rng& rng) {
  PE_REQUIRE(bins >= 1 && bins <= UINT32_MAX, "bin count out of range");
  std::vector<std::uint32_t> out(count);
  for (auto& v : out)
    v = static_cast<std::uint32_t>(rng.next_range(0, bins - 1));
  return out;
}

std::vector<std::uint32_t> generate_zipf_indices(std::size_t count,
                                                 std::size_t bins,
                                                 double skew, Rng& rng) {
  PE_REQUIRE(bins >= 1 && bins <= UINT32_MAX, "bin count out of range");
  // Scatter popularity ranks over the table with a fixed pseudo-random
  // permutation (multiplicative hashing) so hot bins are not adjacent.
  std::vector<std::uint32_t> out(count);
  const std::uint64_t b = bins;
  for (auto& v : out) {
    const std::uint64_t rank = rng.next_zipf(b, skew);
    v = static_cast<std::uint32_t>((rank * 2654435761ULL) % b);
  }
  return out;
}

void histogram_serial(const std::vector<std::uint32_t>& indices,
                      std::vector<std::uint64_t>& counts) {
  PE_REQUIRE(!counts.empty(), "counter table must be non-empty");
  for (std::uint32_t idx : indices) {
    PE_ASSERT(idx < counts.size(), "index out of range");
    ++counts[idx];
  }
}

void histogram_parallel_atomic(const std::vector<std::uint32_t>& indices,
                               std::vector<std::uint64_t>& counts,
                               ThreadPool& pool) {
  PE_REQUIRE(!counts.empty(), "counter table must be non-empty");
  // One shared table of atomics; relaxed ordering suffices for counting.
  std::vector<std::atomic<std::uint64_t>> shared(counts.size());
  for (std::size_t bin = 0; bin < counts.size(); ++bin)
    shared[bin].store(counts[bin], std::memory_order_relaxed);

  parallel_for_chunks(
      pool, 0, indices.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t /*lane*/) {
        // The shared counter table is updated atomically (outside the race
        // checker's overlap model); the index stream reads are what each
        // chunk claims.
        access_record(indices.data(), sizeof(std::uint32_t), lo, hi, false,
                      "histogram.indices");
        for (std::size_t i = lo; i < hi; ++i) {
          PE_ASSERT(indices[i] < shared.size(), "index out of range");
          shared[indices[i]].fetch_add(1, std::memory_order_relaxed);
        }
      });

  for (std::size_t bin = 0; bin < counts.size(); ++bin)
    counts[bin] = shared[bin].load(std::memory_order_relaxed);
}

void histogram_parallel_private(const std::vector<std::uint32_t>& indices,
                                std::vector<std::uint64_t>& counts,
                                ThreadPool& pool) {
  PE_REQUIRE(!counts.empty(), "counter table must be non-empty");
  const std::size_t workers = pool.size();
  if (workers == 1) {
    histogram_serial(indices, counts);
    return;
  }
  // One flat allocation of per-lane tables, each padded to a whole number
  // of cache lines: neighbouring lanes' counters never share a line, so
  // the private tables cannot false-share (the `vector<vector>` layout
  // this replaces put different workers' heap blocks wherever the
  // allocator did, including adjacent lines).
  const std::size_t bins = counts.size();
  constexpr std::size_t kPerLine = kCacheLineBytes / sizeof(std::uint64_t);
  const std::size_t stride = (bins + kPerLine - 1) / kPerLine * kPerLine;
  const std::size_t lanes = workers + 1;  // workers + submitting thread
  AlignedBuffer<std::uint64_t> privates(lanes * stride);

  parallel_for_chunks(
      pool, 0, indices.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t lane) {
        std::uint64_t* mine = privates.data() + lane * stride;
        // Lane-private tables never overlap (the point of the pattern);
        // the chunk's claim on the shared index stream is the read range.
        access_record(indices.data(), sizeof(std::uint32_t), lo, hi, false,
                      "histogram.indices");
        for (std::size_t i = lo; i < hi; ++i) {
          PE_ASSERT(indices[i] < bins, "index out of range");
          ++mine[indices[i]];
        }
      });

  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::uint64_t* table = privates.data() + lane * stride;
    for (std::size_t bin = 0; bin < bins; ++bin) counts[bin] += table[bin];
  }
}

std::uint64_t histogram_total(const std::vector<std::uint64_t>& counts) {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

}  // namespace pe::kernels
