#include "perfeng/kernels/traces.hpp"

#include <algorithm>

#include "perfeng/common/error.hpp"

namespace pe::kernels {

using pe::sim::AccessType;

void trace_matmul(pe::sim::CacheHierarchy& hierarchy, std::size_t n,
                  TraceVariant variant, std::size_t tile) {
  PE_REQUIRE(n >= 1, "matrix order must be positive");
  PE_REQUIRE(tile >= 1, "tile must be positive");
  const std::uint64_t elem = sizeof(double);
  const std::uint64_t a_base = 0;
  const std::uint64_t b_base = a_base + n * n * elem;
  const std::uint64_t c_base = b_base + n * n * elem;

  auto a_addr = [&](std::size_t i, std::size_t k) {
    return a_base + (i * n + k) * elem;
  };
  auto b_addr = [&](std::size_t k, std::size_t j) {
    return b_base + (k * n + j) * elem;
  };
  auto c_addr = [&](std::size_t i, std::size_t j) {
    return c_base + (i * n + j) * elem;
  };

  switch (variant) {
    case TraceVariant::kNaiveIjk:
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t k = 0; k < n; ++k) {
            hierarchy.access(a_addr(i, k), elem, AccessType::kRead);
            hierarchy.access(b_addr(k, j), elem, AccessType::kRead);
          }
          hierarchy.access(c_addr(i, j), elem, AccessType::kWrite);
        }
      break;
    case TraceVariant::kInterchangedIkj:
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k) {
          hierarchy.access(a_addr(i, k), elem, AccessType::kRead);
          for (std::size_t j = 0; j < n; ++j) {
            hierarchy.access(b_addr(k, j), elem, AccessType::kRead);
            hierarchy.access(c_addr(i, j), elem, AccessType::kRead);
            hierarchy.access(c_addr(i, j), elem, AccessType::kWrite);
          }
        }
      break;
    case TraceVariant::kTiled:
      for (std::size_t i0 = 0; i0 < n; i0 += tile) {
        const std::size_t i1 = std::min(n, i0 + tile);
        for (std::size_t k0 = 0; k0 < n; k0 += tile) {
          const std::size_t k1 = std::min(n, k0 + tile);
          for (std::size_t j0 = 0; j0 < n; j0 += tile) {
            const std::size_t j1 = std::min(n, j0 + tile);
            for (std::size_t i = i0; i < i1; ++i)
              for (std::size_t k = k0; k < k1; ++k) {
                hierarchy.access(a_addr(i, k), elem, AccessType::kRead);
                for (std::size_t j = j0; j < j1; ++j) {
                  hierarchy.access(b_addr(k, j), elem, AccessType::kRead);
                  hierarchy.access(c_addr(i, j), elem, AccessType::kRead);
                  hierarchy.access(c_addr(i, j), elem, AccessType::kWrite);
                }
              }
          }
        }
      }
      break;
  }
}

void trace_strided(pe::sim::CacheHierarchy& hierarchy, std::size_t elements,
                   std::size_t stride) {
  PE_REQUIRE(elements >= 1, "need at least one element");
  PE_REQUIRE(stride >= 1, "stride must be positive");
  // Mirror kernels::strided_sum's column-major traversal exactly.
  const std::uint64_t elem = sizeof(double);
  for (std::size_t offset = 0; offset < stride && offset < elements;
       ++offset) {
    for (std::size_t i = offset; i < elements; i += stride)
      hierarchy.access(i * elem, elem, AccessType::kRead);
  }
}

void trace_histogram(pe::sim::CacheHierarchy& hierarchy,
                     const std::vector<std::uint32_t>& indices,
                     std::size_t bins) {
  PE_REQUIRE(bins >= 1, "need at least one bin");
  const std::uint64_t input_base = 0;
  const std::uint64_t counts_base =
      input_base + indices.size() * sizeof(std::uint32_t);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    PE_ASSERT(indices[i] < bins, "index out of range");
    hierarchy.access(input_base + i * sizeof(std::uint32_t),
                     sizeof(std::uint32_t), AccessType::kRead);
    const std::uint64_t counter =
        counts_base + indices[i] * sizeof(std::uint64_t);
    hierarchy.access(counter, sizeof(std::uint64_t), AccessType::kRead);
    hierarchy.access(counter, sizeof(std::uint64_t), AccessType::kWrite);
  }
}

void trace_spmv_csr(pe::sim::CacheHierarchy& hierarchy, std::size_t rows,
                    std::size_t cols,
                    const std::vector<std::uint32_t>& row_ptr,
                    const std::vector<std::uint32_t>& col_idx) {
  PE_REQUIRE(row_ptr.size() == rows + 1, "row_ptr size mismatch");
  const std::size_t nnz = col_idx.size();
  const std::uint64_t rp_base = 0;
  const std::uint64_t ci_base = rp_base + row_ptr.size() * 4;
  const std::uint64_t val_base = ci_base + nnz * 4;
  const std::uint64_t x_base = val_base + nnz * 8;
  const std::uint64_t y_base = x_base + cols * 8;

  for (std::size_t r = 0; r < rows; ++r) {
    hierarchy.access(rp_base + r * 4, 8, AccessType::kRead);  // ptr pair
    for (std::uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      hierarchy.access(ci_base + i * 4, 4, AccessType::kRead);
      hierarchy.access(val_base + i * 8, 8, AccessType::kRead);
      hierarchy.access(x_base + static_cast<std::uint64_t>(col_idx[i]) * 8,
                       8, AccessType::kRead);
    }
    hierarchy.access(y_base + r * 8, 8, AccessType::kWrite);
  }
}

void trace_branchy(pe::sim::BranchPredictor& predictor,
                   const std::vector<double>& data, double threshold) {
  // One static branch site; outcome depends on the data.
  constexpr std::uint64_t kBranchPc = 0x400123;
  for (double v : data) predictor.record(kBranchPc, v > threshold);
}

}  // namespace pe::kernels
