#include "perfeng/kernels/fft.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "perfeng/common/error.hpp"

namespace pe::kernels {

std::vector<Complex> dft(const std::vector<Complex>& input) {
  PE_REQUIRE(!input.empty(), "empty input");
  const std::size_t n = input.size();
  std::vector<Complex> out(n);
  const double base = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = base * static_cast<double>(k * t % n);
      acc += input[t] * Complex{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

namespace {

std::vector<Complex> fft_impl(std::vector<Complex> a, bool inverse) {
  const std::size_t n = a.size();
  PE_REQUIRE(std::has_single_bit(n), "length must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& x : a) x *= inv_n;
  }
  return a;
}

}  // namespace

std::vector<Complex> fft(const std::vector<Complex>& input) {
  PE_REQUIRE(!input.empty(), "empty input");
  return fft_impl(input, false);
}

std::vector<Complex> ifft(const std::vector<Complex>& input) {
  PE_REQUIRE(!input.empty(), "empty input");
  return fft_impl(input, true);
}

double spectrum_diff(const std::vector<Complex>& a,
                     const std::vector<Complex>& b) {
  PE_REQUIRE(a.size() == b.size(), "length mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

double fft_flops(std::size_t n) {
  PE_REQUIRE(n >= 2, "need at least two points");
  return 5.0 * static_cast<double>(n) *
         std::log2(static_cast<double>(n));
}

}  // namespace pe::kernels
