#include "perfeng/kernels/pattern_kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "perfeng/common/aligned_buffer.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/parallel/parallel_for.hpp"

namespace pe::kernels {

double strided_sum(const std::vector<double>& data, std::size_t stride) {
  PE_REQUIRE(!data.empty(), "empty input");
  PE_REQUIRE(stride >= 1, "stride must be positive");
  // Column-major traversal: `stride` interleaved passes so every element
  // is touched exactly once while consecutive touches sit `stride`
  // elements apart (same total work at every stride).
  const std::size_t n = data.size();
  double acc = 0.0;
  for (std::size_t offset = 0; offset < stride && offset < n; ++offset) {
    for (std::size_t i = offset; i < n; i += stride) acc += data[i];
  }
  return acc;
}

double sequential_sum(const std::vector<double>& data) {
  PE_REQUIRE(!data.empty(), "empty input");
  double acc = 0.0;
  for (double v : data) acc += v;
  return acc;
}

std::uint64_t false_sharing_counters(ThreadPool& pool,
                                     std::uint64_t iterations) {
  const std::size_t workers = pool.size();
  // Adjacent counters: every increment invalidates the others' line.
  std::vector<std::atomic<std::uint64_t>> counters(workers);
  for (auto& c : counters) c.store(0, std::memory_order_relaxed);
  pool.run_on_all([&](std::size_t w) {
    auto& mine = counters[w];
    for (std::uint64_t i = 0; i < iterations; ++i)
      mine.fetch_add(1, std::memory_order_relaxed);
  });
  std::uint64_t total = 0;
  for (const auto& c : counters) total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t padded_counters(ThreadPool& pool, std::uint64_t iterations) {
  const std::size_t workers = pool.size();
  struct alignas(kCacheLineBytes) PaddedCounter {
    std::atomic<std::uint64_t> value{0};
  };
  std::vector<PaddedCounter> counters(workers);
  pool.run_on_all([&](std::size_t w) {
    auto& mine = counters[w].value;
    for (std::uint64_t i = 0; i < iterations; ++i)
      mine.fetch_add(1, std::memory_order_relaxed);
  });
  std::uint64_t total = 0;
  for (const auto& c : counters)
    total += c.value.load(std::memory_order_relaxed);
  return total;
}

namespace {

/// Task i performs ~i iterations of real floating-point work; the result
/// encodes the iteration count so schedules can be differentially tested.
double triangular_task(std::size_t i) {
  double acc = 1.0;
  for (std::size_t it = 0; it < i; ++it) acc = acc * 1.0000001 + 1e-9;
  return acc;
}

}  // namespace

void imbalanced_static(ThreadPool& pool, std::size_t tasks,
                       std::vector<double>& out) {
  out.assign(tasks, 0.0);
  parallel_for(
      pool, 0, tasks, [&](std::size_t i) { out[i] = triangular_task(i); },
      Schedule::kStatic);
}

void imbalanced_dynamic(ThreadPool& pool, std::size_t tasks,
                        std::vector<double>& out) {
  out.assign(tasks, 0.0);
  parallel_for(
      pool, 0, tasks, [&](std::size_t i) { out[i] = triangular_task(i); },
      Schedule::kDynamic, /*chunk=*/16);
}

double branchy_sum(const std::vector<double>& data, double threshold) {
  PE_REQUIRE(!data.empty(), "empty input");
  double acc = 0.0;
  for (double v : data) {
    if (v > threshold) acc += v;
  }
  return acc;
}

double branchless_sum(const std::vector<double>& data, double threshold) {
  PE_REQUIRE(!data.empty(), "empty input");
  double acc = 0.0;
  for (double v : data) {
    acc += v > threshold ? v : 0.0;  // compiles to a select, not a branch
  }
  return acc;
}

std::vector<double> random_doubles(std::size_t count, Rng& rng) {
  std::vector<double> out(count);
  for (double& v : out) v = rng.next_double();
  return out;
}

std::vector<double> sorted_doubles(std::size_t count, Rng& rng) {
  std::vector<double> out = random_doubles(count, rng);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pe::kernels
