#include "perfeng/kernels/life.hpp"

#include <bit>
#include <numeric>

#include "perfeng/common/error.hpp"

namespace pe::kernels {

LifeGrid::LifeGrid(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, 0) {
  PE_REQUIRE(rows >= 1 && cols >= 1, "universe must be non-empty");
}

std::size_t LifeGrid::population() const {
  return std::accumulate(cells_.begin(), cells_.end(), std::size_t{0});
}

void LifeGrid::randomize(double density, Rng& rng) {
  PE_REQUIRE(density >= 0.0 && density <= 1.0, "density must be in [0,1]");
  for (auto& cell : cells_) cell = rng.next_double() < density ? 1 : 0;
}

void LifeGrid::place_glider(std::size_t r, std::size_t c) {
  PE_REQUIRE(r + 2 < rows_ && c + 2 < cols_, "glider out of bounds");
  // . # .
  // . . #
  // # # #
  set(r, c + 1, true);
  set(r + 1, c + 2, true);
  set(r + 2, c, true);
  set(r + 2, c + 1, true);
  set(r + 2, c + 2, true);
}

LifeGrid LifeGrid::step() const {
  LifeGrid next(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      int neighbours = 0;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const std::ptrdiff_t nr = static_cast<std::ptrdiff_t>(r) + dr;
          const std::ptrdiff_t nc = static_cast<std::ptrdiff_t>(c) + dc;
          if (nr < 0 || nc < 0 ||
              nr >= static_cast<std::ptrdiff_t>(rows_) ||
              nc >= static_cast<std::ptrdiff_t>(cols_))
            continue;
          neighbours += alive(static_cast<std::size_t>(nr),
                              static_cast<std::size_t>(nc))
                            ? 1
                            : 0;
        }
      }
      next.set(r, c,
               neighbours == 3 || (alive(r, c) && neighbours == 2));
    }
  }
  return next;
}

std::string LifeGrid::render() const {
  std::string out;
  out.reserve(rows_ * (cols_ + 1));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out += alive(r, c) ? '#' : '.';
    out += '\n';
  }
  return out;
}

// ------------------------------------------------------------ bit-packed

LifeGridPacked::LifeGridPacked(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      bits_(rows_ * words_per_row_, 0) {
  PE_REQUIRE(rows >= 1 && cols >= 1, "universe must be non-empty");
}

LifeGridPacked::LifeGridPacked(const LifeGrid& reference)
    : LifeGridPacked(reference.rows(), reference.cols()) {
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (reference.alive(r, c)) set(r, c, true);
}

bool LifeGridPacked::alive(std::size_t r, std::size_t c) const {
  PE_REQUIRE(r < rows_ && c < cols_, "cell out of bounds");
  const std::uint64_t word = bits_[r * words_per_row_ + c / 64];
  return ((word >> (c % 64)) & 1u) != 0;
}

void LifeGridPacked::set(std::size_t r, std::size_t c, bool value) {
  PE_REQUIRE(r < rows_ && c < cols_, "cell out of bounds");
  std::uint64_t& word = bits_[r * words_per_row_ + c / 64];
  const std::uint64_t mask = std::uint64_t{1} << (c % 64);
  if (value) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

std::size_t LifeGridPacked::population() const {
  std::size_t pop = 0;
  for (std::uint64_t word : bits_) pop += std::popcount(word);
  return pop;
}

std::uint64_t LifeGridPacked::shifted_row(std::size_t r, int dx,
                                          std::size_t w) const {
  const std::uint64_t* row = bits_.data() + r * words_per_row_;
  const std::uint64_t center = row[w];
  if (dx == 0) return center;
  if (dx < 0) {
    // bit c holds cell at column c-1.
    const std::uint64_t carry = w > 0 ? row[w - 1] >> 63 : 0;
    return (center << 1) | carry;
  }
  // bit c holds cell at column c+1.
  const std::uint64_t carry =
      (w + 1 < words_per_row_) ? row[w + 1] << 63 : 0;
  return (center >> 1) | carry;
}

LifeGridPacked LifeGridPacked::step() const {
  LifeGridPacked next(rows_, cols_);
  const std::uint64_t last_mask =
      cols_ % 64 == 0 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << (cols_ % 64)) - 1;

  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      // Bit-sliced (ones, twos, fours) counter over the 8 neighbour masks.
      // `fours` saturates, which is safe: a saturated count can never be
      // 2 or 3, so the cell correctly dies.
      std::uint64_t ones = 0, twos = 0, fours = 0;
      auto add = [&](std::uint64_t x) {
        const std::uint64_t carry1 = ones & x;
        ones ^= x;
        const std::uint64_t carry2 = twos & carry1;
        twos ^= carry1;
        fours |= carry2;
      };
      if (r > 0) {
        add(shifted_row(r - 1, -1, w));
        add(shifted_row(r - 1, 0, w));
        add(shifted_row(r - 1, 1, w));
      }
      add(shifted_row(r, -1, w));
      add(shifted_row(r, 1, w));
      if (r + 1 < rows_) {
        add(shifted_row(r + 1, -1, w));
        add(shifted_row(r + 1, 0, w));
        add(shifted_row(r + 1, 1, w));
      }
      const std::uint64_t current = bits_[r * words_per_row_ + w];
      const std::uint64_t is3 = ~fours & twos & ones;
      const std::uint64_t is2 = ~fours & twos & ~ones;
      std::uint64_t result = is3 | (current & is2);
      if (w + 1 == words_per_row_) result &= last_mask;
      next.bits_[r * words_per_row_ + w] = result;
    }
  }
  return next;
}

LifeGrid LifeGridPacked::unpack() const {
  LifeGrid out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (alive(r, c)) out.set(r, c, true);
  return out;
}

}  // namespace pe::kernels
