// perfeng-lint: the repo's own static contract checker.
//
// Enforces the source-tree conventions that keep the toolbox teachable and
// the measurements trustworthy — the checks CI runs over every PR (see
// docs/analysis.md):
//
//   pragma-once          src headers start with #pragma once
//   include-style        quoted includes name "perfeng/..." paths only
//   namespace-pe         public headers declare everything inside pe::
//   no-using-namespace   no `using namespace std`; none at all in headers
//   no-std-rand          no std::rand/srand/random_device (use pe::Rng:
//                        seeded, reproducible, the whole point of the
//                        statistics layer)
//   no-raw-new-array     no raw new[] in src/ (AlignedBuffer / vector own
//                        memory; raw arrays leak on the exception paths
//                        the resilience layer exercises)
//   no-volatile          no volatile-as-synchronization in src/ (use
//                        std::atomic; `asm volatile` barriers are exempt)
//   test-determinism     tests never read wall-clock dates or OS entropy
//                        (system_clock/random_device/srand) — a test that
//                        depends on *when* it runs cannot gate a PR
//   self-contained-includes
//                        headers directly include what they use for a
//                        curated std token set (transitive includes rot)
//   trace-hook-guard     scheduler-trace emission in src/ goes through the
//                        PE_TRACE_EMIT* guard macros, never a direct
//                        on_event() call — the macros are what keep the
//                        disabled path one guarded branch (the property
//                        bench/scheduler_trace --check measures)
//   simd-isolation       <immintrin.h>-family includes and raw _mm* /
//                        __m256-style intrinsics live only in the
//                        pe::simd backend headers (src/simd/include/
//                        perfeng/simd/backend_*.hpp); kernels speak
//                        Vec<T, N> so a new ISA is one new backend file,
//                        not a tree-wide audit (docs/simd.md)
//   model-from-machine   every public header under src/models exposes a
//                        from_machine() factory — the calibration contract
//                        that lets the composition layer treat any model
//                        as a leaf (docs/models.md); deliberately machine-
//                        independent headers carry an allow-file waiver
//                        with a rationale
//
// Suppressions: a line containing `perfeng-lint: allow(<check>)` in a
// comment exempts that line; `perfeng-lint: allow-file(<check>)` anywhere
// exempts the whole file. Every suppression should carry a rationale.
//
// Usage: perfeng_lint <repo-root> [--list-checks]
// Exit code: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line;  // 1-based; 0 = whole file
  std::string check;
  std::string message;
};

struct SourceFile {
  fs::path path;
  std::string rel;                  // repo-relative, forward slashes
  std::vector<std::string> raw;     // original lines
  std::vector<std::string> code;    // comments + string literals blanked
  bool is_header = false;
  bool in_src = false;              // under src/
  bool is_public_header = false;    // under src/*/include/
  bool in_tests = false;
};

/// An `allow(<check>)` marker suppresses a finding on its own line or on
/// the line directly below it (so the rationale can live in a comment
/// above the flagged statement).
bool line_allows(const SourceFile& f, std::size_t idx,
                 std::string_view check) {
  const std::string needle =
      "perfeng-lint: allow(" + std::string(check) + ")";
  if (f.raw[idx].find(needle) != std::string::npos) return true;
  return idx > 0 && f.raw[idx - 1].find(needle) != std::string::npos;
}

bool file_allows(const SourceFile& f, std::string_view check) {
  const std::string needle =
      "perfeng-lint: allow-file(" + std::string(check) + ")";
  return std::any_of(f.raw.begin(), f.raw.end(),
                     [&](const std::string& line) {
                       return line.find(needle) != std::string::npos;
                     });
}

/// Blank out comments, string literals, and char literals, preserving
/// line structure so reported line numbers match the original file.
std::vector<std::string> strip_comments_and_strings(
    const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block_comment = false;
  for (const std::string& line : lines) {
    std::string cooked(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      const char ch = line[i];
      if (ch == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (ch == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (ch == '"' || ch == '\'') {
        const char quote = ch;
        cooked[i] = quote;  // keep the delimiter (include paths need it)
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            cooked[i] = quote;
            break;
          }
          ++i;
        }
        continue;
      }
      cooked[i] = ch;
    }
    out.push_back(std::move(cooked));
  }
  return out;
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Does `token` occur in `line` with a non-identifier character (or end
/// of line) after it?
bool contains_token(std::string_view line, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const std::size_t end = pos + token.size();
    const bool boundary_before =
        pos == 0 || !is_identifier_char(line[pos - 1]);
    const bool boundary_after =
        end >= line.size() || !is_identifier_char(line[end]);
    if (boundary_before && boundary_after) return true;
    pos = end;
  }
  return false;
}

// --- individual checks ------------------------------------------------------

void check_pragma_once(const SourceFile& f, std::vector<Violation>& out) {
  if (!f.is_header || !f.in_src) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    std::string_view line(f.code[i]);
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string_view::npos) continue;  // blank/comment line
    if (line.substr(first).rfind("#pragma once", 0) == 0) return;
    out.push_back({f.rel, i + 1, "pragma-once",
                   "header must start with #pragma once"});
    return;
  }
  out.push_back(
      {f.rel, 0, "pragma-once", "header must contain #pragma once"});
}

void check_include_style(const SourceFile& f, std::vector<Violation>& out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    std::string_view line(f.code[i]);
    const std::size_t hash = line.find_first_not_of(" \t");
    if (hash == std::string_view::npos || line[hash] != '#') continue;
    const std::size_t inc = line.find("include", hash);
    if (inc == std::string_view::npos) continue;
    const std::size_t quote = line.find('"', inc);
    if (quote == std::string_view::npos) continue;
    // The cooked line blanks string-literal contents; read the actual
    // include path from the raw line.
    std::string_view raw(f.raw[i]);
    if (raw.compare(quote, 9, "\"perfeng/") != 0 &&
        !line_allows(f, i, "include-style"))
      out.push_back({f.rel, i + 1, "include-style",
                     "quoted includes must name \"perfeng/...\" paths "
                     "(angle brackets for system headers)"});
  }
}

void check_namespace_pe(const SourceFile& f, std::vector<Violation>& out) {
  if (!f.is_public_header) return;
  if (file_allows(f, "namespace-pe")) return;
  for (const std::string& line : f.code)
    if (line.find("namespace pe") != std::string::npos) return;
  out.push_back({f.rel, 0, "namespace-pe",
                 "public header declares nothing in namespace pe"});
}

void check_using_namespace(const SourceFile& f,
                           std::vector<Violation>& out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    const std::size_t pos = line.find("using namespace");
    if (pos == std::string::npos) continue;
    if (line_allows(f, i, "no-using-namespace")) continue;
    const bool is_std =
        line.find("using namespace std", pos) != std::string::npos;
    if (is_std)
      out.push_back({f.rel, i + 1, "no-using-namespace",
                     "`using namespace std` is banned"});
    else if (f.is_header)
      out.push_back({f.rel, i + 1, "no-using-namespace",
                     "headers must not have using-namespace directives"});
  }
}

void check_std_rand(const SourceFile& f, std::vector<Violation>& out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (line_allows(f, i, "no-std-rand")) continue;
    if (contains_token(line, "std::rand") || contains_token(line, "srand") ||
        contains_token(line, "random_device"))
      out.push_back({f.rel, i + 1, "no-std-rand",
                     "use pe::Rng (seeded, reproducible) instead of C/OS "
                     "randomness"});
  }
}

void check_raw_new_array(const SourceFile& f, std::vector<Violation>& out) {
  if (!f.in_src) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (line_allows(f, i, "no-raw-new-array")) continue;
    std::size_t pos = 0;
    while ((pos = line.find("new ", pos)) != std::string::npos) {
      if (pos > 0 && is_identifier_char(line[pos - 1])) {  // e.g. renew
        pos += 4;
        continue;
      }
      // Scan the type name after `new`; a '[' before anything else is an
      // array allocation.
      std::size_t j = pos + 4;
      while (j < line.size() &&
             (is_identifier_char(line[j]) || line[j] == ':' ||
              line[j] == '<' || line[j] == '>' || line[j] == ' '))
        ++j;
      if (j < line.size() && line[j] == '[')
        out.push_back({f.rel, i + 1, "no-raw-new-array",
                       "raw new[] in src/ — use AlignedBuffer or "
                       "std::vector"});
      pos = j;
    }
  }
}

void check_volatile(const SourceFile& f, std::vector<Violation>& out) {
  if (!f.in_src) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (!contains_token(line, "volatile")) continue;
    if (line.find("asm volatile") != std::string::npos) continue;
    if (line_allows(f, i, "no-volatile")) continue;
    out.push_back({f.rel, i + 1, "no-volatile",
                   "volatile is not a synchronization primitive — use "
                   "std::atomic (annotate compiler-barrier sinks with "
                   "perfeng-lint: allow(no-volatile) + rationale)"});
  }
}

void check_test_determinism(const SourceFile& f,
                            std::vector<Violation>& out) {
  if (!f.in_tests) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (line_allows(f, i, "test-determinism")) continue;
    if (contains_token(line, "system_clock"))
      out.push_back({f.rel, i + 1, "test-determinism",
                     "tests must not read the wall clock (use "
                     "steady_clock for durations, fixed seeds for data)"});
    if (line.find("time(nullptr)") != std::string::npos ||
        line.find("time(NULL)") != std::string::npos)
      out.push_back({f.rel, i + 1, "test-determinism",
                     "seeding from time() makes the test a different test "
                     "every run"});
  }
}

struct StdTokenRule {
  std::string_view token;
  std::vector<std::string_view> providers;  // any one satisfies the rule
};

const std::vector<StdTokenRule>& std_token_rules() {
  static const std::vector<StdTokenRule> rules = {
      {"std::vector", {"vector"}},
      {"std::string", {"string"}},
      {"std::string_view", {"string_view"}},
      {"std::size_t", {"cstddef", "cstdio", "cstdlib", "cstring"}},
      {"std::ptrdiff_t", {"cstddef"}},
      {"std::uint8_t", {"cstdint"}},
      {"std::uint16_t", {"cstdint"}},
      {"std::uint32_t", {"cstdint"}},
      {"std::uint64_t", {"cstdint"}},
      {"std::int32_t", {"cstdint"}},
      {"std::int64_t", {"cstdint"}},
      {"std::atomic", {"atomic"}},
      {"std::mutex", {"mutex"}},
      {"std::lock_guard", {"mutex"}},
      {"std::unique_lock", {"mutex"}},
      {"std::scoped_lock", {"mutex"}},
      {"std::condition_variable", {"condition_variable"}},
      {"std::thread", {"thread"}},
      {"std::function", {"functional"}},
      {"std::unique_ptr", {"memory"}},
      {"std::shared_ptr", {"memory"}},
      {"std::make_unique", {"memory"}},
      {"std::make_shared", {"memory"}},
      {"std::optional", {"optional"}},
      {"std::variant", {"variant"}},
      {"std::map", {"map"}},
      {"std::unordered_map", {"unordered_map"}},
      {"std::set", {"set"}},
      {"std::deque", {"deque"}},
      {"std::array", {"array"}},
      {"std::pair", {"utility"}},
      {"std::future", {"future"}},
      {"std::promise", {"future"}},
      {"std::packaged_task", {"future"}},
      {"std::chrono", {"chrono"}},
      {"std::numeric_limits", {"limits"}},
      {"std::exception_ptr", {"exception"}},
      {"std::current_exception", {"exception"}},
      {"std::rethrow_exception", {"exception"}},
      {"std::runtime_error", {"stdexcept"}},
      {"std::source_location", {"source_location"}},
      {"std::ostream", {"ostream", "iostream", "sstream", "iosfwd"}},
      {"std::ostringstream", {"sstream"}},
  };
  return rules;
}

void check_self_contained(const SourceFile& f, std::vector<Violation>& out) {
  if (!f.is_header || !f.in_src) return;
  std::vector<std::string> included;
  for (const std::string& line : f.code) {
    const std::size_t pos = line.find("#include <");
    if (pos == std::string::npos) continue;
    const std::size_t start = pos + 10;
    const std::size_t end = line.find('>', start);
    if (end != std::string::npos)
      included.push_back(line.substr(start, end - start));
  }
  for (const StdTokenRule& rule : std_token_rules()) {
    bool satisfied = std::any_of(
        rule.providers.begin(), rule.providers.end(),
        [&](std::string_view p) {
          return std::find(included.begin(), included.end(), p) !=
                 included.end();
        });
    if (satisfied) continue;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (!contains_token(f.code[i], rule.token)) continue;
      if (line_allows(f, i, "self-contained-includes")) continue;
      out.push_back(
          {f.rel, i + 1, "self-contained-includes",
           "uses " + std::string(rule.token) + " but does not include <" +
               std::string(rule.providers.front()) + "> directly"});
      break;  // one report per (file, token) is enough
    }
  }
}

void check_trace_hook_guard(const SourceFile& f,
                            std::vector<Violation>& out) {
  if (!f.in_src) return;
  // The guard macros themselves are the one sanctioned spelling.
  if (f.rel == "src/common/include/perfeng/common/trace_hook.hpp") return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    const std::size_t pos = line.find("on_event(");
    if (pos == std::string::npos || pos == 0) continue;
    const char before = line[pos - 1];
    if (before != '.' && before != '>') continue;  // declarations are fine
    if (line_allows(f, i, "trace-hook-guard")) continue;
    out.push_back({f.rel, i + 1, "trace-hook-guard",
                   "direct on_event() call — emit through PE_TRACE_EMIT / "
                   "PE_TRACE_EMIT_SITE / PE_TRACE_EMIT_CACHED so the "
                   "disabled-hook path stays one guarded branch"});
  }
}

void check_simd_isolation(const SourceFile& f, std::vector<Violation>& out) {
  // The pe::simd backend headers are the one sanctioned home for raw
  // intrinsics; everything else (kernels, benches, tests) speaks
  // Vec<T, N> so exactness contracts stay auditable in one place.
  if (f.rel.rfind("src/simd/include/perfeng/simd/backend_", 0) == 0) return;
  if (file_allows(f, "simd-isolation")) return;
  static const std::vector<std::string_view> kIntrinsicHeaders = {
      "immintrin.h", "x86intrin.h", "xmmintrin.h", "emmintrin.h",
      "smmintrin.h", "tmmintrin.h", "avxintrin.h", "arm_neon.h"};
  static const std::vector<std::string_view> kIntrinsicPrefixes = {
      "_mm", "__m128", "__m256", "__m512"};
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (line_allows(f, i, "simd-isolation")) continue;
    const std::size_t inc = line.find("#include <");
    if (inc != std::string::npos) {
      for (std::string_view header : kIntrinsicHeaders) {
        if (line.find(header, inc) != std::string::npos) {
          out.push_back({f.rel, i + 1, "simd-isolation",
                         "intrinsic header outside the pe::simd backend "
                         "layer — include \"perfeng/simd/vec.hpp\" and use "
                         "Vec<T, N>"});
          break;
        }
      }
      continue;
    }
    for (std::string_view prefix : kIntrinsicPrefixes) {
      std::size_t pos = 0;
      bool flagged = false;
      while ((pos = line.find(prefix, pos)) != std::string::npos) {
        if (pos == 0 || !is_identifier_char(line[pos - 1])) {
          out.push_back({f.rel, i + 1, "simd-isolation",
                         "raw SIMD intrinsic outside src/simd backend "
                         "headers — extend Vec<T, N> instead"});
          flagged = true;
          break;
        }
        pos += prefix.size();
      }
      if (flagged) break;
    }
  }
}

void check_model_from_machine(const SourceFile& f,
                              std::vector<Violation>& out) {
  if (!f.is_public_header) return;
  if (f.rel.rfind("src/models/", 0) != 0) return;
  if (file_allows(f, "model-from-machine")) return;
  for (const std::string& line : f.code)
    if (line.find("from_machine(") != std::string::npos) return;
  out.push_back(
      {f.rel, 0, "model-from-machine",
       "public model header has no from_machine() factory — every model "
       "must be constructible from a machine description so the "
       "composition layer can use it as a leaf (docs/models.md); if the "
       "model is deliberately machine-independent, add `perfeng-lint: "
       "allow-file(model-from-machine)` with a rationale"});
}

// --- driver -----------------------------------------------------------------

const std::vector<std::string_view>& check_names() {
  static const std::vector<std::string_view> names = {
      "pragma-once",       "include-style",      "namespace-pe",
      "no-using-namespace", "no-std-rand",       "no-raw-new-array",
      "no-volatile",       "test-determinism",   "self-contained-includes",
      "trace-hook-guard",  "simd-isolation",     "model-from-machine",
  };
  return names;
}

bool wants(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--list-checks") {
    for (std::string_view name : check_names())
      std::cout << name << "\n";
    return 0;
  }
  if (args.size() != 1) {
    std::cerr << "usage: perfeng_lint <repo-root> | --list-checks\n";
    return 2;
  }
  const fs::path root(args[0]);
  if (!fs::is_directory(root)) {
    std::cerr << "perfeng_lint: not a directory: " << root << "\n";
    return 2;
  }

  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !wants(entry.path())) continue;
      SourceFile f;
      f.path = entry.path();
      f.rel = fs::relative(entry.path(), root).generic_string();
      std::ifstream in(entry.path());
      if (!in) {
        std::cerr << "perfeng_lint: cannot read " << f.rel << "\n";
        return 2;
      }
      for (std::string line; std::getline(in, line);)
        f.raw.push_back(std::move(line));
      f.code = strip_comments_and_strings(f.raw);
      const std::string ext = entry.path().extension().string();
      f.is_header = ext == ".hpp" || ext == ".h";
      f.in_src = f.rel.rfind("src/", 0) == 0;
      f.in_tests = f.rel.rfind("tests/", 0) == 0;
      f.is_public_header =
          f.is_header && f.rel.find("/include/perfeng/") != std::string::npos;
      ++files_scanned;

      check_pragma_once(f, violations);
      check_include_style(f, violations);
      check_namespace_pe(f, violations);
      check_using_namespace(f, violations);
      check_std_rand(f, violations);
      check_raw_new_array(f, violations);
      check_volatile(f, violations);
      check_test_determinism(f, violations);
      check_self_contained(f, violations);
      check_trace_hook_guard(f, violations);
      check_simd_isolation(f, violations);
      check_model_from_machine(f, violations);
    }
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  for (const Violation& v : violations) {
    std::cout << v.file;
    if (v.line > 0) std::cout << ":" << v.line;
    std::cout << ": [" << v.check << "] " << v.message << "\n";
  }
  std::cout << "perfeng-lint: " << files_scanned << " files, "
            << violations.size() << " violation(s)\n";
  return violations.empty() ? 0 : 1;
}
