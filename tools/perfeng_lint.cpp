// perfeng-lint CLI: a thin shell over the pe::lint library (src/lint).
//
// The rule catalog, lexer, repo model, pass framework, renderers, and
// baseline logic all live in the library; this file only parses flags.
// See docs/lint.md for the pass catalog, waiver grammar, and the
// baseline workflow.
//
// Usage:
//   perfeng_lint <repo-root> [options]
//   perfeng_lint --list-checks
//
// Options:
//   --format text|jsonl|sarif   output format (default text)
//   --sarif                     shorthand for --format sarif
//   --out FILE                  write the report to FILE instead of stdout
//   --baseline FILE             fail only on findings not in the baseline
//   --write-baseline FILE       write current findings as the new baseline
//   --rule NAME                 run only this rule (repeatable)
//
// Exit code: 0 clean (or all findings baselined), 1 new findings,
// 2 usage/IO error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "perfeng/common/error.hpp"
#include "perfeng/lint/baseline.hpp"
#include "perfeng/lint/driver.hpp"
#include "perfeng/lint/render.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: perfeng_lint <repo-root> [--format text|jsonl|sarif] "
         "[--sarif]\n"
         "                    [--out FILE] [--baseline FILE]\n"
         "                    [--write-baseline FILE] [--rule NAME]...\n"
         "       perfeng_lint --list-checks\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--list-checks") {
    for (const auto& pass : pe::lint::default_passes())
      std::cout << pass->rule().id << "\n";
    return 0;
  }

  std::string root;
  std::string format = "text";
  std::string out_file;
  std::string baseline_file;
  std::string write_baseline_file;
  std::vector<std::string> only_rules;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    if (a == "--sarif") {
      format = "sarif";
    } else if (a == "--format") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      format = *v;
    } else if (a == "--out") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      out_file = *v;
    } else if (a == "--baseline") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      baseline_file = *v;
    } else if (a == "--write-baseline") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      write_baseline_file = *v;
    } else if (a == "--rule") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      only_rules.push_back(*v);
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else if (root.empty()) {
      root = a;
    } else {
      return usage();
    }
  }
  if (root.empty()) return usage();
  if (format != "text" && format != "jsonl" && format != "sarif")
    return usage();
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "perfeng_lint: not a directory: " << root << "\n";
    return 2;
  }

  try {
    pe::lint::ScanOptions opts;
    opts.root = root;
    const pe::lint::LintResult result = pe::lint::lint_repo(opts, only_rules);

    if (!write_baseline_file.empty()) {
      std::ofstream out(write_baseline_file);
      if (!out) {
        std::cerr << "perfeng_lint: cannot write " << write_baseline_file
                  << "\n";
        return 2;
      }
      out << pe::lint::Baseline::serialize(result.findings);
      std::cout << "perfeng-lint: wrote baseline (" << result.findings.size()
                << " findings) to " << write_baseline_file << "\n";
      return 0;
    }

    std::vector<pe::lint::Finding> gated = result.findings;
    if (!baseline_file.empty()) {
      const pe::lint::Baseline baseline =
          pe::lint::Baseline::load(baseline_file);
      gated = baseline.new_findings(result.findings);
    }

    std::string report;
    if (format == "sarif") {
      report = pe::lint::render_sarif(gated, result.rules);
    } else if (format == "jsonl") {
      report = pe::lint::render_jsonl(gated);
    } else {
      report = pe::lint::render_text(gated, result.files_scanned);
      if (!baseline_file.empty() && gated.size() != result.findings.size())
        report += "perfeng-lint: " +
                  std::to_string(result.findings.size() - gated.size()) +
                  " baselined finding(s) suppressed\n";
    }

    if (!out_file.empty()) {
      std::ofstream out(out_file);
      if (!out) {
        std::cerr << "perfeng_lint: cannot write " << out_file << "\n";
        return 2;
      }
      out << report;
      std::cout << "perfeng-lint: " << gated.size()
                << " gated finding(s); report written to " << out_file
                << "\n";
    } else {
      std::cout << report;
    }
    return gated.empty() ? 0 : 1;
  } catch (const pe::Error& e) {
    std::cerr << "perfeng_lint: " << e.what() << "\n";
    return 2;
  }
}
