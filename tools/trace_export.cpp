// Offline scheduler-trace exporter: post-process a capture written by
// `Trace::save` (e.g. bench/scheduler_trace's scheduler_trace.jsonl)
// without re-running the workload. Emits collapsed flame-graph stacks
// and/or a Chrome trace_event timeline, and prints the same latency and
// contention reports the live driver shows — so a capture taken on one
// machine (a cluster node, a student laptop) can be analysed on another.
//
//   trace_export <capture.jsonl> [--folded <path>] [--chrome <path>]
//
// With no export flags it prints the analysis only. See
// docs/observability.md for the capture format.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "perfeng/observe/analysis.hpp"
#include "perfeng/observe/export.hpp"
#include "perfeng/observe/trace.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <capture.jsonl> [--folded <path>] "
               "[--chrome <path>]\n",
               argv0);
  return 2;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  if (!out) {
    std::fprintf(stderr, "trace_export: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string capture_path, folded_path, chrome_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--folded") == 0 && i + 1 < argc) {
      folded_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome") == 0 && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (argv[i][0] == '-' || !capture_path.empty()) {
      return usage(argv[0]);
    } else {
      capture_path = argv[i];
    }
  }
  if (capture_path.empty()) return usage(argv[0]);

  pe::observe::Trace trace;
  try {
    trace = pe::observe::Trace::load_file(capture_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_export: %s\n", e.what());
    return 1;
  }

  const pe::observe::TraceSummary summary = pe::observe::summarize(trace);
  std::printf("%s\n\n", summary.one_line().c_str());
  std::fputs(pe::observe::scheduler_latency(trace).to_table().render().c_str(),
             stdout);
  std::puts("");
  std::fputs(pe::observe::contention_profile(trace).to_table().render().c_str(),
             stdout);

  bool ok = true;
  if (!folded_path.empty()) {
    std::ostringstream folded;
    pe::observe::write_collapsed(folded, trace);
    ok = write_file(folded_path, folded.str()) && ok;
    if (ok) std::printf("\nfolded stacks: %s\n", folded_path.c_str());
  }
  if (!chrome_path.empty()) {
    std::ostringstream chrome;
    pe::observe::write_chrome_trace(chrome, trace);
    ok = write_file(chrome_path, chrome.str()) && ok;
    if (ok) std::printf("chrome trace: %s\n", chrome_path.c_str());
  }
  return ok ? 0 : 1;
}
