// life_optimizer: a miniature "student project" — take Game of Life,
// measure the byte-per-cell baseline, switch to the bit-packed engine,
// verify equivalence, and explain the win with arithmetic-intensity
// arguments (the project-report storyline from Section 5.1).
//
//   $ ./life_optimizer [generations]
#include <cstdio>
#include <cstdlib>

#include "perfeng/common/units.hpp"
#include "perfeng/kernels/life.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/measure/metrics.hpp"

int main(int argc, char** argv) {
  const int generations = argc > 1 ? std::atoi(argv[1]) : 16;
  if (generations < 1 || generations > 10000) {
    std::fprintf(stderr, "usage: %s [generations in 1..10000]\n", argv[0]);
    return 1;
  }

  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  const pe::BenchmarkRunner runner(cfg);

  const std::size_t rows = 512, cols = 512;
  pe::Rng rng(2017);
  pe::kernels::LifeGrid start(rows, cols);
  start.randomize(0.35, rng);

  // Milestone 1-2: baseline and plan (switch data layout).
  auto byte_state = start;
  const auto byte_time = runner.run("byte engine", [&] {
    byte_state = byte_state.step();
  });

  pe::kernels::LifeGridPacked packed_state(start);
  const auto packed_time = runner.run("bit-packed engine", [&] {
    packed_state = packed_state.step();
  });

  // Milestone 3: verify the optimization is an optimization, not a bug.
  pe::kernels::LifeGrid check = start;
  pe::kernels::LifeGridPacked packed_check(start);
  for (int g = 0; g < generations; ++g) {
    check = check.step();
    packed_check = packed_check.step();
  }
  const bool equivalent = packed_check.unpack() == check;

  const double cells = double(rows) * double(cols);
  std::printf("universe: %zux%zu, %d generations verified\n", rows, cols,
              generations);
  std::printf("byte engine:   %s/gen (%.0f Mcells/s)\n",
              pe::format_time(byte_time.typical()).c_str(),
              cells / byte_time.typical() / 1e6);
  std::printf("packed engine: %s/gen (%.0f Mcells/s)\n",
              pe::format_time(packed_time.typical()).c_str(),
              cells / packed_time.typical() / 1e6);
  std::printf("speedup: %.1fx, engines %s\n",
              pe::speedup(byte_time.typical(), packed_time.typical()),
              equivalent ? "agree exactly" : "DISAGREE (bug!)");
  std::puts(
      "\nwhy: the packed engine reads 1 bit/cell instead of >= 9 bytes "
      "of neighbours,\nraising arithmetic intensity by ~64x and computing "
      "64 cells per word-op.");
  return equivalent ? 0 : 1;
}
