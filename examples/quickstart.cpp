// Quickstart: measure a kernel, characterize the machine, and place the
// kernel on a Roofline — the toolbox's three core moves in ~40 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "perfeng/common/units.hpp"
#include "perfeng/kernels/stencil.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/microbench/machine_probe.hpp"
#include "perfeng/models/roofline.hpp"

int main() {
  // 1. A measurement design: warmups, repetitions, minimum batch time.
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 2;
  cfg.repetitions = 7;
  const pe::BenchmarkRunner runner(cfg);

  // 2. Measure a kernel (one 512x512 Jacobi sweep).
  pe::kernels::Grid2D grid(512, 512, 1.0), out(512, 512);
  const pe::Measurement m = runner.run("jacobi-512", [&] {
    pe::kernels::stencil_step_naive(grid, out);
  });
  std::printf("measured: %s median (+/- %s 95%% CI over %d reps)\n",
              pe::format_time(m.typical()).c_str(),
              pe::format_time(m.summary.ci95_half).c_str(),
              int(m.seconds.size()));

  // 3. Resolve the machine: PERFENG_MACHINE (preset name or saved JSON
  //    file), else characterize this host with microbenchmarks.
  const pe::machine::Machine machine_info =
      pe::microbench::resolve_or_probe(runner);
  std::printf("machine:  %s\n", machine_info.summary().c_str());

  // 4. Place the kernel on the machine's Roofline.
  const auto roofline =
      pe::models::RooflineModel::from_machine(machine_info);
  const pe::models::KernelCharacterization kernel{
      "jacobi-512", pe::kernels::stencil_flops(512, 512),
      /*bytes=*/512.0 * 512.0 * sizeof(double) * 2.0};
  const auto placement =
      pe::models::place_kernel(roofline, kernel, m.typical());
  std::printf(
      "roofline: %s-bound at %.2f FLOP/B, achieving %.1f%% of the "
      "attainable rate\n",
      placement.bound == pe::models::Bound::kMemory ? "memory" : "compute",
      kernel.intensity(), placement.efficiency * 100.0);
  return 0;
}
