// model_calibration: the Assignment 2 workflow — calibrate analytical
// matmul models from microbenchmarks, then check which granularity best
// explains the measurement (and bracket it with an ECM-style model).
//
//   $ ./model_calibration
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/measure/metrics.hpp"
#include "perfeng/microbench/machine_probe.hpp"
#include "perfeng/microbench/op_costs.hpp"
#include "perfeng/models/analytical.hpp"
#include "perfeng/models/ecm.hpp"

int main() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("calibrating (PERFENG_MACHINE or probe + per-op cost table)...");
  const pe::machine::Machine mc =
      pe::microbench::resolve_or_probe(runner);
  const auto ops = pe::microbench::OpCostTable::measure(runner);
  std::printf("-> %s  [calibration %s]\n\n", mc.summary().c_str(),
              mc.calibration_hash().c_str());

  const pe::models::Calibration calib =
      pe::models::Calibration::from_machine(mc);

  const std::size_t n = 192;
  pe::kernels::Matrix a(n, n), b(n, n), c(n, n);
  pe::Rng rng(3);
  a.randomize(rng);
  b.randomize(rng);
  const auto measured = runner.run("matmul ikj", [&] {
    pe::kernels::matmul_interchanged(a, b, c);
  });

  const pe::models::MatmulModel model(
      n, pe::models::MatmulVariant::kInterchangedIkj, calib);
  pe::Table t({"granularity", "prediction", "relative error %"});
  const double m = measured.typical();
  for (const auto& [name, prediction] :
       {std::pair<const char*, double>{"coarse (FLOPs/peak)",
                                       model.predict_coarse()},
        {"traffic (roofline-style)", model.predict_traffic()},
        {"instruction-level", model.predict_instruction(ops)}}) {
    t.add_row({name, pe::format_time(prediction),
               pe::format_fixed(pe::relative_error(prediction, m) * 100.0,
                                1)});
  }
  std::printf("measured median: %s\n", pe::format_time(m).c_str());
  std::fputs(t.render().c_str(), stdout);

  // ECM-style bracketing: in-core vs data-transfer time per invocation.
  pe::models::EcmModel ecm(model.predict_coarse());
  ecm.add_transfer("MEM", "core",
                   model.dram_bytes() / calib.dram_bandwidth);
  std::printf(
      "\nECM bracket: overlapped %s <= measured %s <= serial %s : %s\n",
      pe::format_time(ecm.predict_overlapped()).c_str(),
      pe::format_time(m).c_str(),
      pe::format_time(ecm.predict_serial()).c_str(),
      ecm.brackets(m, 0.5) ? "bracketed" : "outside (investigate!)");
  return 0;
}
