// roofline_report: the full seven-stage performance-engineering process
// applied to matrix multiplication (the Assignment 1 storyline), driven
// by the core Pipeline API and ending in a rendered report.
//
//   $ ./roofline_report [n]        (default n = 192)
#include <cstdio>
#include <cstdlib>

#include "perfeng/core/pipeline.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/microbench/machine_probe.hpp"

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 192;
  if (n < 8 || n > 1024) {
    std::fprintf(stderr, "usage: %s [n in 8..1024]\n", argv[0]);
    return 1;
  }

  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("resolving the machine (PERFENG_MACHINE, else probe)...");
  const pe::machine::Machine mc =
      pe::microbench::resolve_or_probe(runner);
  std::printf("-> %s  [calibration %s]\n\n", mc.summary().c_str(),
              mc.calibration_hash().c_str());

  pe::kernels::Matrix a(n, n), b(n, n), c(n, n);
  pe::Rng rng(1);
  a.randomize(rng);
  b.randomize(rng);

  pe::core::Pipeline pipeline(
      pe::models::RooflineModel::from_machine(mc), runner);
  pipeline.set_requirement(
      {"multiply " + std::to_string(n) + "^2 matrices 2x faster", 2.0});
  pipeline.set_baseline(
      {"ijk", "textbook loop order",
       [&] { pe::kernels::matmul_naive(a, b, c); }},
      {"matmul", pe::kernels::matmul_flops(n, n, n),
       pe::kernels::matmul_min_bytes(n, n, n)});
  pipeline.add_variant({"ikj", "interchange j and k loops",
                        [&] { pe::kernels::matmul_interchanged(a, b, c); }});
  pipeline.add_variant({"tiled-32", "cache blocking, 32x32 tiles",
                        [&] { pe::kernels::matmul_tiled(a, b, c, 32); }});
  pipeline.add_variant({"tiled-64", "cache blocking, 64x64 tiles",
                        [&] { pe::kernels::matmul_tiled(a, b, c, 64); }});

  const auto report = pipeline.run();
  std::fputs(report.render().c_str(), stdout);
  return 0;
}
