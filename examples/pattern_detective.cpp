// pattern_detective: the Assignment 4 workflow — replay kernels through
// the simulated-counter backend and let the pattern detectors explain
// what is wrong (and confirm the fix).
//
//   $ ./pattern_detective
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/counters/patterns.hpp"
#include "perfeng/counters/simulated_counters.hpp"
#include "perfeng/kernels/histogram.hpp"
#include "perfeng/kernels/pattern_kernels.hpp"
#include "perfeng/kernels/traces.hpp"

using namespace pe::counters;

int main() {
  std::vector<pe::sim::LevelSpec> specs;
  specs.push_back({pe::sim::CacheConfig{"L1", 8 * 1024, 64, 8}, 4.0});
  specs.push_back({pe::sim::CacheConfig{"L2", 64 * 1024, 64, 8}, 12.0});
  pe::sim::CacheHierarchy hierarchy(std::move(specs), 200.0);

  pe::Table t({"suspect", "pattern", "verdict", "evidence"});
  auto investigate = [&t](const char* suspect, const PatternReport& r) {
    t.add_row({suspect, pattern_name(r.pattern),
               r.detected ? "GUILTY" : "cleared", r.evidence});
  };

  // Case 1: a sweep that "should be memory-friendly".
  const auto strided = collect(hierarchy, [&] {
    pe::kernels::trace_strided(hierarchy, 1 << 15, 16);
  });
  investigate("stride-16 sweep", detect_bad_spatial_locality(strided));
  const auto sequential = collect(hierarchy, [&] {
    pe::kernels::trace_strided(hierarchy, 1 << 15, 1);
  });
  investigate("sequential sweep (fix)",
              detect_bad_spatial_locality(sequential));

  // Case 2: a histogram whose runtime "depends on the data".
  pe::Rng rng(5);
  const std::size_t bins = 1 << 15;
  const auto uniform = collect(hierarchy, [&] {
    pe::kernels::trace_histogram(
        hierarchy,
        pe::kernels::generate_uniform_indices(40000, bins, rng), bins);
  });
  investigate("histogram, uniform bins",
              detect_bad_spatial_locality(uniform));
  const auto zipf = collect(hierarchy, [&] {
    pe::kernels::trace_histogram(
        hierarchy,
        pe::kernels::generate_zipf_indices(40000, bins, 1.2, rng), bins);
  });
  investigate("histogram, zipf bins (hot set fits)",
              detect_bad_spatial_locality(zipf));

  // Case 3: a loop with a data-dependent branch.
  pe::sim::BranchPredictor predictor;
  pe::kernels::trace_branchy(predictor,
                             pe::kernels::random_doubles(30000, rng), 0.5);
  investigate("branchy sum, random data",
              detect_branch_unpredictability(
                  from_branches(predictor.stats())));
  predictor.reset();
  pe::kernels::trace_branchy(predictor,
                             pe::kernels::sorted_doubles(30000, rng), 0.5);
  investigate("branchy sum, sorted data (fix)",
              detect_branch_unpredictability(
                  from_branches(predictor.stats())));

  std::fputs(t.render().c_str(), stdout);
  return 0;
}
