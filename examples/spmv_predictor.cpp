// spmv_predictor: the Assignment 3 workflow as a tool — train a runtime
// predictor for CSR SpMV on synthetic matrices, then predict (and check)
// a configuration the model never saw.
//
//   $ ./spmv_predictor
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/sparse.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/statmodel/linear.hpp"
#include "perfeng/statmodel/tree.hpp"
#include "perfeng/statmodel/validation.hpp"

using pe::kernels::SparsityPattern;

namespace {

double measure_spmv(const pe::kernels::CsrMatrix& csr,
                    const pe::BenchmarkRunner& runner) {
  std::vector<double> x(csr.cols, 1.0), y(csr.rows);
  return runner.run("spmv", [&] { pe::kernels::spmv_csr(csr, x, y); })
      .typical();
}

}  // namespace

int main() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 3;
  const pe::BenchmarkRunner runner(cfg);
  pe::Rng rng(99);

  std::puts("collecting training data (27 configurations)...");
  pe::statmodel::Dataset data(pe::kernels::sparse_feature_names());
  for (const auto pattern :
       {SparsityPattern::kUniform, SparsityPattern::kBanded,
        SparsityPattern::kPowerLaw}) {
    for (std::size_t n : {400u, 900u, 1600u}) {
      for (double density : {0.004, 0.01, 0.025}) {
        const auto csr = pe::kernels::coo_to_csr(
            pe::kernels::generate_sparse(n, n, density, pattern, rng));
        data.add_row(pe::kernels::sparse_features(csr),
                     measure_spmv(csr, runner));
      }
    }
  }

  data.shuffle(rng);
  pe::statmodel::RandomForestRegressor forest(64);
  const auto cv = pe::statmodel::cross_validate(
      [] { return std::make_unique<pe::statmodel::RandomForestRegressor>(64); },
      data, 5);
  std::printf("5-fold CV of the forest: MAPE %.1f%%, R^2 %.3f\n",
              cv.mape * 100.0, cv.r2);
  forest.fit(data);

  std::puts("\npredicting an unseen configuration (1200x1200 banded, "
            "density 0.015):");
  const auto unseen = pe::kernels::coo_to_csr(pe::kernels::generate_sparse(
      1200, 1200, 0.015, SparsityPattern::kBanded, rng));
  const double predicted =
      forest.predict(pe::kernels::sparse_features(unseen));
  const double actual = measure_spmv(unseen, runner);
  std::printf("  predicted %s, measured %s (error %.1f%%)\n",
              pe::format_time(predicted).c_str(),
              pe::format_time(actual).c_str(),
              std::abs(predicted - actual) / actual * 100.0);
  return 0;
}
