// course_grades: a command-line grade calculator for the course's
// published grading scheme (Equations 1-3).
//
//   $ ./course_grades <Gp_app> <Gp_report> <Gp_pres> \
//                     <a1> <a2> <a3> <a4> <team_size> <Ge> <Sq>
//   $ ./course_grades 8 7 9  9 8 10 11  2  7.5 25
#include <cstdio>
#include <cstdlib>

#include "perfeng/course/grading.hpp"

int main(int argc, char** argv) {
  if (argc != 11) {
    std::fprintf(
        stderr,
        "usage: %s <Gp_app> <Gp_report> <Gp_pres> <a1> <a2> <a3> <a4> "
        "<team_size> <Ge> <Sq>\n"
        "example: %s 8 7 9  9 8 10 11  2  7.5 25\n",
        argv[0], argv[0]);
    // Run a demo instead of failing, so the example is self-contained.
    std::puts("\nrunning the demo scenario: 8 7 9  9 8 10 11  2  7.5 25");
    const double gp = pe::course::project_grade(8, 7, 9);
    const double ga =
        pe::course::assignments_grade({9, 8, 10, 11}, 2);
    const double g = pe::course::final_grade(gp, ga, 7.5, 25);
    std::printf("project %.2f, assignments %.2f, final %.2f (%s)\n", gp,
                ga, g, pe::course::passes(g) ? "pass" : "fail");
    return 0;
  }

  const double gp = pe::course::project_grade(
      std::atof(argv[1]), std::atof(argv[2]), std::atof(argv[3]));
  const double ga = pe::course::assignments_grade(
      {std::atof(argv[4]), std::atof(argv[5]), std::atof(argv[6]),
       std::atof(argv[7])},
      std::atoi(argv[8]));
  const double ge = std::atof(argv[9]);
  const double sq = std::atof(argv[10]);
  const double g = pe::course::final_grade(gp, ga, ge, sq);

  std::printf("project grade  (Eq. 2): %.2f\n", gp);
  std::printf("assignments    (Eq. 3): %.2f\n", ga);
  std::printf("final grade    (Eq. 1): %.2f -> %s\n", g,
              pe::course::passes(g) ? "PASS" : "FAIL");
  return 0;
}
