// distributed_stencil: a scale-out "project" on the simulated cluster —
// domain-decompose a Jacobi stencil over P ranks, predict iteration time
// with the alpha-beta model, validate against the message-passing
// simulator, and report the scaling sweet spot.
//
//   $ ./distributed_stencil [grid_edge]    (default 4096)
#include <cstdio>
#include <cstdlib>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/stencil.hpp"
#include "perfeng/models/network.hpp"
#include "perfeng/sim/netsim.hpp"

int main(int argc, char** argv) {
  const std::size_t edge =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 4096;
  if (edge < 64 || edge > (1u << 20)) {
    std::fprintf(stderr, "usage: %s [grid edge in 64..1048576]\n", argv[0]);
    return 1;
  }

  // Cluster parameters: 1 GFLOP/s effective per rank (stencil-realistic),
  // 10 us + 1 GB/s interconnect.
  const double rank_flops = 1e9;
  const pe::sim::NetworkCost cost{1e-5, 1e-9};
  const pe::models::AlphaBetaModel model{cost.alpha, cost.beta};

  const double total_flops = pe::kernels::stencil_flops(edge, edge);
  const std::size_t halo_bytes = edge * sizeof(double);  // one row each way

  std::printf("problem: %zu x %zu Jacobi sweep (%s per iteration), row "
              "decomposition\n",
              edge, edge, pe::format_count(total_flops).c_str());
  std::printf("cluster: %s/rank, alpha %s, beta 1/%s\n\n",
              pe::format_flops(rank_flops).c_str(),
              pe::format_time(cost.alpha).c_str(),
              pe::format_bandwidth(1.0 / cost.beta).c_str());

  pe::Table t({"ranks", "model time/iter", "simulated", "model speedup",
               "parallel efficiency %"});
  const double t1 = pe::models::strong_scaling_time(model, total_flops,
                                                    rank_flops, 1,
                                                    halo_bytes);
  for (unsigned p = 1; p <= 256; p *= 2) {
    const double tm = pe::models::strong_scaling_time(
        model, total_flops, rank_flops, p, halo_bytes);
    // Simulate exactly what the model charges: local compute + halo swap
    // + a scalar residual allreduce.
    pe::sim::MessageNetwork net(p, cost);
    pe::sim::simulate_halo_exchange(net, halo_bytes,
                                    total_flops / rank_flops / double(p));
    const double ts =
        pe::sim::simulate_ring_allreduce(net, sizeof(double));
    t.add_row({std::to_string(p), pe::format_time(tm),
               pe::format_time(ts), pe::format_fixed(t1 / tm, 2),
               pe::format_fixed(t1 / tm / double(p) * 100.0, 1)});
  }
  std::fputs(t.render().c_str(), stdout);

  const unsigned sweet = pe::models::strong_scaling_sweet_spot(
      model, total_flops, rank_flops, 4096, halo_bytes);
  std::printf(
      "\nsweet spot: %u ranks — beyond this, the per-iteration allreduce "
      "latency\noutgrows the shrinking compute slice.\n",
      sweet);
  return 0;
}
