// Scheduler observability experiment: capture a full scheduler trace of
// the packed matmul and balanced SpMV kernels, export it as collapsed
// flame-graph stacks + a Chrome trace_event timeline, and report the
// submit->start latency distribution (p50/p95/p99) with the per-lane
// contention profile (docs/observability.md).
//
// `--check` is the CI gate: it validates that both exports are
// well-formed (the capture round-trips through Trace::load, collapsed
// stacks carry parallel_for provenance frames, the Chrome JSON has the
// expected structure) and that the *disabled*-hook path — the one relaxed
// load + branch every dispatch site pays when no tracer is installed —
// adds less than 2% to bulk parallel_for chunk dispatch.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "perfeng/common/table.hpp"
#include "perfeng/common/trace_hook.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/kernels/sparse.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/experiment.hpp"
#include "perfeng/measure/timer.hpp"
#include "perfeng/microbench/scheduler.hpp"
#include "perfeng/observe/analysis.hpp"
#include "perfeng/observe/export.hpp"
#include "perfeng/observe/tracer.hpp"

namespace {

// Disabled-hook cost of one chunk's trace sites, measured with the exact
// structure BulkLoop::execute uses: the hook pointer is loaded once per
// job copy (amortizing the atomic load over all its chunks) and each chunk
// pays two PE_TRACE_EMIT_CACHED branches. Differential measurement — the
// same loop with and without the guard sites — isolates the guards from
// the loop scaffolding.
double measure_chunk_guard_ns(const pe::BenchmarkRunner& runner) {
  constexpr std::size_t kChunks = 4096;
  const pe::Measurement base = runner.run("trace.chunk_baseline", [] {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kChunks; ++i) {
      acc += i;
      pe::clobber_memory();
    }
    pe::do_not_optimize(acc);
  });
  const pe::Measurement guarded = runner.run("trace.chunk_guarded", [] {
    pe::TraceHook* const trace = pe::detail::trace_hook_fast();
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kChunks; ++i) {
      // obj must not be &acc: taking acc's address would force it to
      // memory and the delta would measure the spill, not the guards.
      PE_TRACE_EMIT_CACHED(trace, pe::TraceEventKind::kChunkStart, nullptr,
                           i, i + 1, 0, nullptr, 0);
      acc += i;
      PE_TRACE_EMIT_CACHED(trace, pe::TraceEventKind::kChunkFinish, nullptr,
                           i, i + 1, 0, nullptr, 0);
      pe::clobber_memory();
    }
    pe::do_not_optimize(acc);
  });
  // best() (min over batches), not typical(): we are subtracting two
  // sub-nanosecond-per-iteration loops, and any scheduling noise in either
  // median swamps the guards. The minimum is the classic low-noise
  // estimator for CPU-bound microbenches; the difference of minima is the
  // guards' true cost.
  const double delta = guarded.best() - base.best();
  return std::max(0.0, delta) * 1e9 / static_cast<double>(kChunks);
}

// Cost of one full guard (atomic acquire load + branch) — the spelling the
// per-loop and per-event scheduler sites use (kSubmit, kSteal, kPark, ...).
double measure_load_guard_ns(const pe::BenchmarkRunner& runner) {
  constexpr std::size_t kSites = 4096;
  const pe::Measurement m = runner.run("trace.guard_disabled", [] {
    for (std::size_t i = 0; i < kSites; ++i) {
      PE_TRACE_EMIT(pe::TraceEventKind::kSubmit, nullptr, 0, 0, 0);
      pe::clobber_memory();
    }
  });
  return m.best() * 1e9 / static_cast<double>(kSites);
}

struct TracedKernels {
  double matmul_ms = 0.0;
  double spmv_ms = 0.0;
};

// The two kernels the acceptance criteria name, run under the installed
// tracer: packed matmul exercises the static bulk path; balanced SpMV on a
// power-law matrix exercises the nnz-balanced static partition.
TracedKernels run_traced_kernels(pe::ThreadPool& pool) {
  using namespace pe::kernels;
  TracedKernels out;

  pe::Rng rng(42);
  const std::size_t n = 192;
  Matrix a(n, n), b(n, n), c(n, n);
  a.randomize(rng);
  b.randomize(rng);
  {
    // Small panels force several pack/compute sweeps per multiply, so the
    // trace carries many chunks rather than one giant block per worker.
    const MatmulBlocking blocking{.mc = 32, .kc = 64, .nc = 64};
    pe::WallTimer t;
    for (int rep = 0; rep < 3; ++rep)
      matmul_parallel_packed(a, b, c, pool, blocking);
    out.matmul_ms = t.elapsed() * 1e3 / 3.0;
    pe::do_not_optimize(c(0, 0));
  }

  const CsrMatrix csr = coo_to_csr(
      generate_sparse(20000, 20000, 2e-3, SparsityPattern::kPowerLaw, rng));
  std::vector<double> x(csr.cols, 1.0), y(csr.rows, 0.0);
  {
    pe::WallTimer t;
    for (int rep = 0; rep < 5; ++rep)
      spmv_csr_parallel_balanced(csr, x, y, pool);
    out.spmv_ms = t.elapsed() * 1e3 / 5.0;
    pe::do_not_optimize(y[0]);
  }
  return out;
}

bool check_collapsed(const std::string& folded) {
  if (folded.empty()) {
    std::fprintf(stderr, "CHECK: collapsed output is empty\n");
    return false;
  }
  bool saw_provenance = false;
  std::istringstream in(folded);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      std::fprintf(stderr, "CHECK: collapsed line %zu has no weight\n",
                   lineno);
      return false;
    }
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      if (line[i] < '0' || line[i] > '9') {
        std::fprintf(stderr,
                     "CHECK: collapsed line %zu weight is not a number\n",
                     lineno);
        return false;
      }
    }
    if (line.find("parallel_for@") != std::string::npos)
      saw_provenance = true;
  }
  if (!saw_provenance) {
    std::fprintf(stderr,
                 "CHECK: no parallel_for provenance frame in any stack\n");
    return false;
  }
  return true;
}

bool check_chrome(const std::string& json) {
  const auto has = [&](const char* needle) {
    return json.find(needle) != std::string::npos;
  };
  if (!has("\"traceEvents\"") || !has("\"ph\":\"X\"") ||
      !has("thread_name")) {
    std::fprintf(stderr, "CHECK: chrome trace missing required structure\n");
    return false;
  }
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (depth < 0) break;
  }
  if (depth != 0) {
    std::fprintf(stderr, "CHECK: chrome trace braces unbalanced\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--out <dir>]\n", argv[0]);
      return 2;
    }
  }

  std::puts("== Scheduler trace: packed matmul + balanced SpMV ==\n");

  // At least four workers even on a small CI box: a 1-worker pool takes the
  // inline dispatch path and the trace would carry no submits, steals or
  // parks — the very things this driver exists to capture.
  pe::ThreadPool pool(
      std::max<std::size_t>(4, pe::ThreadPool::default_thread_count()));
  pe::observe::TracerConfig tcfg;
  tcfg.lanes = pool.size() + 1;
  pe::observe::Tracer tracer(tcfg);

  TracedKernels timings;
  {
    pe::observe::ScopedTrace scope(tracer);
    timings = run_traced_kernels(pool);
  }
  const pe::observe::Trace trace = tracer.take();
  const pe::observe::TraceSummary summary = pe::observe::summarize(trace);
  std::printf("%s\n\n", summary.one_line().c_str());

  const pe::observe::LatencyReport latency =
      pe::observe::scheduler_latency(trace);
  std::fputs(latency.to_table().render().c_str(), stdout);
  std::puts("");
  std::fputs(pe::observe::contention_profile(trace).to_table().render().c_str(),
             stdout);

  // The trace aggregates travel as experiment provenance, next to the
  // machine name and calibration hash — same contract as every probe.
  pe::Experiment exp("scheduler_trace");
  exp.add_factor("kernel", {"matmul_packed", "spmv_balanced"});
  exp.set_metrics({"time_ms"});
  exp.set_machine(pe::machine::resolve_or_preset("laptop-x86"));
  pe::observe::annotate(exp, summary);
  exp.record({{"kernel", "matmul_packed"}}, {timings.matmul_ms});
  exp.record({{"kernel", "spmv_balanced"}}, {timings.spmv_ms});
  std::puts("");
  std::fputs(exp.to_table().render().c_str(), stdout);

  // Exports: the raw capture, collapsed flame-graph stacks, Chrome JSON.
  const std::string capture_path = out_dir + "/scheduler_trace.jsonl";
  const std::string folded_path = out_dir + "/scheduler_trace.folded";
  const std::string chrome_path = out_dir + "/scheduler_trace.chrome.json";
  std::ostringstream folded_ss, chrome_ss;
  pe::observe::write_collapsed(folded_ss, trace);
  pe::observe::write_chrome_trace(chrome_ss, trace);
  try {
    trace.save_file(capture_path);
    std::ofstream(folded_path, std::ios::binary) << folded_ss.str();
    std::ofstream(chrome_path, std::ios::binary) << chrome_ss.str();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot write exports: %s\n", e.what());
    return 2;
  }
  std::printf("\nexports: %s, %s, %s\n", capture_path.c_str(),
              folded_path.c_str(), chrome_path.c_str());

  if (!check) return 0;

  // --- CI gate ------------------------------------------------------------
  bool ok = true;

  if (trace.count(pe::TraceEventKind::kChunkStart) == 0) {
    std::fprintf(stderr, "CHECK: no chunk events captured\n");
    ok = false;
  }
  if (latency.samples_ns.empty()) {
    std::fprintf(stderr, "CHECK: no latency samples matched\n");
    ok = false;
  } else if (!(latency.p50_ns <= latency.p95_ns &&
               latency.p95_ns <= latency.p99_ns)) {
    std::fprintf(stderr, "CHECK: latency percentiles not monotone\n");
    ok = false;
  }
  ok = check_collapsed(folded_ss.str()) && ok;
  ok = check_chrome(chrome_ss.str()) && ok;

  // Round-trip: the saved capture must reload to the same event stream.
  try {
    std::ifstream in(capture_path, std::ios::binary);
    const pe::observe::Trace reloaded = pe::observe::Trace::load(in);
    if (reloaded.events.size() != trace.events.size()) {
      std::fprintf(stderr, "CHECK: capture round-trip lost events\n");
      ok = false;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "CHECK: capture reload failed: %s\n", e.what());
    ok = false;
  }

  // Disabled-hook overhead on bulk dispatch. Per chunk the disabled path
  // pays the two PE_TRACE_EMIT_CACHED branches in BulkLoop::execute
  // (measured differentially with that exact structure); the atomic-load
  // guards fire per *loop* (kSubmit, kLoopBegin/End) and per job copy (the
  // one cached load), so they amortize over every chunk of the loop.
  // Total must stay under 2% of the measured per-chunk dispatch cost.
  pe::MeasurementConfig mcfg;
  mcfg.warmup_runs = 2;
  mcfg.repetitions = 11;
  mcfg.min_batch_seconds = 2e-3;
  const pe::BenchmarkRunner runner(mcfg);
  const double chunk_guard_ns = measure_chunk_guard_ns(runner);
  const double load_guard_ns = measure_load_guard_ns(runner);
  const auto probe = pe::microbench::probe_scheduler(runner);
  // Per-loop sites: kSubmit + kLoopBegin + kLoopEnd, plus one cached hook
  // load per job copy (== pool size) and per participating caller.
  const double amortized_ns =
      load_guard_ns * (3.0 + static_cast<double>(probe.pool_threads) + 1.0) /
      static_cast<double>(probe.tasks);
  const double per_chunk_ns = chunk_guard_ns + amortized_ns;
  const double overhead_pct = 100.0 * per_chunk_ns / probe.bulk_ns;
  std::printf(
      "\ndisabled-hook cost: %.3f ns/chunk (cached branches) + %.4f ns/chunk "
      "(amortized per-loop guards); bulk dispatch %.1f ns/chunk -> %.2f%% "
      "overhead\n",
      chunk_guard_ns, amortized_ns, probe.bulk_ns, overhead_pct);
  if (!(overhead_pct < 2.0)) {
    std::fprintf(stderr, "CHECK FAILED: disabled-hook overhead %.2f%% >= 2%%\n",
                 overhead_pct);
    ok = false;
  }

  if (!ok) {
    std::puts("\nCHECK FAILED");
    return 1;
  }
  std::puts("\nCHECK OK");
  return 0;
}
