// Instruction-scheduler simulation (the IACA/OSACA/llvm-mca topic):
// sweep accumulator counts through the pipeline simulator and compare
// with the wall-clock peak-FLOPS microbenchmark — model vs machine for
// the Assignment 2 unrolling lesson.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/microbench/peak_flops.hpp"
#include "perfeng/sim/pipeline_sim.hpp"

int main() {
  std::puts("== Instruction scheduling: pipeline model vs measured "
            "unrolling curve ==\n");

  // Model: 2 FMA ports, latency 4 (a generic modern core).
  const int ports = 2;
  const double latency = 4.0;
  pe::Table model({"accumulator chains", "cycles/iter (sim)",
                   "cycles/element", "bottleneck"});
  for (int chains : {1, 2, 4, 8, 12, 16}) {
    const auto report =
        pe::sim::PipelineSimulator::fma_reduction(chains, ports, latency)
            .run();
    model.add_row({std::to_string(chains),
                   pe::format_fixed(report.cycles_per_iteration, 2),
                   pe::format_fixed(
                       report.cycles_per_iteration / chains, 3),
                   report.bottleneck()});
  }
  std::printf("Simulated core: %d FMA ports, latency %.0f cycles\n", ports,
              latency);
  std::fputs(model.render().c_str(), stdout);

  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  cfg.min_batch_seconds = 2e-3;
  const pe::BenchmarkRunner runner(cfg);
  pe::Table measured({"accumulator chains", "measured GFLOP/s",
                      "vs 1 chain"});
  double base = 0.0;
  for (std::size_t chains : {1u, 2u, 4u, 8u, 12u, 16u}) {
    const auto r = pe::microbench::run_peak_flops(chains, runner);
    if (base == 0.0) base = r.flops;
    measured.add_row({std::to_string(chains),
                      pe::format_fixed(r.flops / 1e9, 2),
                      pe::format_fixed(r.flops / base, 2)});
  }
  std::puts("\nMeasured multiply-add unrolling curve on this host:");
  std::fputs(measured.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: per-element cost falls as latency/chains until "
      "the ports\nsaturate (model), and measured FLOP/s rises with "
      "independent chains until the\nhost's real FMA throughput is "
      "reached.");
  return 0;
}
