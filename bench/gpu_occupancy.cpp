// GPU-side modeling (the course's accelerator half): the occupancy
// calculator and the latency-hiding bandwidth curve — why "more threads
// than cores" is the whole point of a GPU.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/models/gpu.hpp"

using namespace pe::models;

int main() {
  std::puts("== GPU occupancy and latency hiding ==\n");
  const GpuSmConfig sm;  // 64 warps, 32 blocks, 64K regs, 96K smem per SM
  std::printf(
      "SM: %u warps, %u blocks, %llu regs, %s shared memory\n\n",
      sm.max_warps, sm.max_blocks,
      static_cast<unsigned long long>(sm.registers),
      pe::format_bytes(sm.shared_memory).c_str());

  pe::Table occ_table({"threads/block", "regs/thread", "smem/block",
                       "blocks/SM", "occupancy %", "limited by"});
  struct Config {
    unsigned threads, regs;
    std::uint64_t smem;
  };
  const Config configs[] = {
      {256, 32, 0},        {256, 64, 0},        {256, 128, 0},
      {64, 32, 0},         {32, 16, 0},         {128, 32, 32 * 1024},
      {1024, 64, 48 * 1024},
  };
  for (const Config& cfg : configs) {
    const auto occ = occupancy(sm, {cfg.threads, cfg.regs, cfg.smem});
    occ_table.add_row({std::to_string(cfg.threads),
                       std::to_string(cfg.regs),
                       pe::format_bytes(cfg.smem),
                       std::to_string(occ.blocks_per_sm),
                       pe::format_fixed(occ.fraction * 100.0, 1),
                       occ.limiter});
  }
  std::puts("Occupancy calculator (kernel resource sweep):");
  std::fputs(occ_table.render().c_str(), stdout);

  // Latency hiding, calibrated from an accelerator machine description.
  const pe::machine::Machine gpu_desc =
      pe::machine::resolve_or_preset("das5-gpu");
  const auto hiding = LatencyHidingModel::from_machine(gpu_desc);
  const std::size_t access = gpu_desc.dram().line_bytes;
  pe::Table bw({"warps/SM", "achievable bandwidth", "% of peak"});
  for (unsigned warps : {1u, 4u, 8u, 16u, 32u, 48u, 64u}) {
    const double achieved = hiding.achievable(warps, access);
    bw.add_row({std::to_string(warps), pe::format_bandwidth(achieved),
                pe::format_fixed(achieved / hiding.peak_bandwidth * 100.0,
                                 1)});
  }
  std::printf("\nLatency hiding (%s: %u SMs, %.0f ns latency, %zu B "
              "accesses; override with %s):\n",
              gpu_desc.name.c_str(), hiding.num_sms,
              hiding.memory_latency * 1e9, access,
              pe::machine::kMachineEnv);
  std::fputs(bw.render().c_str(), stdout);
  std::printf("\nwarps/SM needed to saturate the peak: %u\n",
              hiding.saturation_warps(access));
  std::puts(
      "\nExpected shape: occupancy collapses under register/smem "
      "pressure; bandwidth\nscales linearly with resident warps until "
      "Little's law meets the peak — the\ntwo curves every CUDA "
      "optimization guide draws.");
  return 0;
}
