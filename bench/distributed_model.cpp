// Scale-out topic: the alpha-beta communication model against the
// message-passing simulator, plus the strong-scaling crossover.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/models/network.hpp"
#include "perfeng/sim/netsim.hpp"

int main() {
  const pe::sim::NetworkCost cost{5e-6, 1e-9};  // 5 us latency, 1 GB/s
  const pe::models::AlphaBetaModel model{cost.alpha, cost.beta};

  std::puts("== Distributed systems: alpha-beta model vs simulated "
            "message passing ==\n");
  std::printf("network: alpha=%s, beta=1/%s\n\n",
              pe::format_time(cost.alpha).c_str(),
              pe::format_bandwidth(1.0 / cost.beta).c_str());

  pe::Table coll({"collective", "ranks", "bytes", "model", "simulated",
                  "ratio"});
  for (unsigned p : {2u, 4u, 8u, 16u}) {
    for (std::size_t bytes : {std::size_t{64}, std::size_t{1} << 20}) {
      {
        pe::sim::MessageNetwork net(p, cost);
        const double sim = pe::sim::simulate_broadcast(net, bytes);
        const double pred = model.broadcast(p, bytes);
        coll.add_row({"broadcast", std::to_string(p),
                      std::to_string(bytes), pe::format_time(pred),
                      pe::format_time(sim),
                      pe::format_fixed(sim / pred, 2)});
      }
      {
        pe::sim::MessageNetwork net(p, cost);
        const double sim = pe::sim::simulate_ring_allreduce(net, bytes);
        const double pred = model.ring_allreduce(p, bytes);
        coll.add_row({"ring allreduce", std::to_string(p),
                      std::to_string(bytes), pe::format_time(pred),
                      pe::format_time(sim),
                      pe::format_fixed(sim / pred, 2)});
      }
    }
  }
  std::fputs(coll.render().c_str(), stdout);

  std::puts("\nStrong scaling of a halo-exchange iteration (model vs "
            "simulation):");
  pe::Table scaling({"ranks", "model time", "simulated time",
                     "model speedup", "sim speedup"});
  const double total_flops = 2e8;
  const double rank_flops = 1e9;  // per-rank compute rate
  const std::size_t halo = 64 * 1024;
  const double t1_model =
      pe::models::strong_scaling_time(model, total_flops, rank_flops, 1,
                                      halo);
  double t1_sim = 0.0;
  for (unsigned p : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double tm = pe::models::strong_scaling_time(
        model, total_flops, rank_flops, p, halo);
    pe::sim::MessageNetwork net(p, cost);
    const double compute = total_flops / rank_flops / double(p);
    double ts = pe::sim::simulate_halo_exchange(net, halo, compute);
    if (p == 1) t1_sim = ts;
    scaling.add_row({std::to_string(p), pe::format_time(tm),
                     pe::format_time(ts),
                     pe::format_fixed(t1_model / tm, 2),
                     pe::format_fixed(t1_sim / ts, 2)});
  }
  std::fputs(scaling.render().c_str(), stdout);

  const unsigned sweet = pe::models::strong_scaling_sweet_spot(
      model, total_flops, rank_flops, 1024, halo);
  std::printf("\nModel sweet spot for this problem: %u ranks\n", sweet);
  std::puts(
      "\nExpected shape (paper): model and simulation agree on who wins "
      "and where\ncommunication overhead flattens the strong-scaling "
      "curve.");
  return 0;
}
