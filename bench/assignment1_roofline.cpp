// Assignment 1: the Roofline model over matrix-multiplication versions.
//
// Calibrates machine ceilings with the microbenchmark suite, measures the
// sequential/optimized/parallel matmul variants across input sizes, and
// places every (variant, n) point on the roofline — demonstrating, as the
// assignment requires, that the model captures different versions of the
// same code.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/microbench/machine_probe.hpp"
#include "perfeng/models/roofline.hpp"

int main() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  cfg.min_batch_seconds = 5e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("== Assignment 1: Roofline model of matmul versions ==\n");
  std::printf("Resolving machine (%s=<preset|file>, else probe)...\n",
              pe::machine::kMachineEnv);
  pe::microbench::ProbeConfig probe;
  probe.stream_elements = 1 << 21;  // 16 MiB working set
  probe.latency_max_bytes = 1 << 22;
  const pe::machine::Machine desc =
      pe::microbench::resolve_or_probe(runner, probe);
  std::printf("machine: %s\n", desc.summary().c_str());
  std::printf("calibration: %s\n\n", desc.calibration_hash().c_str());

  const auto machine = pe::models::RooflineModel::from_machine(desc);

  std::puts("Roofline curve (attainable FLOP/s by arithmetic intensity):");
  pe::Table curve({"intensity FLOP/B", "attainable", "bound"});
  for (const auto& pt : machine.curve(0.05, 64.0, 12)) {
    curve.add_row({pe::format_sig(pt.intensity, 3),
                   pe::format_flops(pt.attainable_flops),
                   machine.bound_at(pt.intensity) ==
                           pe::models::Bound::kMemory
                       ? "memory"
                       : "compute"});
  }
  std::fputs(curve.render().c_str(), stdout);

  pe::Table t({"n", "variant", "median time", "GFLOP/s", "intensity",
               "bound", "roofline %", "speedup vs ijk"});
  pe::ThreadPool pool;
  for (std::size_t n : {128u, 256u}) {
    pe::kernels::Matrix a(n, n), b(n, n), c(n, n);
    pe::Rng rng(n);
    a.randomize(rng);
    b.randomize(rng);

    const double flops = pe::kernels::matmul_flops(n, n, n);
    const double bytes = pe::kernels::matmul_min_bytes(n, n, n);
    const pe::models::KernelCharacterization kc{"matmul", flops, bytes};

    struct VariantRow {
      const char* name;
      std::function<void()> kernel;
    };
    const VariantRow variants[] = {
        {"ijk (naive)", [&] { pe::kernels::matmul_naive(a, b, c); }},
        {"ikj (interchange)",
         [&] { pe::kernels::matmul_interchanged(a, b, c); }},
        {"tiled(64)", [&] { pe::kernels::matmul_tiled(a, b, c, 64); }},
        {"parallel",
         [&] { pe::kernels::matmul_parallel(a, b, c, pool, 64); }},
    };

    double baseline = 0.0;
    for (const auto& v : variants) {
      const auto m = runner.run(v.name, v.kernel);
      if (baseline == 0.0) baseline = m.typical();
      const auto placement =
          pe::models::place_kernel(machine, kc, m.typical());
      t.add_row({std::to_string(n), v.name, pe::format_time(m.typical()),
                 pe::format_fixed(placement.measured_flops / 1e9, 3),
                 pe::format_sig(kc.intensity(), 3),
                 placement.bound == pe::models::Bound::kMemory ? "memory"
                                                               : "compute",
                 pe::format_fixed(placement.efficiency * 100.0, 1),
                 pe::format_fixed(baseline / m.typical(), 2)});
    }
  }
  std::puts("\nMeasured placements:");
  std::fputs(t.render().c_str(), stdout);
  std::puts(
      "\nExpected shape (paper): optimized versions raise achieved "
      "GFLOP/s toward the\nroof, and the model separates versions of the "
      "same code.");
  return 0;
}
