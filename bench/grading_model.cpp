// Regenerates the behaviour of the grading formulas (Equations 1-3):
// final-grade sweeps over component grades, the team-size normalizers,
// and the quiz-bonus effect.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/course/grading.hpp"

using namespace pe::course;

int main() {
  std::puts("== Equations 1-3: the grading model ==\n");

  {
    pe::Table t({"Gp (project)", "Ga (assign.)", "Ge (exam)", "Sq (quiz)",
                 "final grade", "passes"});
    for (double gp : {4.0, 6.0, 8.0, 10.0}) {
      for (double ga : {5.0, 8.0}) {
        for (double ge : {5.0, 7.5}) {
          const double g = final_grade(gp, ga, ge, 20.0);
          t.add_row({pe::format_fixed(gp, 1), pe::format_fixed(ga, 1),
                     pe::format_fixed(ge, 1), "20",
                     pe::format_fixed(g, 2), passes(g) ? "yes" : "no"});
        }
      }
    }
    std::puts("Equation 1: G = max(1, min(10, 0.5 Gp + 0.3 Ga + 0.3 (Ge + "
              "Sq/70)))");
    std::fputs(t.render().c_str(), stdout);
  }

  {
    pe::Table t({"application", "report", "presentations", "Gp"});
    for (double app : {6.0, 8.0, 10.0})
      for (double rep : {6.0, 9.0})
        t.add_row({pe::format_fixed(app, 1), pe::format_fixed(rep, 1),
                   pe::format_fixed(8.0, 1),
                   pe::format_fixed(project_grade(app, rep, 8.0), 2)});
    std::puts("\nEquation 2: Gp = 0.4 Gp^a + 0.3 Gp^r + 0.3 Gp^t");
    std::fputs(t.render().c_str(), stdout);
  }

  {
    pe::Table t({"points (of 10/9/11/12)", "team size", "normalizer",
                 "Ga"});
    const std::array<double, 4> full = {10, 9, 11, 12};
    const std::array<double, 4> half = {5, 4.5, 5.5, 6};
    for (int team = 1; team <= 4; ++team) {
      t.add_row({"42 (full)", std::to_string(team),
                 pe::format_fixed(assignment_normalizer(team), 0),
                 pe::format_fixed(assignments_grade(full, team), 2)});
      t.add_row({"21 (half)", std::to_string(team),
                 pe::format_fixed(assignment_normalizer(team), 0),
                 pe::format_fixed(assignments_grade(half, team), 2)});
    }
    std::puts("\nEquation 3: Ga = 10 * sum(points) / N(team size)");
    std::fputs(t.render().c_str(), stdout);
  }

  std::puts("\nShape check vs the paper: a typical student (project 8, "
            "assignments 8, exam 7.5)");
  const double typical = final_grade(8.0, 8.0, 7.5, 20.0);
  std::printf("scores %.2f -- matching the reported average of ~8.\n",
              typical);
  return 0;
}
