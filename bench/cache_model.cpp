// Simulation topic: cache-simulator miss counts for the matmul loop
// orders and strided sweeps, against the analytical traffic model — the
// "simulation and simulators" lecture in executable form.
#include <algorithm>
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/counters/attribution.hpp"
#include "perfeng/counters/simulated_counters.hpp"
#include "perfeng/kernels/traces.hpp"
#include "perfeng/kernels/transpose.hpp"
#include "perfeng/models/analytical.hpp"

using pe::kernels::TraceVariant;

namespace {

pe::sim::CacheHierarchy scaled_hierarchy() {
  // Scaled-down hierarchy (2 KiB L1 / 64 KiB L2) so modest trace sizes
  // exercise every level; the analytical model is fed the same geometry.
  std::vector<pe::sim::LevelSpec> specs;
  specs.push_back({pe::sim::CacheConfig{"L1", 2 * 1024, 64, 8}, 4.0});
  specs.push_back({pe::sim::CacheConfig{"L2", 64 * 1024, 64, 8}, 12.0});
  return pe::sim::CacheHierarchy(std::move(specs), 200.0);
}

}  // namespace

int main() {
  std::puts("== Cache simulation vs analytical traffic model ==\n");

  const std::size_t n = 48;
  pe::Table mm({"matmul variant", "accesses", "L1 miss %", "L2 miss %",
                "DRAM lines", "sim DRAM bytes", "model DRAM bytes"});

  pe::models::Calibration calib;
  calib.cache_bytes = 64 * 1024;  // model knows the L2 capacity
  calib.line_bytes = 64;

  struct Row {
    TraceVariant trace;
    pe::models::MatmulVariant model;
    const char* name;
  };
  const Row rows[] = {
      {TraceVariant::kNaiveIjk, pe::models::MatmulVariant::kNaiveIjk,
       "ijk (naive)"},
      {TraceVariant::kInterchangedIkj,
       pe::models::MatmulVariant::kInterchangedIkj, "ikj (interchange)"},
      {TraceVariant::kTiled, pe::models::MatmulVariant::kTiled,
       "tiled(8)"},
  };
  for (const auto& row : rows) {
    auto h = scaled_hierarchy();
    pe::kernels::trace_matmul(h, n, row.trace, 8);
    const auto s = h.stats();
    const pe::models::MatmulModel model(n, row.model, calib);
    mm.add_row(
        {row.name, std::to_string(s.total_accesses),
         pe::format_fixed(s.levels[0].miss_rate() * 100.0, 1),
         pe::format_fixed(s.levels[1].miss_rate() * 100.0, 1),
         std::to_string(s.dram_accesses),
         pe::format_bytes(s.dram_accesses * 64),
         pe::format_bytes(std::uint64_t(model.dram_bytes()))});
  }
  std::fputs(mm.render().c_str(), stdout);

  std::puts("\nStrided sweep: simulated misses track the stride:");
  pe::Table strided({"stride (doubles)", "L1 misses", "L1 miss %",
                     "expected miss %"});
  const std::size_t elements = 1 << 15;
  for (std::size_t stride : {1u, 2u, 4u, 8u, 16u}) {
    auto h = scaled_hierarchy();
    pe::kernels::trace_strided(h, elements, stride);
    const auto s = h.stats();
    const double expected = std::min(1.0, double(stride) / 8.0) * 100.0;
    strided.add_row({std::to_string(stride),
                     std::to_string(s.levels[0].misses()),
                     pe::format_fixed(s.levels[0].miss_rate() * 100.0, 1),
                     pe::format_fixed(expected, 1)});
  }
  std::fputs(strided.render().c_str(), stdout);

  std::puts("\nTranspose: the canonical blocking example (256x256):");
  pe::Table tr({"variant", "L1 miss %", "DRAM lines", "top cycle sink"});
  for (const auto& [name, block] :
       {std::pair<const char*, std::size_t>{"naive", 0}, {"blocked(8)", 8}}) {
    auto h = scaled_hierarchy();
    pe::kernels::trace_transpose(h, 256, 256, block);
    const auto counters = pe::counters::from_hierarchy(h.stats());
    const auto shares = pe::counters::attribute_cycles(counters);
    const auto top = std::max_element(
        shares.begin(), shares.end(),
        [](const auto& a, const auto& b) { return a.share < b.share; });
    tr.add_row({name,
                pe::format_fixed(h.stats().levels[0].miss_rate() * 100.0, 1),
                std::to_string(h.stats().dram_accesses),
                top->level + " (" +
                    pe::format_fixed(top->share * 100.0, 0) + "%)"});
  }
  std::fputs(tr.render().c_str(), stdout);
  std::puts(
      "\nExpected shape (paper): the naive loop order pays roughly a "
      "full line per B\nelement; interchange and tiling collapse DRAM "
      "traffic, exactly as the\nanalytical model predicts; strided miss "
      "rates follow stride/8 up to one miss\nper access; blocking turns "
      "the transpose's DRAM-dominated cycle profile into a\ncache-"
      "dominated one.");
  return 0;
}
