// Validation experiment for the compositional prediction system
// (perfeng/models/composition): pattern trees built from measured leaves
// must predict what the machine, the simulators, and the service layer
// actually do.
//
// Five scenarios:
//   1. map      — K tiled-matmul tiles over `parallel_for` (dynamic,
//                 grain 1), traced through `pe::observe`; predicted by
//                 map(leaf, K) under a scheduler-probe-calibrated context.
//   2. farm     — J matmul jobs through `ThreadPool::submit`; predicted
//                 by farm(leaf, J, pool width).
//   3. pipeline — a three-stage software pipeline (stage threads handing
//                 items downstream); predicted by pipeline(stages, items).
//   4. sim      — a distributed pipeline with alpha-beta hops checked
//                 against `sim::simulate_pipeline` (netsim), and a
//                 heterogeneous job map checked against a discrete-event
//                 list scheduler on `sim::EventSimulator` (DES).
//   5. service  — a submission campaign as a composition: the
//                 wait+service pipeline must reproduce the M/M/c closed
//                 form exactly, and a farm over calibrated submissions
//                 must predict a measured `pe::service` batch campaign.
//
// Measured scenarios assert a [0.5x, 2x] band — the models are structural
// estimates, not fits; the simulator and closed-form cross-checks are
// deterministic and must agree much tighter. `--check` exits non-zero on
// any violation (the CI gate); `--json <path>` writes the pe-bench-v1
// snapshot checked in at bench/snapshots/BENCH_composition.json, whose
// ratio scalars record the band actually observed.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/machine/machine.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/bench_json.hpp"
#include "perfeng/measure/timer.hpp"
#include "perfeng/microbench/scheduler.hpp"
#include "perfeng/models/composition/node.hpp"
#include "perfeng/models/composition/patterns.hpp"
#include "perfeng/models/queuing.hpp"
#include "perfeng/observe/tracer.hpp"
#include "perfeng/parallel/parallel_for.hpp"
#include "perfeng/parallel/thread_pool.hpp"
#include "perfeng/service/service.hpp"
#include "perfeng/sim/des.hpp"
#include "perfeng/sim/netsim.hpp"

namespace {

namespace comp = pe::models::composition;
using comp::Context;
using comp::NodePtr;
using pe::models::Evaluation;
using pe::models::ModelEval;

int g_violations = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what);
    ++g_violations;
  }
}

/// One validated scenario row: the prediction, the ground truth, and the
/// band the comparison must stay inside.
struct Scenario {
  std::string name;
  double predicted = 0.0;
  double measured = 0.0;
  double band = 2.0;  ///< measured/predicted must lie in [1/band, band]

  [[nodiscard]] double ratio() const { return measured / predicted; }
};

std::vector<Scenario> g_scenarios;

void record(const std::string& name, double predicted, double measured,
            double band = 2.0) {
  g_scenarios.push_back({name, predicted, measured, band});
  const double r = measured / predicted;
  if (!(predicted > 0.0 && r >= 1.0 / band && r <= band)) {
    std::fprintf(stderr,
                 "CHECK FAILED: %s: measured/predicted = %.3f outside "
                 "[%.3f, %.3f]\n",
                 name.c_str(), r, 1.0 / band, band);
    ++g_violations;
  }
}

/// Median of a few repetitions — robust against one preempted run.
double median_seconds(int reps, const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    pe::WallTimer timer;
    fn();
    samples.push_back(timer.elapsed());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// A leaf from a measured serial time: composition validated against the
/// machine tests the *algebra*, not the kernel model underneath.
NodePtr measured_leaf(const std::string& name, double seconds,
                      double flops, double bytes) {
  Evaluation e;
  e.seconds = seconds;
  e.footprint.flops = flops;
  e.footprint.bytes = bytes;
  return comp::leaf(ModelEval::constant(name, e));
}

/// Cores the OS can actually run concurrently — predictions must not
/// assume more parallelism than the host has.
unsigned hardware_width() {
  return std::max(1u, std::thread::hardware_concurrency());
}

/// Scenario 1: map of matmul tiles over parallel_for, under a trace.
void validate_map(pe::ThreadPool& pool, Context ctx) {
  // parallel_for's bulk path executes chunks on the submitting thread
  // too, so the effective width is one more than the pool's workers.
  ctx.workers = std::min(static_cast<unsigned>(pool.size()) + 1,
                         hardware_width());
  const std::size_t n = 96;
  const std::size_t tiles = 8 * pool.size();
  const pe::kernels::Matrix a(n, n, 1.0 / 3.0), b(n, n, 2.0 / 7.0);
  std::vector<pe::kernels::Matrix> cs(tiles, pe::kernels::Matrix(n, n));

  pe::kernels::Matrix warm(n, n);
  const double tile_seconds = median_seconds(
      7, [&] { pe::kernels::matmul_tiled(a, b, warm); });
  const double nd = static_cast<double>(n);
  const NodePtr tree =
      comp::map(measured_leaf("kernel.matmul_tiled", tile_seconds,
                              2.0 * nd * nd * nd, 3.0 * nd * nd * 8.0),
                tiles);
  const comp::Prediction p = tree->predict(ctx);

  pe::observe::Tracer tracer;
  double measured = 0.0;
  {
    pe::observe::ScopedTrace scope(tracer);
    measured = median_seconds(5, [&] {
      pe::parallel_for(
          pool, 0, tiles,
          [&](std::size_t i) { pe::kernels::matmul_tiled(a, b, cs[i]); },
          pe::Schedule::kDynamic, 1);
    });
  }
  const pe::observe::Trace trace = tracer.take();
  check(trace.recorded > 0, "map runs produced no scheduler trace events");

  std::printf("map: %zu tiles of %zux%zu, leaf %s, %llu trace events\n",
              tiles, n, n, pe::format_time(tile_seconds).c_str(),
              static_cast<unsigned long long>(trace.recorded));
  record("map.matmul_tiles", p.seconds, measured);
}

/// Scenario 2: farm of matmul jobs through the submit/future path.
void validate_farm(pe::ThreadPool& pool, Context ctx) {
  // The submitting thread blocks on futures: only pool workers serve,
  // and no more of them than the host has cores.
  ctx.workers =
      std::min(static_cast<unsigned>(pool.size()), hardware_width());
  const std::size_t n = 96;
  const std::size_t jobs = 6 * pool.size();
  const pe::kernels::Matrix a(n, n, 1.0 / 3.0), b(n, n, 2.0 / 7.0);
  std::vector<pe::kernels::Matrix> cs(jobs, pe::kernels::Matrix(n, n));

  pe::kernels::Matrix warm(n, n);
  const double job_seconds = median_seconds(
      7, [&] { pe::kernels::matmul_tiled(a, b, warm); });
  const double nd = static_cast<double>(n);
  const NodePtr tree = comp::farm(
      measured_leaf("kernel.matmul_tiled", job_seconds, 2.0 * nd * nd * nd,
                    3.0 * nd * nd * 8.0),
      jobs, static_cast<unsigned>(pool.size()));
  const comp::Prediction p = tree->predict(ctx);

  const double measured = median_seconds(5, [&] {
    std::vector<std::future<void>> futures;
    futures.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i)
      futures.push_back(pool.submit(
          [&, i] { pe::kernels::matmul_tiled(a, b, cs[i]); }));
    for (auto& f : futures) f.get();
  });

  std::printf("farm: %zu jobs over %zu replicas\n", jobs, pool.size());
  record("farm.matmul_jobs", p.seconds, measured);
}

/// Scenario 3: a real three-stage software pipeline — stage threads,
/// items handed downstream through acquire/release counters. The middle
/// stage is made the clear bottleneck so the drain rate, not scheduling
/// noise from the light stages, dominates the measurement.
void validate_pipeline(Context ctx) {
  constexpr std::size_t kStages = 3;
  constexpr std::size_t kItems = 24;
  const std::size_t sizes[kStages] = {48, 128, 48};
  ctx.workers = std::min(static_cast<unsigned>(kStages), hardware_width());

  std::vector<pe::kernels::Matrix> as, bs, cs;
  for (const std::size_t n : sizes) {
    as.emplace_back(n, n, 1.0 / 3.0);
    bs.emplace_back(n, n, 2.0 / 7.0);
    cs.emplace_back(n, n);
  }
  double stage_seconds[kStages];
  std::vector<NodePtr> stages;
  for (std::size_t s = 0; s < kStages; ++s) {
    stage_seconds[s] = median_seconds(
        7, [&] { pe::kernels::matmul_tiled(as[s], bs[s], cs[s]); });
    const double nd = static_cast<double>(sizes[s]);
    stages.push_back(measured_leaf(
        "stage" + std::to_string(s), stage_seconds[s], 2.0 * nd * nd * nd,
        3.0 * nd * nd * 8.0));
  }
  const comp::Prediction p =
      comp::pipeline(std::move(stages), kItems)->predict(ctx);

  const double measured = median_seconds(3, [&] {
    std::atomic<std::size_t> done[kStages];
    for (auto& d : done) d.store(0, std::memory_order_relaxed);
    std::vector<std::thread> threads;
    for (std::size_t s = 0; s < kStages; ++s) {
      threads.emplace_back([&, s] {
        for (std::size_t item = 0; item < kItems; ++item) {
          // Sleep, don't spin, in both waits: busy-waiting stages would
          // steal cycles from the bottleneck stage on small hosts. The
          // 20 us granularity re-syncs per item and does not accumulate.
          if (s > 0)
            while (done[s - 1].load(std::memory_order_acquire) <= item)
              std::this_thread::sleep_for(std::chrono::microseconds(20));
          // Bounded buffers: stay at most two items ahead of the next
          // stage, like a real pipeline — an unbounded producer would
          // thrash the caches of whoever holds the core.
          if (s + 1 < kStages)
            while (item > done[s + 1].load(std::memory_order_acquire) + 1)
              std::this_thread::sleep_for(std::chrono::microseconds(20));
          pe::kernels::matmul_tiled(as[s], bs[s], cs[s]);
          done[s].store(item + 1, std::memory_order_release);
        }
      });
    }
    for (auto& t : threads) t.join();
  });

  std::printf("pipeline: %zu items through stages {%s, %s, %s}\n", kItems,
              pe::format_time(stage_seconds[0]).c_str(),
              pe::format_time(stage_seconds[1]).c_str(),
              pe::format_time(stage_seconds[2]).c_str());
  record("pipeline.three_stage", p.seconds, measured);
}

/// Scenario 4a: distributed pipeline against the message-network
/// simulator. Transfers are kept below the bottleneck stage because the
/// logical-clock network does not serialize link bandwidth — both sides
/// then agree the compute bottleneck sets the drain rate.
void validate_netsim(const Context& base) {
  const std::vector<double> stage_seconds = {200e-6, 400e-6, 300e-6};
  const std::size_t item_bytes = 64 * 1024;
  const std::size_t items = 32;
  const pe::sim::NetworkCost cost{5e-6, 1e-9};

  pe::sim::MessageNetwork net(3, cost);
  const double simulated = pe::sim::simulate_pipeline(
      net, stage_seconds, item_bytes, items);

  Context ctx = base;
  ctx.workers = 3;  // each simulated rank is a real concurrent processor
  ctx.link_alpha = cost.alpha;
  ctx.link_beta = cost.beta;
  const double fb = static_cast<double>(item_bytes);
  const NodePtr tree = comp::pipeline(
      {measured_leaf("rank0", stage_seconds[0], 0.0, 0.0),
       comp::comm("hop01", fb),
       measured_leaf("rank1", stage_seconds[1], 0.0, 0.0),
       comp::comm("hop12", fb),
       measured_leaf("rank2", stage_seconds[2], 0.0, 0.0)},
      items);
  const comp::Prediction p = tree->predict(ctx);

  std::printf("netsim: %zu items over 3 ranks, %llu messages simulated\n",
              items,
              static_cast<unsigned long long>(net.messages_sent()));
  record("sim.distributed_pipeline", p.seconds, simulated, 1.25);
}

/// Scenario 4b: heterogeneous job map against a DES list scheduler.
void validate_des(const Context& base) {
  const unsigned replicas = 4;
  const std::size_t jobs = 64;
  const auto job_seconds = [](std::size_t j) {
    return 300e-6 * (1.0 + 0.25 * static_cast<double>(j % 3));
  };

  pe::sim::EventSimulator des;
  std::size_t next = 0;
  double makespan = 0.0;
  std::function<void()> finish = [&] {
    makespan = des.now();
    if (next < jobs) des.schedule_in(job_seconds(next++), finish);
  };
  for (unsigned r = 0; r < replicas && next < jobs; ++r)
    des.schedule_in(job_seconds(next++), finish);
  des.run();

  std::vector<NodePtr> leaves;
  for (std::size_t j = 0; j < jobs; ++j)
    leaves.push_back(measured_leaf("job" + std::to_string(j),
                                   job_seconds(j), 0.0, 0.0));
  Context ctx = base;
  ctx.workers = replicas;
  const comp::Prediction p = comp::map(std::move(leaves))->predict(ctx);

  std::printf("des: %zu heterogeneous jobs over %u servers\n", jobs,
              replicas);
  record("sim.farm_list_schedule", p.seconds, makespan, 1.25);
}

/// Scenario 5a: the wait+service pipeline reproduces M/M/c exactly.
void validate_queuing_identity() {
  const pe::models::ServiceModel svc{100.0, 4};
  const double lambda = 250.0;
  const NodePtr campaign = comp::pipeline(
      {comp::leaf(svc.eval_wait(lambda)), comp::leaf(svc.eval_service())});
  const double predicted =
      campaign->predict(Context{.workers = 1}).seconds;
  const double closed_form = svc.mmc(lambda).mean_response;
  std::printf("queuing: composed response %s vs M/M/c %s\n",
              pe::format_time(predicted).c_str(),
              pe::format_time(closed_form).c_str());
  check(std::abs(predicted - closed_form) <= 1e-12 * closed_form,
        "wait+service pipeline must equal the M/M/c closed form");
  record("service.mmc_identity", predicted, closed_form, 1.001);
}

/// Scenario 5b: a measured batch submission campaign on pe::service,
/// predicted as a farm over one calibrated submission leaf.
void validate_service_campaign() {
  const std::size_t workers = 2;
  const std::size_t jobs = 32;
  const double kernel_seconds = 300e-6;

  pe::service::ServiceConfig config;
  config.workers = workers;
  config.queue.capacity = jobs + 8;
  config.queue.tenant_capacity = jobs + 8;
  config.measurement.warmup_runs = 0;
  config.measurement.repetitions = 1;
  config.measurement.min_batch_seconds = 1e-5;
  config.calibration_hash = "composition-validate";

  const auto spin = [kernel_seconds] {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(kernel_seconds);
    while (std::chrono::steady_clock::now() < until) {
    }
  };

  // Calibrate the per-submission service time on an idle service (the
  // spin kernel plus the runner's overhead), then predict the batch.
  double service_seconds = 0.0;
  {
    pe::service::BenchmarkService service(config);
    constexpr int kProbes = 10;
    for (int i = 0; i < kProbes; ++i) {
      pe::service::SubmissionRequest request;
      request.tenant = "calibrate";
      request.workload_key = "probe-" + std::to_string(i);
      request.kernel = spin;
      service_seconds +=
          service.submit(std::move(request)).outcome.get().run_seconds;
    }
    service_seconds /= kProbes;
  }

  const NodePtr campaign = comp::farm(
      measured_leaf("service.submission", service_seconds, 0.0, 0.0),
      jobs, static_cast<unsigned>(workers));
  const unsigned effective =
      std::min(static_cast<unsigned>(workers), hardware_width());
  const double predicted =
      campaign->predict(Context{.workers = effective}).seconds;

  pe::service::BenchmarkService service(config);
  pe::WallTimer timer;
  std::vector<std::shared_future<pe::service::Outcome>> outcomes;
  outcomes.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    pe::service::SubmissionRequest request;
    request.tenant = "campaign";
    request.workload_key = "job-" + std::to_string(i);
    request.kernel = spin;
    outcomes.push_back(service.submit(std::move(request)).outcome);
  }
  std::size_t completed = 0;
  for (auto& o : outcomes)
    completed += o.get().state == pe::service::TerminalState::kCompleted;
  const double measured = timer.elapsed();

  check(completed == jobs, "batch campaign must complete every job");
  std::printf("service: %zu submissions over %zu workers, calibrated %s "
              "per submission\n",
              jobs, workers, pe::format_time(service_seconds).c_str());
  record("service.batch_campaign", predicted, measured);
}

}  // namespace

int main(int argc, char** argv) {
  bool check_mode = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check_mode = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--json <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  std::puts("== Compositional model validation: trees vs machine, "
            "simulators, service ==\n");

  // Calibrate the context the way any user of the composition layer
  // would: a machine description plus the measured scheduler probe.
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 3;
  cfg.min_batch_seconds = 1e-3;
  const pe::BenchmarkRunner runner(cfg);
  const auto probe = pe::microbench::probe_scheduler(runner);
  pe::machine::Machine machine =
      pe::machine::resolve_or_preset("laptop-x86");
  pe::microbench::apply_scheduler_probe(machine, probe);

  pe::ThreadPool pool;
  Context ctx = Context::from_machine(machine);
  ctx.workers = static_cast<unsigned>(pool.size());
  std::printf("context: %u workers, dispatch %s/region, calibration %s\n\n",
              ctx.workers,
              pe::format_time(ctx.dispatch_seconds).c_str(),
              machine.calibration_hash().c_str());

  validate_map(pool, ctx);
  validate_farm(pool, ctx);
  validate_pipeline(ctx);
  validate_netsim(ctx);
  validate_des(ctx);
  validate_queuing_identity();
  validate_service_campaign();

  pe::Table table({"scenario", "predicted", "measured", "ratio", "band"});
  for (const auto& s : g_scenarios)
    table.add_row({s.name, pe::format_time(s.predicted),
                   pe::format_time(s.measured),
                   pe::format_fixed(s.ratio(), 3) + "x",
                   pe::format_fixed(s.band, 2) + "x"});
  std::printf("\n%s", table.render().c_str());

  if (!json_path.empty()) {
    pe::BenchReport report("composition_validate");
    report.set_machine(machine);
    report.set_context("pool_threads", static_cast<double>(pool.size()));
    report.set_context("scenarios",
                       static_cast<double>(g_scenarios.size()));
    for (const auto& s : g_scenarios) {
      report.add_scalar(s.name + ".predicted_s", "s", s.predicted);
      report.add_scalar(s.name + ".measured_s", "s", s.measured);
      report.add_scalar(s.name + ".ratio", "ratio", s.ratio());
    }
    try {
      report.save_file(json_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot write '%s': %s\n", json_path.c_str(),
                   e.what());
      return 2;
    }
    std::printf("\nsnapshot written to %s\n", json_path.c_str());
  }

  if (check_mode) {
    if (g_violations > 0) {
      std::printf("\nCHECK FAILED: %d violation(s)\n", g_violations);
      return 1;
    }
    std::printf("\nCHECK OK: %zu scenarios within their bands\n",
                g_scenarios.size());
  }
  return 0;
}
