// Heterogeneous-offload experiment: the course's CPU+GPU platforms,
// reproduced as a decision model — device rooflines behind a transfer
// link, break-even sizes, and the amortization factor for keeping data
// resident.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/models/offload.hpp"

using namespace pe::models;

int main() {
  std::puts("== Accelerator offload model (CPU + GPU substitution) ==\n");

  // Device ratios modeled on the course's hardware (compute capability
  // 3.0-7.2 GPUs vs contemporary Xeons): ~10x FLOPS, ~5x bandwidth,
  // PCIe-3-ish link. PERFENG_MACHINE swaps the host side.
  const pe::machine::Machine host_desc =
      pe::machine::resolve_or_preset("laptop-x86");
  const pe::machine::Machine gpu_desc =
      pe::machine::MachineRegistry::builtin().get("das5-gpu");
  const OffloadModel m = OffloadModel::from_machine(host_desc, gpu_desc);
  std::printf("host: %s  device: %s  [override host with %s]\n\n",
              host_desc.name.c_str(), gpu_desc.name.c_str(),
              pe::machine::kMachineEnv);

  pe::Table t({"n (matmul)", "host time", "offload time", "speedup",
               "verdict"});
  for (std::size_t n : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    const double nd = static_cast<double>(n);
    const double flops = 2.0 * nd * nd * nd;
    const double in = 2.0 * nd * nd * 8.0, out = nd * nd * 8.0;
    const double host = m.host_time(flops, in + out);
    const double offload = m.offload_time(flops, in, out);
    t.add_row({std::to_string(n), pe::format_time(host),
               pe::format_time(offload),
               pe::format_fixed(host / offload, 2),
               host > offload ? "offload" : "stay on host"});
  }
  std::fputs(t.render().c_str(), stdout);

  const std::size_t breakeven = offload_breakeven_matmul(m, 8, 8192);
  std::printf("\nBreak-even matmul order: n = %zu\n", breakeven);

  const double w = m.amortization_factor(2e9, 2.4e7, 1.6e7, 8e6);
  std::printf(
      "Amortization: a kernel with 2 GFLOP on 24 MB must run %.1f times "
      "on resident\ndata to pay for one round trip of its operands.\n",
      w);

  pe::Table link_sweep({"link bandwidth", "break-even n"});
  for (double gbps : {1.0, 4.0, 12.0, 32.0, 64.0}) {
    OffloadModel variant = m;
    variant.link.beta = 1.0 / (gbps * 1e9);
    link_sweep.add_row(
        {pe::format_bandwidth(gbps * 1e9),
         std::to_string(offload_breakeven_matmul(variant, 8, 8192))});
  }
  std::puts("\nAblation: faster links lower the break-even size:");
  std::fputs(link_sweep.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: small kernels stay on the host (transfer-bound), "
      "large ones\noffload; the crossover drops as the link gets faster — "
      "the canonical\nheterogeneous-computing lesson.");
  return 0;
}
