// Benchmarking topic: suite construction and scoring — the
// geometric-vs-arithmetic mean lesson, plus statistically sound A/B
// comparison of two kernel versions with Welch's t-test.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/fft.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/kernels/stencil.hpp"
#include "perfeng/measure/suite.hpp"
#include "perfeng/measure/timer.hpp"

int main() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 7;
  cfg.min_batch_seconds = 2e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("== Benchmark suites and sound comparisons ==\n");

  // A small mixed suite; reference times are a nominal 'reference
  // machine' (here: round numbers, the scoring maths is the point).
  const std::size_t n = 128;
  pe::kernels::Matrix a(n, n), b(n, n), c(n, n);
  pe::Rng rng(1);
  a.randomize(rng);
  b.randomize(rng);
  pe::kernels::Grid2D grid(256, 256, 1.0), out(256, 256);
  std::vector<pe::kernels::Complex> signal(1 << 12);
  for (auto& v : signal)
    v = {rng.next_range_double(-1, 1), rng.next_range_double(-1, 1)};

  pe::BenchmarkSuite suite("perfeng-mini");
  suite.add({"matmul-128",
             [&] { pe::kernels::matmul_interchanged(a, b, c); }, 2e-3});
  suite.add({"stencil-256",
             [&] { pe::kernels::stencil_step_naive(grid, out); }, 2e-4});
  suite.add({"fft-4096",
             [&] { pe::do_not_optimize(pe::kernels::fft(signal)); }, 5e-4});

  const auto score = suite.run(runner);
  pe::Table t({"benchmark", "measured", "ratio vs reference"});
  for (const auto& r : score.results) {
    t.add_row({r.name, pe::format_time(r.seconds),
               pe::format_fixed(r.ratio, 2)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "suite score: geometric mean %.2f (arithmetic mean %.2f — do not "
      "use it: its\nranking depends on the reference machine)\n",
      score.geometric_mean_ratio, score.arithmetic_mean_ratio);

  // ---- sound A/B comparison ----
  std::puts("\nWelch comparison: is ikj really faster than tiled here?");
  const auto ikj = runner.run("ikj", [&] {
    pe::kernels::matmul_interchanged(a, b, c);
  });
  const auto tiled = runner.run("tiled", [&] {
    pe::kernels::matmul_tiled(a, b, c, 64);
  });
  const auto cmp = pe::compare_samples(ikj.seconds, tiled.seconds);
  std::printf(
      "  mean difference %s (95%% CI +/- %s), t=%.2f, dof=%.1f -> %s\n",
      pe::format_time(cmp.mean_difference).c_str(),
      pe::format_time(cmp.ci95_half).c_str(), cmp.t_statistic, cmp.dof,
      cmp.significant ? "SIGNIFICANT" : "not significant");

  const auto same = pe::compare_samples(ikj.seconds, ikj.seconds);
  std::printf("  sanity: a sample against itself is %s\n",
              same.significant ? "SIGNIFICANT (bug!)" : "not significant");
  std::puts(
      "\nExpected shape: the geometric mean ranks machines consistently "
      "regardless of\nthe reference; differences are claimed only when "
      "the confidence interval\nexcludes zero.");
  return 0;
}
