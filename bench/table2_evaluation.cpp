// Regenerates Table 2 of the paper: aggregated student evaluation
// responses (DATA-2 / SW-3 equivalent). The M column is recomputed from
// the embedded histograms and printed beside the paper's value.
#include <cstdio>

#include "perfeng/course/data.hpp"
#include "perfeng/course/tables.hpp"

int main() {
  std::puts(
      "== Table 2a: agreement-scale evaluation responses "
      "(1=firmly disagree .. 5=firmly agree) ==\n");
  std::fputs(pe::course::table2a().render().c_str(), stdout);
  std::puts(
      "\n== Table 2b: level-scale responses (1=very low .. 5=very high; "
      "3-4 considered optimal) ==\n");
  std::fputs(pe::course::table2b().render().c_str(), stdout);
  std::puts("\nmetrics.csv (DATA-2):");
  std::fputs(pe::course::metrics_csv().c_str(), stdout);
  return 0;
}
