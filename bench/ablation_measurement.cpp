// Ablation: the measurement-discipline design choices in the benchmark
// runner (warmup, repetitions, batching) — Lesson 3's "do not
// underestimate empirical analysis" made quantitative.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/measure/statistics.hpp"
#include "perfeng/measure/timer.hpp"

int main() {
  std::puts("== Ablation: measurement harness design choices ==\n");
  std::printf("steady-clock resolution: %s\n\n",
              pe::format_time(pe::estimate_timer_resolution()).c_str());

  const std::size_t n = 96;
  pe::kernels::Matrix a(n, n), b(n, n), c(n, n);
  pe::Rng rng(1);
  a.randomize(rng);
  b.randomize(rng);
  auto kernel = [&] { pe::kernels::matmul_interchanged(a, b, c); };

  // 1. Warmup ablation: cold vs warm first measurements.
  {
    pe::Table t({"warmup runs", "median", "CV %", "min..max spread %"});
    for (int warmups : {0, 1, 5}) {
      pe::MeasurementConfig cfg;
      cfg.warmup_runs = warmups;
      cfg.repetitions = 9;
      const auto m = pe::BenchmarkRunner(cfg).run("matmul", kernel);
      const double spread =
          (m.summary.max - m.summary.min) / m.summary.median * 100.0;
      t.add_row({std::to_string(warmups),
                 pe::format_time(m.typical()),
                 pe::format_fixed(
                     pe::coefficient_of_variation(m.seconds) * 100.0, 2),
                 pe::format_fixed(spread, 1)});
    }
    std::puts("Warmup ablation (9 repetitions each):");
    std::fputs(t.render().c_str(), stdout);
  }

  // 2. Repetition-count ablation: CI width vs cost.
  {
    pe::Table t({"repetitions", "median", "95% CI half-width",
                 "CI as % of median"});
    for (int reps : {3, 10, 30}) {
      pe::MeasurementConfig cfg;
      cfg.warmup_runs = 2;
      cfg.repetitions = reps;
      const auto m = pe::BenchmarkRunner(cfg).run("matmul", kernel);
      t.add_row({std::to_string(reps), pe::format_time(m.typical()),
                 pe::format_time(m.summary.ci95_half),
                 pe::format_fixed(
                     m.summary.ci95_half / m.summary.median * 100.0, 2)});
    }
    std::puts("\nRepetition ablation:");
    std::fputs(t.render().c_str(), stdout);
  }

  // 3. Batching ablation on a sub-resolution kernel.
  {
    // Optimizer sink, not synchronization: keeps the sub-resolution
    // kernel from being deleted so the ablation measures a real call.
    // perfeng-lint: allow(no-volatile)
    volatile double sink = 0.0;
    auto tiny = [&sink] { sink = sink + 1.0; };
    pe::Table t({"min batch time", "batch iterations",
                 "reported per-call time"});
    for (double min_batch : {1e-6, 1e-4, 1e-2}) {
      pe::MeasurementConfig cfg;
      cfg.warmup_runs = 1;
      cfg.repetitions = 5;
      cfg.min_batch_seconds = min_batch;
      const auto m = pe::BenchmarkRunner(cfg).run("tiny", tiny);
      t.add_row({pe::format_time(min_batch),
                 std::to_string(m.batch_iterations),
                 pe::format_time(m.typical())});
    }
    std::puts("\nBatching ablation (nanosecond-scale kernel):");
    std::fputs(t.render().c_str(), stdout);
  }

  std::puts(
      "\nExpected shape: warmup removes the cold-start outlier; the CI "
      "narrows roughly\nwith sqrt(repetitions); without batching a "
      "nanosecond kernel is quantized to\nthe timer resolution and "
      "over-reported by orders of magnitude.");
  return 0;
}
