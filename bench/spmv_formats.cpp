// SpMV storage-format comparison (Assignment 3's measured substrate):
// CSR vs CSC vs COO across the three sparsity structures.
#include <benchmark/benchmark.h>

#include "perfeng/kernels/sparse.hpp"

namespace {

using pe::kernels::SparsityPattern;

struct Problem {
  Problem(std::size_t n, double density, SparsityPattern pattern) {
    pe::Rng rng(n);
    coo = pe::kernels::generate_sparse(n, n, density, pattern, rng);
    csr = pe::kernels::coo_to_csr(coo);
    csc = pe::kernels::coo_to_csc(coo);
    ell = pe::kernels::csr_to_ell(csr);
    x.assign(n, 1.0);
    y.assign(n, 0.0);
  }
  pe::kernels::CooMatrix coo;
  pe::kernels::CsrMatrix csr;
  pe::kernels::CscMatrix csc;
  pe::kernels::EllMatrix ell;
  std::vector<double> x, y;
};

SparsityPattern pattern_of(int64_t arg) {
  switch (arg) {
    case 0: return SparsityPattern::kUniform;
    case 1: return SparsityPattern::kBanded;
    default: return SparsityPattern::kPowerLaw;
  }
}

void set_label(benchmark::State& state, const Problem& p) {
  state.SetLabel(pe::kernels::pattern_name(pattern_of(state.range(1))) +
                 " nnz=" + std::to_string(p.csr.nnz()));
  state.counters["nnz/s"] = benchmark::Counter(
      double(p.csr.nnz()) * double(state.iterations()),
      benchmark::Counter::kIsRate);
}

void bm_spmv_csr(benchmark::State& state) {
  Problem p(static_cast<std::size_t>(state.range(0)), 0.005,
            pattern_of(state.range(1)));
  for (auto _ : state) {
    pe::kernels::spmv_csr(p.csr, p.x, p.y);
    benchmark::DoNotOptimize(p.y.data());
  }
  set_label(state, p);
}

void bm_spmv_csc(benchmark::State& state) {
  Problem p(static_cast<std::size_t>(state.range(0)), 0.005,
            pattern_of(state.range(1)));
  for (auto _ : state) {
    pe::kernels::spmv_csc(p.csc, p.x, p.y);
    benchmark::DoNotOptimize(p.y.data());
  }
  set_label(state, p);
}

void bm_spmv_coo(benchmark::State& state) {
  Problem p(static_cast<std::size_t>(state.range(0)), 0.005,
            pattern_of(state.range(1)));
  for (auto _ : state) {
    pe::kernels::spmv_coo(p.coo, p.x, p.y);
    benchmark::DoNotOptimize(p.y.data());
  }
  set_label(state, p);
}

void bm_spmv_ell(benchmark::State& state) {
  Problem p(static_cast<std::size_t>(state.range(0)), 0.005,
            pattern_of(state.range(1)));
  for (auto _ : state) {
    pe::kernels::spmv_ell(p.ell, p.x, p.y);
    benchmark::DoNotOptimize(p.y.data());
  }
  set_label(state, p);
  state.counters["padding"] = p.ell.padding_ratio();
}

void all_args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {2000, 8000})
    for (int64_t pattern : {0, 1, 2}) b->Args({n, pattern});
}

BENCHMARK(bm_spmv_csr)->Apply(all_args);
BENCHMARK(bm_spmv_csc)->Apply(all_args);
BENCHMARK(bm_spmv_coo)->Apply(all_args);
BENCHMARK(bm_spmv_ell)->Apply(all_args);

}  // namespace

BENCHMARK_MAIN();
