// The format-adaptive sparse engine's training ground: measure SpMV in
// every storage format (CSR, CSC, COO, ELL, SELL-C-sigma) across a corpus
// of synthetic matrices (uniform / banded / power-law at several shapes
// and densities), train the statmodel FormatSelector on the measurements,
// and report how often the learned selector beats always-CSR.
//
// `--check` gates three claims CI relies on (docs/simd.md):
//   1. every format produces the same y = A x (exact for CSR/COO/ELL/SELL
//      by construction; tolerance-bounded for CSC's column-order sums),
//   2. the trained selector beats or ties always-CSR on a majority of the
//      corpus,
//   3. the selector's chosen formats collectively cost no more than
//      always-CSR in total corpus seconds (never a net pessimization).
// `--json <path>` writes the pe-bench-v1 snapshot checked in at
// bench/snapshots/BENCH_spmv.json.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/format_select.hpp"
#include "perfeng/kernels/sparse.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/bench_json.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/measure/timer.hpp"
#include "perfeng/simd/vec.hpp"

namespace {

using pe::kernels::SparsityPattern;
using pe::kernels::SpmvFormat;

struct Problem {
  Problem(std::size_t rows, std::size_t cols, double density,
          SparsityPattern pattern, std::uint64_t seed) {
    pe::Rng rng(seed);
    coo = pe::kernels::generate_sparse(rows, cols, density, pattern, rng);
    csr = pe::kernels::coo_to_csr(coo);
    csc = pe::kernels::coo_to_csc(coo);
    ell = pe::kernels::csr_to_ell(csr);
    sell = pe::kernels::csr_to_sell(csr);
    x.assign(cols, 0.0);
    for (std::size_t i = 0; i < cols; ++i)
      x[i] = rng.next_range_double(-1.0, 1.0);
    y.assign(rows, 0.0);
    name = pe::kernels::pattern_name(pattern) + "/" +
           std::to_string(rows) + "x" + std::to_string(cols) + "/d" +
           pe::format_sig(density, 2);
  }
  pe::kernels::CooMatrix coo;
  pe::kernels::CsrMatrix csr;
  pe::kernels::CscMatrix csc;
  pe::kernels::EllMatrix ell;
  pe::kernels::SellMatrix sell;
  std::vector<double> x, y;
  std::string name;
};

double max_rel_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max(1.0, std::abs(a[i]));
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  cfg.min_batch_seconds = 1e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::printf("== SpMV format zoo + learned selector (backend: %s) ==\n\n",
              pe::simd::compiled_backend_name());

  // The corpus: every pattern at shapes/densities where different formats
  // win — banded rows are ELL/SELL territory, power-law rows drown ELL in
  // padding, tall/wide shapes stress x/y traffic asymmetries.
  const SparsityPattern patterns[] = {SparsityPattern::kUniform,
                                     SparsityPattern::kBanded,
                                     SparsityPattern::kPowerLaw};
  struct Shape {
    std::size_t rows, cols;
  };
  const Shape shapes[] = {{2000, 2000}, {6000, 1500}, {1500, 6000}};
  const double densities[] = {0.001, 0.004, 0.016};

  std::vector<pe::kernels::FormatSample> samples;
  std::vector<std::string> sample_names;
  double exact_worst = 0.0, csc_worst = 0.0;
  std::array<std::vector<double>, pe::kernels::kNumSpmvFormats>
      per_format_seconds;

  for (const SparsityPattern pattern : patterns) {
    for (const Shape& shape : shapes) {
      for (const double density : densities) {
        Problem p(shape.rows, shape.cols, density, pattern,
                  shape.rows * 31 + static_cast<std::uint64_t>(
                                        density * 1e4));
        pe::kernels::FormatSample sample;
        sample.features = pe::kernels::FormatFeatures::from_csr(p.csr);

        std::vector<double> y_ref(p.csr.rows, 0.0);
        pe::kernels::spmv_csr(p.csr, p.x, y_ref);

        for (std::size_t fi = 0; fi < pe::kernels::kNumSpmvFormats;
             ++fi) {
          const SpmvFormat f = pe::kernels::kAllSpmvFormats[fi];
          std::function<void()> body;
          switch (f) {
            case SpmvFormat::kCsr:
              body = [&] { pe::kernels::spmv_csr(p.csr, p.x, p.y); };
              break;
            case SpmvFormat::kCsc:
              body = [&] { pe::kernels::spmv_csc(p.csc, p.x, p.y); };
              break;
            case SpmvFormat::kCoo:
              body = [&] { pe::kernels::spmv_coo(p.coo, p.x, p.y); };
              break;
            case SpmvFormat::kEll:
              body = [&] { pe::kernels::spmv_ell(p.ell, p.x, p.y); };
              break;
            case SpmvFormat::kSell:
              body = [&] { pe::kernels::spmv_sell(p.sell, p.x, p.y); };
              break;
          }
          // Correctness first: one run, compared against the CSR
          // reference (exact except CSC, whose column-major sums
          // legitimately reassociate).
          std::fill(p.y.begin(), p.y.end(), 0.0);
          body();
          const double diff = max_rel_diff(y_ref, p.y);
          if (f == SpmvFormat::kCsc) {
            csc_worst = std::max(csc_worst, diff);
          } else {
            exact_worst = std::max(exact_worst, diff);
          }

          const auto m = runner.run(
              pe::kernels::spmv_format_name(f) + " " + p.name, [&] {
                body();
                pe::do_not_optimize(p.y[0]);
              });
          sample.seconds[fi] = m.typical();
          per_format_seconds[fi].push_back(m.typical());
        }
        samples.push_back(sample);
        sample_names.push_back(p.name);
      }
    }
  }

  // Train the selector on the full corpus and score it in-sample: the
  // question CI asks is "did the learned policy recover the format
  // landscape", not generalization (tests/test_sparse.cpp covers that).
  const auto selector = pe::kernels::FormatSelector::train(samples);

  constexpr std::size_t kCsrIdx = 0;
  std::size_t wins = 0;
  double chosen_total = 0.0, csr_total = 0.0, best_total = 0.0;
  pe::Table table({"matrix", "nnz", "best", "chosen", "csr ms", "chosen ms"});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    const SpmvFormat chosen = selector.choose(s.features);
    const double chosen_s =
        s.seconds[static_cast<std::size_t>(chosen)];
    const double csr_s = s.seconds[kCsrIdx];
    std::size_t best_fi = 0;
    for (std::size_t fi = 1; fi < s.seconds.size(); ++fi)
      if (s.seconds[fi] < s.seconds[best_fi]) best_fi = fi;
    // A win = the chosen format is at least as fast as CSR (5% noise
    // allowance); choosing CSR itself therefore always counts.
    if (chosen_s <= csr_s * 1.05) ++wins;
    chosen_total += chosen_s;
    csr_total += csr_s;
    best_total += s.seconds[best_fi];
    table.add_row(
        {sample_names[i], std::to_string(static_cast<std::size_t>(
                              s.features.nnz)),
         pe::kernels::spmv_format_name(pe::kernels::kAllSpmvFormats[best_fi]),
         pe::kernels::spmv_format_name(chosen),
         pe::format_fixed(csr_s * 1e3, 3),
         pe::format_fixed(chosen_s * 1e3, 3)});
  }
  std::fputs(table.render().c_str(), stdout);

  const double win_fraction =
      static_cast<double>(wins) / static_cast<double>(samples.size());
  const double speedup_vs_csr = csr_total / chosen_total;
  const double oracle_speedup = csr_total / best_total;
  std::printf("\nselector vs always-CSR: wins %zu/%zu (%.0f%%), corpus "
              "speedup %.3fx (oracle %.3fx)\n",
              wins, samples.size(), win_fraction * 100.0, speedup_vs_csr,
              oracle_speedup);
  std::printf("correctness: exact-format worst rel diff %.3e, csc %.3e\n",
              exact_worst, csc_worst);

  if (!json_path.empty()) {
    pe::BenchReport report("spmv_formats");
    report.set_machine(pe::machine::resolve_or_preset("laptop-x86"));
    report.set_context("corpus_size",
                       static_cast<double>(samples.size()));
    report.set_context(
        "simd_width_bits",
        static_cast<double>(pe::simd::compiled_width_bits()));
    for (std::size_t fi = 0; fi < pe::kernels::kNumSpmvFormats; ++fi)
      report.add_metric(
          "spmv_" +
              pe::kernels::spmv_format_name(pe::kernels::kAllSpmvFormats[fi]),
          "s", per_format_seconds[fi]);
    report.add_scalar("selector_win_fraction", "ratio", win_fraction);
    report.add_scalar("selector_speedup_vs_csr", "ratio", speedup_vs_csr);
    report.add_scalar("oracle_speedup_vs_csr", "ratio", oracle_speedup);
    try {
      report.save_file(json_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot write '%s': %s\n", json_path.c_str(),
                   e.what());
      return 2;
    }
    std::printf("snapshot written to %s\n", json_path.c_str());
  }

  if (check) {
    if (!(exact_worst == 0.0)) {
      std::printf("\nCHECK FAILED: exact formats differ from CSR by "
                  "%.3e\n",
                  exact_worst);
      return 1;
    }
    if (!(csc_worst <= 1e-10)) {
      std::printf("\nCHECK FAILED: csc rel diff %.3e > 1e-10\n", csc_worst);
      return 1;
    }
    if (!(win_fraction > 0.5)) {
      std::printf("\nCHECK FAILED: selector beats/ties CSR on only "
                  "%.0f%% of the corpus\n",
                  win_fraction * 100.0);
      return 1;
    }
    if (!(chosen_total <= csr_total * 1.05)) {
      std::printf("\nCHECK FAILED: chosen formats cost %.3fx always-CSR\n",
                  chosen_total / csr_total);
      return 1;
    }
    std::printf("\nCHECK OK: %.0f%% wins, %.3fx corpus speedup, formats "
                "agree\n",
                win_fraction * 100.0, speedup_vs_csr);
  }
  return 0;
}
