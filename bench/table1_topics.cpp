// Regenerates Table 1 of the paper: course topics against the stages of
// the performance-engineering process (S1-S7) and the learning
// objectives (O1-O8).
#include <cstdio>

#include "perfeng/course/tables.hpp"

int main() {
  std::puts(
      "== Table 1: topics x process stages (S) x learning objectives (O) "
      "==\n");
  std::fputs(pe::course::table1().render().c_str(), stdout);
  std::puts(
      "\nStages: 1 requirements, 2 understand, 3 feasibility, 4 "
      "approaches,\n        5 tuning, 6 iterate, 7 document.");
  return 0;
}
