// The recurring student projects (Section 5.1): 2D stencil optimization,
// Game of Life, and graph processing — each as a measured
// baseline-vs-optimized pair, the shape every project report contains.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/graph.hpp"
#include "perfeng/measure/timer.hpp"
#include "perfeng/kernels/life.hpp"
#include "perfeng/kernels/stencil.hpp"
#include "perfeng/measure/benchmark_runner.hpp"

int main() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  cfg.min_batch_seconds = 2e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("== Project exemplars: the recurring student projects ==\n");
  pe::Table t({"project", "variant", "median time", "speedup"});

  // ---- 2D stencil (most popular project) ----
  {
    const std::size_t rows = 768, cols = 768;
    pe::kernels::Grid2D in(rows, cols, 1.0), out(rows, cols);
    pe::ThreadPool pool;
    const auto naive = runner.run("stencil naive", [&] {
      pe::kernels::stencil_step_naive(in, out);
    });
    const auto blocked = runner.run("stencil blocked", [&] {
      pe::kernels::stencil_step_blocked(in, out, 64);
    });
    const auto parallel = runner.run("stencil parallel", [&] {
      pe::kernels::stencil_step_parallel(in, out, pool);
    });
    t.add_row({"2D stencil", "naive sweep",
               pe::format_time(naive.typical()), "1.00"});
    t.add_row({"2D stencil", "cache blocked",
               pe::format_time(blocked.typical()),
               pe::format_fixed(naive.typical() / blocked.typical(), 2)});
    t.add_row({"2D stencil", "thread parallel",
               pe::format_time(parallel.typical()),
               pe::format_fixed(naive.typical() / parallel.typical(), 2)});
  }

  // ---- Game of Life (second most popular) ----
  {
    pe::Rng rng(42);
    pe::kernels::LifeGrid byte_grid(256, 256);
    byte_grid.randomize(0.35, rng);
    pe::kernels::LifeGridPacked packed(byte_grid);

    const auto byte_time = runner.run("life byte", [&] {
      pe::do_not_optimize(byte_grid.step().population());
    });
    const auto packed_time = runner.run("life packed", [&] {
      pe::do_not_optimize(packed.step().population());
    });
    t.add_row({"Game of Life", "byte per cell",
               pe::format_time(byte_time.typical()), "1.00"});
    t.add_row({"Game of Life", "bit-packed (64 cells/word)",
               pe::format_time(packed_time.typical()),
               pe::format_fixed(
                   byte_time.typical() / packed_time.typical(), 2)});
  }

  // ---- graph processing (third) ----
  {
    pe::Rng rng(7);
    const auto g = pe::kernels::generate_powerlaw_graph(20000, 200000, 1.0,
                                                        rng);
    pe::ThreadPool pool;
    const auto serial = runner.run("pagerank serial", [&] {
      pe::do_not_optimize(pe::kernels::pagerank(g, 0.85, 1e-6, 20));
    });
    const auto parallel = runner.run("pagerank parallel", [&] {
      pe::do_not_optimize(
          pe::kernels::pagerank_parallel(g, pool, 0.85, 1e-6, 20));
    });
    const auto bfs_time = runner.run("bfs", [&] {
      pe::do_not_optimize(pe::kernels::bfs(g, 0));
    });
    t.add_row({"graph processing", "PageRank serial",
               pe::format_time(serial.typical()), "1.00"});
    t.add_row({"graph processing", "PageRank parallel",
               pe::format_time(parallel.typical()),
               pe::format_fixed(serial.typical() / parallel.typical(), 2)});
    t.add_row({"graph processing", "BFS",
               pe::format_time(bfs_time.typical()), "-"});
  }

  std::fputs(t.render().c_str(), stdout);
  std::puts(
      "\nExpected shape (paper): the bit-packed Life engine wins by an "
      "order of\nmagnitude from data layout alone; blocking helps the "
      "stencil once the grid\noutgrows cache; parallel speedups track the "
      "available hardware threads.");
  return 0;
}
