// Distributed tracing topic (Vampir / Score-P / Scalasca): record a
// simulated multi-rank run, render the timeline, and compute the
// wait-state profile that pinpoints the imbalanced rank.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/sim/comm_trace.hpp"

using pe::sim::TracedNetwork;

namespace {

// A 4-rank, 3-iteration halo-exchange program where rank 2 has 1.6x the
// work (the seeded imbalance the analysis must find).
void imbalanced_program(TracedNetwork& net) {
  const unsigned p = net.network().ranks();
  const std::size_t halo = 64 * 1024;
  for (int iteration = 0; iteration < 3; ++iteration) {
    for (unsigned r = 0; r < p; ++r)
      net.compute(r, r == 2 ? 1.6e-3 : 1.0e-3);
    for (unsigned r = 0; r < p; ++r) {
      if (r + 1 < p) net.send(r, r + 1, halo, 1);
      if (r > 0) net.send(r, r - 1, halo, 2);
    }
    for (unsigned r = 0; r < p; ++r) {
      if (r > 0) net.recv(r, r - 1, 1);
      if (r + 1 < p) net.recv(r, r + 1, 2);
    }
  }
}

}  // namespace

int main() {
  std::puts("== Communication trace analysis (Vampir/Scalasca topic) ==\n");
  TracedNetwork net(4, {1e-5, 1e-9});
  imbalanced_program(net);

  std::puts("Timeline (rank 2 carries 1.6x the work):");
  std::fputs(net.timeline(68).c_str(), stdout);

  pe::Table t({"rank", "compute", "send overhead", "recv wait",
               "late senders", "wait %"});
  for (const auto& p : net.profile()) {
    t.add_row({std::to_string(p.rank), pe::format_time(p.compute_seconds),
               pe::format_time(p.send_seconds),
               pe::format_time(p.wait_seconds),
               std::to_string(p.late_senders),
               pe::format_fixed(p.wait_seconds / p.total() * 100.0, 1)});
  }
  std::puts("\nScalasca-style wait-state profile:");
  std::fputs(t.render().c_str(), stdout);
  std::printf("\ntotal runtime: %s for %zu events\n",
              pe::format_time(net.finish_time()).c_str(),
              net.events().size());
  std::puts(
      "\nExpected shape: the slow rank (2) shows near-zero wait time while "
      "its\nneighbours accumulate recv-wait — the late-sender signature "
      "that fingers the\nimbalanced rank, exactly how Scalasca reports "
      "it.");
  return 0;
}
