// Queuing theory topic: M/M/1, M/M/c and M/G/1 closed forms validated
// against the discrete-event simulator across a utilization sweep.
//
// `--json <path>` writes a pe-bench-v1 BenchReport snapshot (model vs
// simulated response times per system) for bench/snapshots/. The closed
// forms are machine-independent, so the machine field records that
// rather than a calibration.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "perfeng/common/table.hpp"
#include "perfeng/measure/bench_json.hpp"
#include "perfeng/models/queuing.hpp"
#include "perfeng/sim/queue_sim.hpp"

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];

  std::puts("== Queuing theory: closed forms vs discrete-event simulation "
            "==\n");

  pe::BenchReport report("queuing_theory");
  report.set_machine("analytical", "machine-independent");
  report.set_context("jobs", 200000);
  report.set_context("warmup_jobs", 5000);

  pe::Table t({"system", "rho", "W model", "W sim", "Lq model", "Lq sim",
               "err %"});
  auto add_row = [&t, &report](const std::string& name, double rho,
                               const pe::models::QueueMetrics& model,
                               const pe::sim::QueueSimResult& sim) {
    const double err =
        std::abs(sim.mean_response - model.mean_response) /
        model.mean_response * 100.0;
    t.add_row({name, pe::format_fixed(rho, 2),
               pe::format_fixed(model.mean_response, 3),
               pe::format_fixed(sim.mean_response, 3),
               pe::format_fixed(model.mean_queue_length, 3),
               pe::format_fixed(sim.mean_queue_length, 3),
               pe::format_fixed(err, 1)});
    std::string prefix = name;
    for (char& c : prefix) {
      if (c == '/') c = '_';
      c = char(std::tolower(static_cast<unsigned char>(c)));
    }
    prefix += ".rho" + pe::format_fixed(rho * 100.0, 0);
    report.add_scalar(prefix + ".response_model", "s", model.mean_response);
    report.add_scalar(prefix + ".response_sim", "s", sim.mean_response);
    report.add_scalar(prefix + ".queue_len_model", "jobs",
                      model.mean_queue_length);
    report.add_scalar(prefix + ".queue_len_sim", "jobs",
                      sim.mean_queue_length);
    report.add_scalar(prefix + ".response_err_pct", "%", err);
  };

  for (double rho : {0.3, 0.5, 0.7, 0.9}) {
    pe::sim::QueueSimConfig cfg;
    cfg.arrival_rate = rho;
    cfg.service_rate = 1.0;
    cfg.servers = 1;
    cfg.jobs = 200000;
    cfg.warmup_jobs = 5000;
    add_row("M/M/1", rho, pe::models::mm1(rho, 1.0),
            pe::sim::simulate_mmc(cfg));
  }

  for (unsigned c : {2u, 4u}) {
    const double rho = 0.8;
    pe::sim::QueueSimConfig cfg;
    cfg.arrival_rate = rho * c;
    cfg.service_rate = 1.0;
    cfg.servers = c;
    cfg.jobs = 200000;
    cfg.warmup_jobs = 5000;
    add_row(c == 2 ? "M/M/2" : "M/M/4", rho,
            pe::models::mmc(rho * c, 1.0, c), pe::sim::simulate_mmc(cfg));
  }

  {
    // M/D/1: deterministic service, scv = 0.
    const double rho = 0.7;
    pe::sim::QueueSimConfig cfg;
    cfg.arrival_rate = rho;
    cfg.service_rate = 1.0;
    cfg.jobs = 200000;
    cfg.warmup_jobs = 5000;
    add_row("M/D/1", rho, pe::models::mg1(rho, 1.0, 0.0),
            pe::sim::simulate_mgc(cfg, [](pe::Rng&) { return 1.0; }));
  }

  std::fputs(t.render().c_str(), stdout);

  std::puts("\nLittle's law and the interactive response-time law:");
  const auto m = pe::models::mm1(0.7, 1.0);
  std::printf("  M/M/1 rho=0.7: L = lambda*W = %.3f (model L = %.3f)\n",
              pe::models::littles_law_occupancy(0.7, m.mean_response),
              m.mean_in_system);
  std::printf("  20 users, X=2 req/s, Z=5 s think time -> R = %.1f s\n",
              pe::models::interactive_response_time(20.0, 2.0, 5.0));
  std::puts(
      "\nExpected shape (paper): simulation matches the closed forms "
      "within sampling\nerror at every rho; waits explode as rho -> 1; "
      "M/D/1 waits are half of M/M/1.");

  if (!json_path.empty()) {
    report.add_scalar("littles_law.occupancy", "jobs",
                      pe::models::littles_law_occupancy(0.7,
                                                        m.mean_response));
    report.add_scalar("interactive.response_s", "s",
                      pe::models::interactive_response_time(20.0, 2.0, 5.0));
    report.save_file(json_path);
    std::printf("\nsnapshot written to %s\n", json_path.c_str());
  }
  return 0;
}
