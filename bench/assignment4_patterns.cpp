// Assignment 4: performance counters and performance patterns.
//
// Runs the synthetic pattern kernels in broken and fixed form, collects
// wall-clock A/B timings plus simulated counter data, and feeds both to
// the pattern detectors — producing the hypothesis-evidence-verdict
// table the assignment asks students to write by hand.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/counters/patterns.hpp"
#include "perfeng/counters/simulated_counters.hpp"
#include "perfeng/kernels/pattern_kernels.hpp"
#include "perfeng/kernels/traces.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/measure/timer.hpp"

using namespace pe::counters;

namespace {

pe::sim::CacheHierarchy sim_hierarchy() {
  std::vector<pe::sim::LevelSpec> specs;
  specs.push_back({pe::sim::CacheConfig{"L1", 8 * 1024, 64, 8}, 4.0});
  specs.push_back({pe::sim::CacheConfig{"L2", 64 * 1024, 64, 8}, 12.0});
  return pe::sim::CacheHierarchy(std::move(specs), 200.0);
}

void print_report(pe::Table& t, const char* kernel, const char* variant,
                  const PatternReport& r) {
  t.add_row({kernel, variant, pattern_name(r.pattern),
             r.detected ? "DETECTED" : "clear",
             pe::format_fixed(r.severity, 2), r.evidence});
}

}  // namespace

int main() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  cfg.min_batch_seconds = 2e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("== Assignment 4: performance patterns from counter data ==\n");
  pe::Table t({"kernel", "variant", "pattern", "verdict", "severity",
               "evidence"});

  // ---- strided access (simulated cache counters) ----
  {
    auto h = sim_hierarchy();
    const std::size_t elements = 1 << 15;
    const auto broken = collect(h, [&] {
      pe::kernels::trace_strided(h, elements, 16);
    });
    const auto fixed = collect(h, [&] {
      pe::kernels::trace_strided(h, elements, 1);
    });
    print_report(t, "strided sweep", "stride 16",
                 detect_bad_spatial_locality(broken));
    print_report(t, "strided sweep", "stride 1 (fix)",
                 detect_bad_spatial_locality(fixed));
  }

  // ---- branch-heavy code (simulated predictor + wall clock) ----
  {
    pe::Rng rng(4);
    const auto random = pe::kernels::random_doubles(1 << 16, rng);
    const auto sorted = pe::kernels::sorted_doubles(1 << 16, rng);
    pe::sim::BranchPredictor pred_random, pred_sorted;
    pe::kernels::trace_branchy(pred_random, random, 0.5);
    pe::kernels::trace_branchy(pred_sorted, sorted, 0.5);
    print_report(
        t, "branchy sum", "random data",
        detect_branch_unpredictability(from_branches(pred_random.stats())));
    print_report(
        t, "branchy sum", "sorted data (fix)",
        detect_branch_unpredictability(from_branches(pred_sorted.stats())));

    const auto t_random = runner.run("branchy random", [&] {
      pe::do_not_optimize(pe::kernels::branchy_sum(random, 0.5));
    });
    const auto t_sorted = runner.run("branchy sorted", [&] {
      pe::do_not_optimize(pe::kernels::branchy_sum(sorted, 0.5));
    });
    std::printf("wall clock: branchy over random %s vs sorted %s (%.2fx)\n",
                pe::format_time(t_random.typical()).c_str(),
                pe::format_time(t_sorted.typical()).c_str(),
                t_random.typical() / t_sorted.typical());
  }

  // ---- load imbalance (per-worker busy times) ----
  {
    const std::size_t tasks = 2000, workers = 4;
    // Analytic per-worker busy time for triangular work under static
    // blocks vs the dynamic ideal.
    std::vector<double> static_times(workers, 0.0);
    const std::size_t block = (tasks + workers - 1) / workers;
    double total = 0.0;
    for (std::size_t i = 0; i < tasks; ++i) total += double(i);
    for (std::size_t w = 0; w < workers; ++w)
      for (std::size_t i = w * block;
           i < std::min(tasks, (w + 1) * block); ++i)
        static_times[w] += double(i);
    const std::vector<double> dynamic_times(workers, total / workers);
    print_report(t, "triangular loop", "static schedule",
                 detect_load_imbalance(static_times));
    print_report(t, "triangular loop", "dynamic schedule (fix)",
                 detect_load_imbalance(dynamic_times));
  }

  // ---- false sharing (wall-clock A/B on the thread pool) ----
  {
    pe::ThreadPool pool;
    const std::uint64_t iters = 200000;
    const auto shared = runner.run("false sharing", [&] {
      pe::do_not_optimize(pe::kernels::false_sharing_counters(pool, iters));
    });
    const auto padded = runner.run("padded", [&] {
      pe::do_not_optimize(pe::kernels::padded_counters(pool, iters));
    });
    print_report(t, "counter increment", "shared line vs padded",
                 detect_false_sharing(shared.typical(), padded.typical()));
  }

  std::fputs(t.render().c_str(), stdout);
  std::puts(
      "\nExpected shape (paper): each seeded pattern is DETECTED in the "
      "broken variant\nand clear after the documented fix. (False sharing "
      "needs >1 hardware thread to\nmanifest in wall-clock time.)");
  return 0;
}
