// Assignment 2: analytical modeling and microbenchmarking.
//
// Builds matmul models at three granularities (coarse FLOP-count,
// Roofline-style traffic, instruction-level from a measured op-cost
// table), calibrates them with microbenchmarks, and compares predictions
// against measurements. The histogram kernel adds the data-dependent
// behaviour (uniform vs Zipf-skewed bins) the assignment is designed
// around.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/histogram.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/measure/metrics.hpp"
#include "perfeng/microbench/machine_probe.hpp"
#include "perfeng/microbench/op_costs.hpp"
#include "perfeng/models/analytical.hpp"

using pe::models::Calibration;
using pe::models::MatmulModel;
using pe::models::MatmulVariant;

int main() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  cfg.min_batch_seconds = 5e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("== Assignment 2: analytical models + microbenchmark "
            "calibration ==\n");

  pe::microbench::ProbeConfig probe;
  probe.stream_elements = 1 << 21;
  probe.latency_max_bytes = 1 << 22;
  const pe::machine::Machine desc =
      pe::microbench::resolve_or_probe(runner, probe);
  const auto ops = pe::microbench::OpCostTable::measure(runner);
  std::printf("machine: %s\n", desc.summary().c_str());
  std::printf("calibration: %s  (override with %s=<preset|file>)\n",
              desc.calibration_hash().c_str(), pe::machine::kMachineEnv);

  pe::Table op_table({"op", "latency", "throughput"});
  for (const auto& [op, cost] : ops.entries()) {
    op_table.add_row({pe::microbench::op_name(op),
                      pe::format_time(cost.latency_seconds),
                      pe::format_time(cost.throughput_seconds)});
  }
  std::puts("\nMeasured per-operation cost table (Agner-Fog stand-in):");
  std::fputs(op_table.render().c_str(), stdout);

  const Calibration calib = Calibration::from_machine(desc);

  // ----- matmul at three granularities -----
  pe::Table mm({"n", "variant", "measured", "coarse", "traffic",
                "instr-level", "best model err %"});
  for (std::size_t n : {128u, 256u}) {
    pe::kernels::Matrix a(n, n), b(n, n), c(n, n);
    pe::Rng rng(n);
    a.randomize(rng);
    b.randomize(rng);

    struct Row {
      MatmulVariant variant;
      const char* name;
      std::function<void()> kernel;
    };
    const Row rows[] = {
        {MatmulVariant::kNaiveIjk, "ijk",
         [&] { pe::kernels::matmul_naive(a, b, c); }},
        {MatmulVariant::kInterchangedIkj, "ikj",
         [&] { pe::kernels::matmul_interchanged(a, b, c); }},
        {MatmulVariant::kTiled, "tiled",
         [&] { pe::kernels::matmul_tiled(a, b, c, 64); }},
    };
    for (const auto& row : rows) {
      const MatmulModel model(n, row.variant, calib);
      const auto m = runner.run(row.name, row.kernel);
      const double measured = m.typical();
      const double coarse = model.predict_coarse();
      const double traffic = model.predict_traffic();
      const double instr = model.predict_instruction(ops);
      double best_err = 1e99;
      for (double p : {coarse, traffic, instr}) {
        best_err = std::min(best_err,
                            std::abs(pe::relative_error(p, measured)));
      }
      mm.add_row({std::to_string(n), row.name, pe::format_time(measured),
                  pe::format_time(coarse), pe::format_time(traffic),
                  pe::format_time(instr),
                  pe::format_fixed(best_err * 100.0, 1)});
    }
  }
  std::puts("\nMatmul: measured vs three model granularities:");
  std::fputs(mm.render().c_str(), stdout);

  // ----- histogram: data-dependent behaviour -----
  pe::Table hist({"bins", "distribution", "measured", "model",
                  "model miss prob"});
  const std::size_t elements = 1 << 22;
  pe::Rng rng(7);
  for (std::size_t bins : {1u << 10, 1u << 22}) {
    for (double skew : {0.0, 1.2}) {
      const auto idx =
          skew == 0.0
              ? pe::kernels::generate_uniform_indices(elements, bins, rng)
              : pe::kernels::generate_zipf_indices(elements, bins, skew,
                                                   rng);
      std::vector<std::uint64_t> counts(bins, 0);
      const auto m = runner.run("histogram", [&] {
        std::fill(counts.begin(), counts.end(), 0);
        pe::kernels::histogram_serial(idx, counts);
      });
      const pe::models::HistogramModel model(elements, bins, skew, calib);
      hist.add_row({std::to_string(bins),
                    skew == 0.0 ? "uniform" : "zipf(1.2)",
                    pe::format_time(m.typical()),
                    pe::format_time(model.predict_traffic()),
                    pe::format_fixed(model.update_miss_probability(), 3)});
    }
  }
  std::puts("\nHistogram: the data-dependent kernel:");
  std::fputs(hist.render().c_str(), stdout);
  std::puts(
      "\nExpected shape (paper): finer-granularity models track the "
      "variants more closely\nthan the coarse model; skewed bins run "
      "faster than uniform on large tables, and\nonly the model with the "
      "data-dependent miss term explains it.");
  return 0;
}
