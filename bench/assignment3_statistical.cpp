// Assignment 3: statistical performance modeling of SpMV.
//
// Generates a corpus of sparse matrices (three structures x sizes x
// densities), measures CSR/CSC/COO SpMV, trains statistical models
// (OLS/ridge, kNN, random forest) on matrix features, and validates
// prediction accuracy on held-out configurations — against the
// analytical model as the explainable baseline.
#include <cstdio>
#include <memory>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/sparse.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/measure/metrics.hpp"
#include "perfeng/models/analytical.hpp"
#include "perfeng/statmodel/knn.hpp"
#include "perfeng/statmodel/linear.hpp"
#include "perfeng/statmodel/tree.hpp"
#include "perfeng/statmodel/validation.hpp"

using pe::kernels::SparsityPattern;

int main() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 3;
  cfg.min_batch_seconds = 1e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("== Assignment 3: statistical modeling of SpMV ==\n");
  std::puts("Collecting training data (CSR SpMV over a synthetic corpus)...");

  pe::Rng rng(2023);
  pe::statmodel::Dataset data(pe::kernels::sparse_feature_names());
  pe::Table corpus({"pattern", "n", "density", "nnz", "median time"});

  for (const auto pattern :
       {SparsityPattern::kUniform, SparsityPattern::kBanded,
        SparsityPattern::kPowerLaw}) {
    for (std::size_t n : {500u, 1000u, 2000u}) {
      for (double density : {0.002, 0.005, 0.01, 0.02}) {
        const auto coo =
            pe::kernels::generate_sparse(n, n, density, pattern, rng);
        const auto csr = pe::kernels::coo_to_csr(coo);
        std::vector<double> x(n, 1.0), y(n);
        const auto m = runner.run("spmv", [&] {
          pe::kernels::spmv_csr(csr, x, y);
        });
        data.add_row(pe::kernels::sparse_features(csr), m.typical());
        corpus.add_row({pe::kernels::pattern_name(pattern),
                        std::to_string(n), pe::format_sig(density, 2),
                        std::to_string(csr.nnz()),
                        pe::format_time(m.typical())});
      }
    }
  }
  std::fputs(corpus.render().c_str(), stdout);

  data.shuffle(rng);
  const auto split = data.train_test_split(0.25);
  const auto standardizer = split.train.fit_standardizer();
  const auto train = split.train.standardized(standardizer);
  const auto test = split.test.standardized(standardizer);

  pe::Table results({"model", "MAPE %", "RMSE", "R^2"});
  auto eval_model = [&](pe::statmodel::Regressor& model) {
    const auto r = pe::statmodel::evaluate(model, train, test);
    results.add_row({model.describe(),
                     pe::format_fixed(r.mape * 100.0, 1),
                     pe::format_sig(r.rmse, 3), pe::format_fixed(r.r2, 3)});
  };
  pe::statmodel::LinearRegression ridge(1e-6);
  pe::statmodel::KnnRegressor knn(3);
  pe::statmodel::RandomForestRegressor forest(48);
  eval_model(ridge);
  eval_model(knn);
  eval_model(forest);

  // Analytical baseline on the same (unstandardized) test rows.
  {
    pe::models::Calibration calib;  // defaults: explainable but uncalibrated
    std::vector<double> predicted, observed;
    for (std::size_t i = 0; i < split.test.rows(); ++i) {
      const auto& f = split.test.row(i);
      const pe::models::SpmvModel model(
          static_cast<std::size_t>(f[0]), static_cast<std::size_t>(f[1]),
          static_cast<std::size_t>(f[2]), pe::models::SpmvFormat::kCsr,
          0.5, calib);
      predicted.push_back(model.predict());
      observed.push_back(split.test.target(i));
    }
    results.add_row({"analytical (uncalibrated)",
                     pe::format_fixed(pe::mape(predicted, observed) * 100.0,
                                      1),
                     pe::format_sig(pe::rmse(predicted, observed), 3),
                     pe::format_fixed(pe::r_squared(predicted, observed),
                                      3)});
  }

  std::puts("\nHeld-out prediction accuracy (25% test split):");
  std::fputs(results.render().c_str(), stdout);
  std::puts(
      "\nExpected shape (paper): black-box statistical models predict "
      "well inside the\ntraining envelope; the analytical model is "
      "explainable but needs calibration to\ncompete — the "
      "interpretability-vs-accuracy contrast the assignment showcases.");
  return 0;
}
