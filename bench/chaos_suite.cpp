// Robustness topic: a chaos campaign over the measurement toolbox — the
// same fault-injection discipline production systems use, applied to a
// benchmark suite. Demonstrates (1) seeded, reproducible fault plans,
// (2) graceful suite degradation with partial scores, (3) the watchdog
// aborting a runaway calibration, and (4) the counter collector falling
// back to its simulated backend when the hardware path faults.
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

#include "perfeng/common/error.hpp"
#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/counters/collector.hpp"
#include "perfeng/kernels/fft.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/kernels/stencil.hpp"
#include "perfeng/measure/suite.hpp"
#include "perfeng/resilience/fault_injection.hpp"
#include "perfeng/resilience/measurement_error.hpp"

namespace {

pe::BenchmarkSuite build_suite(pe::kernels::Matrix& a, pe::kernels::Matrix& b,
                               pe::kernels::Matrix& c,
                               pe::kernels::Grid2D& grid,
                               pe::kernels::Grid2D& out,
                               std::vector<pe::kernels::Complex>& signal) {
  pe::BenchmarkSuite suite("perfeng-chaos");
  suite.add({"matmul-96",
             [&] { pe::kernels::matmul_interchanged(a, b, c); }, 1e-3});
  suite.add({"stencil-192",
             [&] { pe::kernels::stencil_step_naive(grid, out); }, 1e-4});
  suite.add({"fft-2048",
             [&] { pe::do_not_optimize(pe::kernels::fft(signal)); }, 2e-4});
  return suite;
}

void report(const pe::SuiteScore& score) {
  pe::Table t({"benchmark", "outcome", "detail"});
  for (const auto& r : score.results)
    t.add_row({r.name, "ok",
               pe::format_time(r.seconds) + " (ratio " +
                   pe::format_fixed(r.ratio, 2) + ")"});
  for (const auto& f : score.failed) t.add_row({f.name, "FAILED", f.error});
  std::fputs(t.render().c_str(), stdout);
  std::printf("partial geometric mean over %zu survivor(s): %.2f%s\n",
              score.results.size(), score.geometric_mean_ratio,
              score.complete() ? "" : "  [INCOMPLETE]");
}

}  // namespace

int main() {
  std::puts("== Chaos campaign over the measurement toolbox ==\n");

  // ---- 0. the fault-site catalog ----
  // A chaos plan is only as trustworthy as its spelling: a typo'd site
  // would silently inject nothing. FaultInjector therefore rejects
  // unknown sites up front, and `known_sites()` is the introspection that
  // keeps this enumeration honest (it includes any sites registered at
  // runtime via pe::register_fault_site).
  std::puts("-- injectable fault sites (FaultInjector::known_sites) --");
  {
    pe::Table sites({"site"});
    for (const std::string_view site :
         pe::resilience::FaultInjector::known_sites())
      sites.add_row({std::string(site)});
    std::fputs(sites.render().c_str(), stdout);
    pe::resilience::FaultPlan typo;
    typo.faults.push_back({.site = "kernel.cal"});  // note the typo
    try {
      const pe::resilience::FaultInjector reject{std::move(typo)};
      std::puts("unexpected: a typo'd site was accepted");
    } catch (const pe::Error& e) {
      std::printf("typo'd plan rejected as designed:\n  %s\n\n", e.what());
    }
  }

  const std::size_t n = 96;
  pe::kernels::Matrix a(n, n), b(n, n), c(n, n);
  pe::Rng rng(1);
  a.randomize(rng);
  b.randomize(rng);
  pe::kernels::Grid2D grid(192, 192, 1.0), out(192, 192);
  std::vector<pe::kernels::Complex> signal(1 << 11);
  for (auto& v : signal)
    v = {rng.next_range_double(-1, 1), rng.next_range_double(-1, 1)};
  auto suite = build_suite(a, b, c, grid, out, signal);

  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  cfg.min_batch_seconds = 1e-3;
  const pe::BenchmarkRunner runner(cfg);

  // ---- 1. seeded fault campaign, run twice ----
  std::puts("-- kernel.call faults, p=0.5, seed 2026 (run twice) --");
  for (int run = 1; run <= 2; ++run) {
    pe::resilience::FaultPlan plan;
    plan.seed = 2026;
    plan.faults.push_back(
        {.site = std::string(pe::fault_sites::kKernelCall),
         .probability = 0.5,
         .max_fires = 1,
         .message = "injected kernel fault (chaos plan, seed 2026)"});
    pe::resilience::ScopedFaultInjection scope(std::move(plan));
    std::printf("run %d:\n", run);
    report(suite.run(runner));
  }
  std::puts(
      "same seed, same failure set — chaos campaigns are reproducible.\n");

  // ---- 2. watchdog vs a runaway calibration ----
  std::puts("-- watchdog: min_batch_seconds unreachable under deadline --");
  pe::MeasurementConfig strangled = cfg;
  strangled.min_batch_seconds = 60.0;  // would calibrate for a minute
  strangled.deadline_seconds = 0.25;
  try {
    (void)pe::BenchmarkRunner(strangled).run("runaway-calibration", [&] {
      pe::kernels::matmul_interchanged(a, b, c);
    });
    std::puts("unexpected: measurement completed");
  } catch (const pe::resilience::MeasurementError& e) {
    std::printf("aborted as designed: %s\n\n", e.what());
  }

  // ---- 3. counter collection degrading to the simulated backend ----
  std::puts("-- counters.read fault: collector degrades, not dies --");
  const pe::counters::CounterCollector collector;
  pe::resilience::FaultPlan counter_plan;
  counter_plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kCountersRead),
       .message = "injected counter-backend fault"});
  pe::resilience::ScopedFaultInjection counter_scope(
      std::move(counter_plan));
  const auto collected = collector.collect(
      [&] { pe::kernels::matmul_interchanged(a, b, c); });
  std::printf("backend: %s%s\n", collected.backend.c_str(),
              collected.degraded ? "  [degraded]" : "");
  if (!collected.note.empty())
    std::printf("reason:  %s\n", collected.note.c_str());
  std::printf("cycles (synthesized): %llu\n",
              static_cast<unsigned long long>(
                  collected.counters.get(pe::counters::kCycles)));

  std::puts(
      "\nExpected shape: both chaos runs fail the identical member set; the "
      "watchdog\nreturns a structured timeout instead of hanging; counter "
      "collection reports\na degraded simulated estimate instead of "
      "crashing the campaign.");
  return 0;
}
