// Polyhedral-model topic: dependence analysis and transformation
// legality for the course's canonical loop nests — the table the
// lecture's blackboard derivation produces, computed.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/poly/dependence.hpp"

using namespace pe::poly;

namespace {

std::string vec_to_string(const std::vector<long>& v) {
  std::string s = "(";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(v[i]);
  }
  return s + ")";
}

std::string dir_to_string(const std::vector<int>& v) {
  std::string s = "(";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) s += ",";
    s += v[i] > 0 ? "+" : (v[i] < 0 ? "-" : "0");
  }
  return s + ")";
}

void print_nest(const char* name, const LoopNest& nest) {
  std::printf("--- %s ---\n", name);
  pe::Table deps({"array", "kind", "direction", "min distance",
                  "uniform"});
  for (const Dependence& d : nest.analyze()) {
    deps.add_row({d.array, dep_kind_name(d.kind), dir_to_string(d.direction),
                  vec_to_string(d.distance), d.uniform ? "yes" : "no"});
  }
  if (deps.rows() == 0) {
    std::puts("no dependences (fully parallel nest)");
  } else {
    std::fputs(deps.render().c_str(), stdout);
  }
  std::printf("tilable as written: %s\n\n",
              nest.tilable() ? "yes" : "no");
}

}  // namespace

int main() {
  std::puts("== Polyhedral-lite: dependences and legal transformations "
            "==\n");
  print_nest("matmul (i,j,k)", LoopNest::matmul(4));
  print_nest("jacobi-2d (separate in/out)", LoopNest::jacobi2d(6));
  print_nest("seidel-2d (in-place, 9-point)", LoopNest::seidel2d(6));

  const LoopNest matmul = LoopNest::matmul(4);
  pe::Table perms({"matmul permutation", "legal"});
  const std::vector<std::vector<std::size_t>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  const char* names[] = {"ijk", "ikj", "jik", "jki", "kij", "kji"};
  for (std::size_t i = 0; i < orders.size(); ++i) {
    perms.add_row({names[i],
                   matmul.interchange_legal(orders[i]) ? "yes" : "no"});
  }
  std::fputs(perms.render().c_str(), stdout);

  const LoopNest seidel = LoopNest::seidel2d(6);
  std::puts("\nseidel-2d transformations:");
  pe::Table transforms({"transform", "legal", "makes tilable"});
  const std::vector<std::pair<const char*, std::vector<std::vector<long>>>>
      candidates = {
          {"identity", {{1, 0}, {0, 1}}},
          {"interchange (j,i)", {{0, 1}, {1, 0}}},
          {"skew (i, i+j)", {{1, 0}, {1, 1}}},
          {"reverse outer", {{-1, 0}, {0, 1}}},
      };
  for (const auto& [name, t] : candidates) {
    const bool legal = seidel.transform_legal(t);
    transforms.add_row({name, legal ? "yes" : "no",
                        legal && seidel.transform_makes_tilable(t)
                            ? "yes"
                            : "no"});
  }
  std::fputs(transforms.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: matmul is fully permutable (all six orders "
      "legal); jacobi is\ndependence-free; seidel needs the classic skew "
      "before it can be tiled.");
  return 0;
}
