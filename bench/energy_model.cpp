// Energy-efficiency extension (the paper's future-work topic 2): energy
// models applied to the matmul optimization ladder — does the faster
// version also save energy, and where do the joules go?
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/counters/simulated_counters.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/kernels/traces.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/models/energy.hpp"

using namespace pe::models;

int main() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("== Energy models over the matmul ladder ==\n");
  const pe::machine::Machine desc =
      pe::machine::resolve_or_preset("laptop-x86");
  const PowerModel power = PowerModel::from_machine(desc);
  std::printf("machine: %s (%.0f W idle + %.0f W dynamic)  [override with "
              "%s]\n\n",
              desc.name.c_str(), power.static_watts,
              power.peak_dynamic_watts, pe::machine::kMachineEnv);

  const std::size_t n = 192;
  pe::kernels::Matrix a(n, n), b(n, n), c(n, n);
  pe::Rng rng(1);
  a.randomize(rng);
  b.randomize(rng);
  const double flops = pe::kernels::matmul_flops(n, n, n);

  struct Row {
    const char* name;
    std::function<void()> kernel;
    pe::kernels::TraceVariant trace;
  };
  const Row rows[] = {
      {"ijk", [&] { pe::kernels::matmul_naive(a, b, c); },
       pe::kernels::TraceVariant::kNaiveIjk},
      {"ikj", [&] { pe::kernels::matmul_interchanged(a, b, c); },
       pe::kernels::TraceVariant::kInterchangedIkj},
      {"tiled", [&] { pe::kernels::matmul_tiled(a, b, c, 32); },
       pe::kernels::TraceVariant::kTiled},
  };

  pe::Table t({"variant", "time", "power energy (J)", "MFLOP/J", "EDP",
               "event energy (J, simulated)"});
  double baseline_seconds = 0.0;
  auto hierarchy = [] {
    std::vector<pe::sim::LevelSpec> specs;
    specs.push_back({pe::sim::CacheConfig{"L1", 2 * 1024, 64, 8}, 4.0});
    specs.push_back({pe::sim::CacheConfig{"L2", 64 * 1024, 64, 8}, 12.0});
    return pe::sim::CacheHierarchy(std::move(specs), 200.0);
  }();

  const EventEnergyModel events;
  for (const auto& row : rows) {
    const auto m = runner.run(row.name, row.kernel);
    if (baseline_seconds == 0.0) baseline_seconds = m.typical();
    const auto report =
        report_from_power(power, m.typical(), 1.0, flops);

    // Event attribution from a scaled-down trace (n=48) of the same loop
    // structure, scaled up by the work ratio.
    const std::size_t trace_n = 48;
    const auto counters = pe::counters::collect(hierarchy, [&] {
      pe::kernels::trace_matmul(hierarchy, trace_n, row.trace, 8);
    });
    const double scale = flops / pe::kernels::matmul_flops(
                                     trace_n, trace_n, trace_n);
    const double event_joules = events.energy(counters) * scale;

    t.add_row({row.name, pe::format_time(report.seconds),
               pe::format_fixed(report.joules, 3),
               pe::format_fixed(report.flops_per_joule() / 1e6, 1),
               pe::format_sig(report.energy_delay_product(), 3),
               pe::format_sig(event_joules, 3)});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nRace-to-idle: the ikj variant uses %.2fx of the baseline energy "
      "under the\nutilization-linear power model (faster always wins when "
      "the machine idles after).\n",
      race_to_idle_ratio(power, baseline_seconds, 1.0,
                         baseline_seconds / 2.0, 1.0));
  std::puts(
      "\nExpected shape: energy-to-solution tracks runtime under a "
      "static-dominated\npower model, while event attribution shows the "
      "naive variant spending its extra\njoules on DRAM traffic.");
  return 0;
}
