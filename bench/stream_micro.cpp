// STREAM microbenchmark suite (McCalpin) as a google-benchmark binary:
// sustainable memory bandwidth across the four kernels and a working-set
// sweep that exposes the cache hierarchy.
#include <benchmark/benchmark.h>

#include "perfeng/common/aligned_buffer.hpp"
#include "perfeng/measure/timer.hpp"

namespace {

void copy_kernel(const double* a, double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) b[i] = a[i];
}
void scale_kernel(const double* a, double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) b[i] = 3.0 * a[i];
}
void add_kernel(const double* a, const double* b, double* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
}
void triad_kernel(const double* a, const double* b, double* c,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + 3.0 * b[i];
}

struct Buffers {
  explicit Buffers(std::size_t n) : a(n), b(n), c(n) {
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = 1.0;
      b[i] = 2.0;
    }
  }
  pe::AlignedBuffer<double> a, b, c;
};

void bm_copy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Buffers buf(n);
  for (auto _ : state) {
    copy_kernel(buf.a.data(), buf.b.data(), n);
    pe::do_not_optimize(buf.b[0]);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 16);
}

void bm_scale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Buffers buf(n);
  for (auto _ : state) {
    scale_kernel(buf.a.data(), buf.b.data(), n);
    pe::do_not_optimize(buf.b[0]);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 16);
}

void bm_add(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Buffers buf(n);
  for (auto _ : state) {
    add_kernel(buf.a.data(), buf.b.data(), buf.c.data(), n);
    pe::do_not_optimize(buf.c[0]);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 24);
}

void bm_triad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Buffers buf(n);
  for (auto _ : state) {
    triad_kernel(buf.a.data(), buf.b.data(), buf.c.data(), n);
    pe::do_not_optimize(buf.c[0]);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * n * 24);
}

// Working-set sweep from L1-resident (4 K doubles) to DRAM (4 M doubles).
BENCHMARK(bm_copy)->RangeMultiplier(8)->Range(1 << 12, 1 << 22);
BENCHMARK(bm_scale)->RangeMultiplier(8)->Range(1 << 12, 1 << 22);
BENCHMARK(bm_add)->RangeMultiplier(8)->Range(1 << 12, 1 << 22);
BENCHMARK(bm_triad)->RangeMultiplier(8)->Range(1 << 12, 1 << 22);

}  // namespace

BENCHMARK_MAIN();
