// STREAM microbenchmark suite (McCalpin) over the pe::simd layer: the
// four kernels at a cache-resident and a DRAM-resident working set, each
// measured both through the explicit Vec<double, N> path the library
// ships (perfeng/microbench/stream_kernels.hpp) and through a
// deliberately unvectorized scalar baseline.
//
// The interesting number is the vector/scalar ratio per kernel. At
// cache-resident sizes the explicit SIMD path should win outright on an
// AVX2 build; at DRAM sizes both paths converge on the memory roof (the
// lesson: vectorization moves the compute ceiling, not the bandwidth
// ceiling). `--check` fails when the vectorized path is materially slower
// than scalar anywhere — the "never slower via the generic backend"
// guarantee. `--json <path>` writes the pe-bench-v1 snapshot checked in
// at bench/snapshots/BENCH_stream.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "perfeng/common/aligned_buffer.hpp"
#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/bench_json.hpp"
#include "perfeng/measure/timer.hpp"
#include "perfeng/microbench/stream.hpp"
#include "perfeng/microbench/stream_kernels.hpp"
#include "perfeng/simd/caps.hpp"
#include "perfeng/simd/vec.hpp"

namespace {

// Scalar baselines pinned to scalar codegen: the whole project builds
// with -mavx2, so without the attribute GCC would auto-vectorize these
// loops and the comparison would measure nothing.
__attribute__((optimize("no-tree-vectorize,no-tree-slp-vectorize"))) void
scalar_copy(const double* a, double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) b[i] = a[i];
}
__attribute__((optimize("no-tree-vectorize,no-tree-slp-vectorize"))) void
scalar_scale(const double* a, double* b, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) b[i] = s * a[i];
}
__attribute__((optimize("no-tree-vectorize,no-tree-slp-vectorize"))) void
scalar_add(const double* a, const double* b, double* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
}
__attribute__((optimize("no-tree-vectorize,no-tree-slp-vectorize"))) void
scalar_triad(const double* a, const double* b, double* c, double s,
             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + s * b[i];
}

struct KernelPair {
  const char* name;
  std::size_t bytes_per_elem;
  void (*vec)(const double*, const double*, double*, double, std::size_t);
  void (*scalar)(const double*, const double*, double*, double,
                 std::size_t);
};

void vec_copy_w(const double* a, const double*, double* c, double,
                std::size_t n) {
  pe::microbench::stream_copy(a, c, n);
}
void vec_scale_w(const double* a, const double*, double* c, double s,
                 std::size_t n) {
  pe::microbench::stream_scale(a, c, s, n);
}
void vec_add_w(const double* a, const double* b, double* c, double,
               std::size_t n) {
  pe::microbench::stream_add(a, b, c, n);
}
void vec_triad_w(const double* a, const double* b, double* c, double s,
                 std::size_t n) {
  pe::microbench::stream_triad(a, b, c, s, n);
}
void sc_copy_w(const double* a, const double*, double* c, double,
               std::size_t n) {
  scalar_copy(a, c, n);
}
void sc_scale_w(const double* a, const double*, double* c, double s,
                std::size_t n) {
  scalar_scale(a, c, s, n);
}
void sc_add_w(const double* a, const double* b, double* c, double,
              std::size_t n) {
  scalar_add(a, b, c, n);
}
void sc_triad_w(const double* a, const double* b, double* c, double s,
                std::size_t n) {
  scalar_triad(a, b, c, s, n);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  cfg.min_batch_seconds = 2e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::printf("== STREAM: pe::simd vector path vs scalar baseline ==\n");
  std::printf("compiled backend: %s, host: %s\n\n",
              pe::simd::compiled_backend_name(),
              pe::simd::runtime_simd_caps().summary().c_str());

  const KernelPair kernels[] = {
      {"Copy", 16, vec_copy_w, sc_copy_w},
      {"Scale", 16, vec_scale_w, sc_scale_w},
      {"Add", 24, vec_add_w, sc_add_w},
      {"Triad", 24, vec_triad_w, sc_triad_w},
  };
  // L1-resident (vectorization-bound) and DRAM-resident (bandwidth-bound).
  const std::size_t sizes[] = {std::size_t{1} << 12, std::size_t{1} << 22};

  pe::Table table(
      {"kernel", "N", "scalar GB/s", "vector GB/s", "vec/scalar"});
  pe::BenchReport report("stream_micro");
  report.set_context("simd_width_bits",
                     static_cast<double>(pe::simd::compiled_width_bits()));
  double worst_ratio = 0.0;
  std::string worst_label;

  for (const std::size_t n : sizes) {
    pe::AlignedBuffer<double> a(n), b(n), c(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = 1.0;
      b[i] = 2.0;
      c[i] = 0.0;
    }
    for (const KernelPair& k : kernels) {
      const std::string label =
          std::string(k.name) + "/" + std::to_string(n);
      const auto vec_m = runner.run("vec " + label, [&] {
        k.vec(a.data(), b.data(), c.data(), 3.0, n);
        pe::do_not_optimize(c.data()[0]);
      });
      const auto sc_m = runner.run("scalar " + label, [&] {
        k.scalar(a.data(), b.data(), c.data(), 3.0, n);
        pe::do_not_optimize(c.data()[0]);
      });
      const double bytes =
          static_cast<double>(n) * static_cast<double>(k.bytes_per_elem);
      // Ratio of medians: vectorized time over scalar time (< 1 = faster).
      const double ratio = vec_m.typical() / sc_m.typical();
      if (ratio > worst_ratio) {
        worst_ratio = ratio;
        worst_label = label;
      }
      table.add_row({std::string(k.name), std::to_string(n),
                     pe::format_sig(bytes / sc_m.typical() / 1e9, 3),
                     pe::format_sig(bytes / vec_m.typical() / 1e9, 3),
                     pe::format_fixed(ratio, 3)});
      report.add_metric("vec_" + label, "s", vec_m.seconds);
      report.add_metric("scalar_" + label, "s", sc_m.seconds);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  report.add_scalar("worst_vec_over_scalar", "ratio", worst_ratio);

  if (!json_path.empty()) {
    const pe::machine::Machine m =
        pe::machine::resolve_or_preset("laptop-x86");
    report.set_machine(m);
    try {
      report.save_file(json_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot write '%s': %s\n", json_path.c_str(),
                   e.what());
      return 2;
    }
    std::printf("\nsnapshot written to %s\n", json_path.c_str());
  }

  if (check) {
    // The explicit-SIMD path must never be materially slower than the
    // scalar baseline — on the generic backend both compile to comparable
    // loops, on AVX2 the vector path should win; 1.15 absorbs CI noise.
    if (!(worst_ratio <= 1.15)) {
      std::printf("\nCHECK FAILED: %s vec/scalar = %.3f > 1.15\n",
                  worst_label.c_str(), worst_ratio);
      return 1;
    }
    std::printf("\nCHECK OK: worst vec/scalar = %.3f (%s) <= 1.15\n",
                worst_ratio, worst_label.c_str());
  }
  return 0;
}
