// Regenerates Figure 1 of the paper: students enrolled, passing, and
// evaluation respondents per course year (DATA-1 / SW-2 equivalent).
#include <cstdio>

#include "perfeng/course/data.hpp"
#include "perfeng/course/tables.hpp"

int main() {
  std::puts("== Figure 1: course enrollment history (paper data) ==\n");
  std::fputs(pe::course::figure1_table().render().c_str(), stdout);
  std::puts("");
  std::fputs(pe::course::figure1_ascii().c_str(), stdout);
  std::puts("");
  std::puts("students.csv (DATA-1):");
  std::fputs(pe::course::students_csv().c_str(), stdout);
  std::printf(
      "\nPaper totals: %d enrolled, %d passing, %d evaluation "
      "respondents; evaluations for 2019 and 2022 unavailable.\n",
      pe::course::kTotalEnrolled, pe::course::kTotalPassing,
      pe::course::kTotalRespondents);
  return 0;
}
