// Scale-out topic: measured thread-pool scaling against Amdahl,
// Gustafson, and a fitted Universal Scalability Law curve.
//
// On a single-core host the measured curve is flat (speedup ~1): the
// model table still demonstrates the laws, and the USL fit correctly
// reports a large contention term — a result, not a failure (Lesson 5).
//
// `--json <path>` writes a pe-bench-v1 BenchReport snapshot (full
// per-repetition sample distributions, not just the medians the table
// shows) for bench/snapshots/.
#include <cstdio>
#include <cstring>
#include <string>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/stencil.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/bench_json.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/models/scaling.hpp"

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];

  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 3;
  cfg.min_batch_seconds = 2e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("== Scaling laws: Amdahl / Gustafson / USL ==\n");

  // Model table: what the laws predict for a 5% serial fraction.
  pe::Table model({"p", "Amdahl (f=0.05)", "Gustafson (f=0.05)",
                   "USL (s=0.05,k=0.002)"});
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    model.add_row({pe::format_fixed(p, 0),
                   pe::format_fixed(pe::models::amdahl_speedup(0.05, p), 2),
                   pe::format_fixed(pe::models::gustafson_speedup(0.05, p),
                                    2),
                   pe::format_fixed(
                       pe::models::usl_speedup(0.05, 0.002, p), 2)});
  }
  std::fputs(model.render().c_str(), stdout);
  std::printf("Amdahl limit at f=0.05: %.1fx; USL peak at %.1f workers\n\n",
              pe::models::amdahl_limit(0.05),
              pe::models::usl_peak_workers(0.05, 0.002));

  // Measured: parallel stencil across pool sizes.
  const std::size_t rows = 512, cols = 512;
  pe::kernels::Grid2D grid(rows, cols, 1.0), out(rows, cols);
  std::vector<double> workers, speedups;
  std::vector<pe::Measurement> runs;
  double baseline = 0.0;
  pe::Table measured({"pool threads", "median time", "speedup",
                      "efficiency %", "Karp-Flatt serial frac"});
  const std::size_t hw = pe::ThreadPool::default_thread_count();
  for (std::size_t p = 1; p <= std::max<std::size_t>(4, hw); p *= 2) {
    pe::ThreadPool pool(p);
    const auto m = runner.run("stencil", [&] {
      pe::kernels::stencil_step_parallel(grid, out, pool);
    });
    if (baseline == 0.0) baseline = m.typical();
    const double speedup = baseline / m.typical();
    workers.push_back(double(p));
    speedups.push_back(speedup);
    runs.push_back(m);
    measured.add_row(
        {std::to_string(p), pe::format_time(m.typical()),
         pe::format_fixed(speedup, 2),
         pe::format_fixed(speedup / double(p) * 100.0, 1),
         p > 1 ? pe::format_fixed(
                     pe::models::karp_flatt(speedup, double(p)), 3)
               : std::string("-")});
  }
  std::printf("Measured stencil scaling (host has %zu hardware threads):\n",
              hw);
  std::fputs(measured.render().c_str(), stdout);

  pe::models::UslFit fit{};
  const bool fitted = workers.size() >= 3;
  if (fitted) {
    fit = pe::models::fit_usl(workers, speedups);
    std::printf(
        "\nUSL fit to the measured curve: sigma=%.3f kappa=%.4f "
        "(R^2=%.3f)\n -> predicted peak at %.1f workers\n",
        fit.sigma, fit.kappa, fit.r2,
        pe::models::usl_peak_workers(fit.sigma, fit.kappa));
  }
  std::puts(
      "\nExpected shape (paper): speedup saturates by Amdahl; USL's "
      "contention/coherence\nterms explain retrograde scaling that Amdahl "
      "cannot.");

  if (!json_path.empty()) {
    pe::BenchReport report("scaling_laws");
    report.set_machine(pe::machine::resolve_or_preset("laptop-x86"));
    report.set_context("hardware_threads", double(hw));
    report.set_context("grid_rows", double(rows));
    report.set_context("grid_cols", double(cols));
    report.set_context("repetitions", double(cfg.repetitions));
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const std::string prefix =
          "stencil.p" + std::to_string(std::size_t(workers[i]));
      report.add_metric(prefix + ".seconds", "s", runs[i].seconds);
      report.add_scalar(prefix + ".speedup", "x", speedups[i]);
    }
    report.add_scalar("model.amdahl_limit_f005", "x",
                      pe::models::amdahl_limit(0.05));
    if (fitted) {
      report.add_scalar("usl_fit.sigma", "frac", fit.sigma);
      report.add_scalar("usl_fit.kappa", "frac", fit.kappa);
      report.add_scalar("usl_fit.r2", "frac", fit.r2);
      report.add_scalar("usl_fit.peak_workers", "workers",
                        pe::models::usl_peak_workers(fit.sigma, fit.kappa));
    }
    report.save_file(json_path);
    std::printf("\nsnapshot written to %s\n", json_path.c_str());
  }
  return 0;
}
