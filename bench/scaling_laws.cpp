// Scale-out topic: measured thread-pool scaling against Amdahl,
// Gustafson, and a fitted Universal Scalability Law curve.
//
// On a single-core host the measured curve is flat (speedup ~1): the
// model table still demonstrates the laws, and the USL fit correctly
// reports a large contention term — a result, not a failure (Lesson 5).
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/stencil.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/models/scaling.hpp"

int main() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 3;
  cfg.min_batch_seconds = 2e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("== Scaling laws: Amdahl / Gustafson / USL ==\n");

  // Model table: what the laws predict for a 5% serial fraction.
  pe::Table model({"p", "Amdahl (f=0.05)", "Gustafson (f=0.05)",
                   "USL (s=0.05,k=0.002)"});
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    model.add_row({pe::format_fixed(p, 0),
                   pe::format_fixed(pe::models::amdahl_speedup(0.05, p), 2),
                   pe::format_fixed(pe::models::gustafson_speedup(0.05, p),
                                    2),
                   pe::format_fixed(
                       pe::models::usl_speedup(0.05, 0.002, p), 2)});
  }
  std::fputs(model.render().c_str(), stdout);
  std::printf("Amdahl limit at f=0.05: %.1fx; USL peak at %.1f workers\n\n",
              pe::models::amdahl_limit(0.05),
              pe::models::usl_peak_workers(0.05, 0.002));

  // Measured: parallel stencil across pool sizes.
  const std::size_t rows = 512, cols = 512;
  pe::kernels::Grid2D grid(rows, cols, 1.0), out(rows, cols);
  std::vector<double> workers, speedups;
  double baseline = 0.0;
  pe::Table measured({"pool threads", "median time", "speedup",
                      "efficiency %", "Karp-Flatt serial frac"});
  const std::size_t hw = pe::ThreadPool::default_thread_count();
  for (std::size_t p = 1; p <= std::max<std::size_t>(4, hw); p *= 2) {
    pe::ThreadPool pool(p);
    const auto m = runner.run("stencil", [&] {
      pe::kernels::stencil_step_parallel(grid, out, pool);
    });
    if (baseline == 0.0) baseline = m.typical();
    const double speedup = baseline / m.typical();
    workers.push_back(double(p));
    speedups.push_back(speedup);
    measured.add_row(
        {std::to_string(p), pe::format_time(m.typical()),
         pe::format_fixed(speedup, 2),
         pe::format_fixed(speedup / double(p) * 100.0, 1),
         p > 1 ? pe::format_fixed(
                     pe::models::karp_flatt(speedup, double(p)), 3)
               : std::string("-")});
  }
  std::printf("Measured stencil scaling (host has %zu hardware threads):\n",
              hw);
  std::fputs(measured.render().c_str(), stdout);

  if (workers.size() >= 3) {
    const auto fit = pe::models::fit_usl(workers, speedups);
    std::printf(
        "\nUSL fit to the measured curve: sigma=%.3f kappa=%.4f "
        "(R^2=%.3f)\n -> predicted peak at %.1f workers\n",
        fit.sigma, fit.kappa, fit.r2,
        pe::models::usl_peak_workers(fit.sigma, fit.kappa));
  }
  std::puts(
      "\nExpected shape (paper): speedup saturates by Amdahl; USL's "
      "contention/coherence\nterms explain retrograde scaling that Amdahl "
      "cannot.");
  return 0;
}
