// The matmul optimization ladder (docs/kernels.md): naive -> interchanged
// -> tiled -> parallel -> parallel+packed, the canonical Assignment 2
// progression, with the packed microkernel now running on the explicit
// pe::simd vector layer.
//
// `--check` verifies both rungs of the claim: the packed path agrees with
// the naive reference (documented-ULP envelope: the 4x8 microkernel
// reassociates each dot product into 8 partial sums and fuses
// multiply-adds when the backend has FMA) and it is decisively faster
// than naive at the largest size. `--json <path>` writes the pe-bench-v1
// snapshot checked in at bench/snapshots/BENCH_matmul.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "perfeng/common/rng.hpp"
#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/bench_json.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/measure/timer.hpp"
#include "perfeng/parallel/thread_pool.hpp"
#include "perfeng/simd/vec.hpp"

int main(int argc, char** argv) {
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  cfg.min_batch_seconds = 2e-3;
  const pe::BenchmarkRunner runner(cfg);

  const pe::machine::Machine machine =
      pe::machine::resolve_or_preset("laptop-x86");
  const auto blocking = pe::kernels::MatmulBlocking::from_machine(machine);
  pe::ThreadPool pool;

  std::printf("== Matmul ladder (backend: %s, pool: %zu workers) ==\n\n",
              pe::simd::compiled_backend_name(), pool.size());

  pe::Table table({"variant", "N", "GFLOP/s", "vs naive"});
  pe::BenchReport report("matmul_variants");
  report.set_machine(machine);
  report.set_context("pool_threads", static_cast<double>(pool.size()));
  report.set_context(
      "simd_width_bits",
      static_cast<double>(pe::simd::compiled_width_bits()));

  double check_naive_s = 0.0, check_packed_s = 0.0;
  double worst_diff = 0.0;
  std::size_t check_n = 0;

  for (const std::size_t n : {std::size_t{128}, std::size_t{256}}) {
    pe::kernels::Matrix a(n, n), b(n, n), c(n, n), ref(n, n);
    pe::Rng rng(42);
    a.randomize(rng);
    b.randomize(rng);
    pe::kernels::matmul_naive(a, b, ref);
    const double flops = pe::kernels::matmul_flops(n, n, n);

    struct Variant {
      const char* name;
      std::function<void()> body;
    };
    const Variant variants[] = {
        {"naive", [&] { pe::kernels::matmul_naive(a, b, c); }},
        {"interchanged",
         [&] { pe::kernels::matmul_interchanged(a, b, c); }},
        {"tiled", [&] { pe::kernels::matmul_tiled(a, b, c, 64); }},
        {"parallel",
         [&] { pe::kernels::matmul_parallel(a, b, c, pool, 64); }},
        {"packed",
         [&] {
           pe::kernels::matmul_parallel_packed(a, b, c, pool, blocking);
         }},
    };

    double naive_seconds = 0.0;
    for (const Variant& v : variants) {
      const std::string label =
          std::string(v.name) + "/" + std::to_string(n);
      const auto m = runner.run(label, [&] {
        v.body();
        pe::do_not_optimize(c(0, 0));
      });
      // Every rung must agree with the naive reference. The packed rung
      // reassociates each dot product into 8 partial sums and (with FMA)
      // fuses, so the envelope is ULP-level, not bit-level.
      v.body();
      worst_diff = std::max(worst_diff, c.max_abs_diff(ref));
      if (std::strcmp(v.name, "naive") == 0) naive_seconds = m.typical();
      table.add_row({std::string(v.name), std::to_string(n),
                     pe::format_sig(flops / m.typical() / 1e9, 3),
                     pe::format_fixed(naive_seconds / m.typical(), 2) +
                         "x"});
      report.add_metric(label, "s", m.seconds);
      if (n == 256) {
        check_n = n;
        if (std::strcmp(v.name, "naive") == 0) check_naive_s = m.typical();
        if (std::strcmp(v.name, "packed") == 0)
          check_packed_s = m.typical();
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);

  const double speedup = check_naive_s / check_packed_s;
  std::printf(
      "\npacked vs naive at N=%zu: %.2fx, worst |diff| vs naive: %.3e\n",
      check_n, speedup, worst_diff);
  report.add_scalar("packed_speedup_vs_naive", "ratio", speedup);
  report.add_scalar("worst_abs_diff_vs_naive", "1", worst_diff);

  if (!json_path.empty()) {
    try {
      report.save_file(json_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot write '%s': %s\n", json_path.c_str(),
                   e.what());
      return 2;
    }
    std::printf("snapshot written to %s\n", json_path.c_str());
  }

  if (check) {
    // ULP envelope: inputs in [-1,1], dot length 256 -> reassociation
    // error ~1e-14; 1e-10 leaves margin yet catches any packing or
    // indexing bug outright.
    if (!(worst_diff <= 1e-10)) {
      std::printf("CHECK FAILED: |ladder - naive| = %.3e > 1e-10\n",
                  worst_diff);
      return 1;
    }
    // The packed+SIMD path must beat naive decisively even on one core;
    // 1.4x is far below what AVX2 delivers but above scheduling noise.
    if (!(speedup >= 1.4)) {
      std::printf("CHECK FAILED: packed speedup %.2fx < 1.4x\n", speedup);
      return 1;
    }
    std::printf(
        "CHECK OK: packed %.2fx faster, diff %.3e within envelope\n",
        speedup, worst_diff);
  }
  return 0;
}
