// Matmul optimization ladder as a google-benchmark binary: naive ijk,
// interchanged ikj, tiled, thread-pool-parallel, and the packed
// register-blocked microkernel, across sizes. The ladder is the raw
// material of Assignment 1's Roofline exercise.
#include <benchmark/benchmark.h>

#include "perfeng/kernels/matmul.hpp"
#include "perfeng/machine/registry.hpp"

namespace {

struct Operands {
  explicit Operands(std::size_t n) : a(n, n), b(n, n), c(n, n) {
    pe::Rng rng(n);
    a.randomize(rng);
    b.randomize(rng);
  }
  pe::kernels::Matrix a, b, c;
};

void set_flops(benchmark::State& state, std::size_t n) {
  state.counters["FLOPS"] = benchmark::Counter(
      pe::kernels::matmul_flops(n, n, n) * double(state.iterations()),
      benchmark::Counter::kIsRate);
}

void bm_matmul_naive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Operands op(n);
  for (auto _ : state) {
    pe::kernels::matmul_naive(op.a, op.b, op.c);
    benchmark::DoNotOptimize(op.c.data());
  }
  set_flops(state, n);
}

void bm_matmul_interchanged(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Operands op(n);
  for (auto _ : state) {
    pe::kernels::matmul_interchanged(op.a, op.b, op.c);
    benchmark::DoNotOptimize(op.c.data());
  }
  set_flops(state, n);
}

void bm_matmul_tiled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Operands op(n);
  for (auto _ : state) {
    pe::kernels::matmul_tiled(op.a, op.b, op.c, 64);
    benchmark::DoNotOptimize(op.c.data());
  }
  set_flops(state, n);
}

void bm_matmul_parallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Operands op(n);
  pe::ThreadPool pool;
  for (auto _ : state) {
    pe::kernels::matmul_parallel(op.a, op.b, op.c, pool, 64);
    benchmark::DoNotOptimize(op.c.data());
  }
  set_flops(state, n);
}

void bm_matmul_parallel_packed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Operands op(n);
  pe::ThreadPool pool;
  const auto blocking = pe::kernels::MatmulBlocking::from_machine(
      pe::machine::resolve_or_preset("laptop-x86"));
  for (auto _ : state) {
    pe::kernels::matmul_parallel_packed(op.a, op.b, op.c, pool, blocking);
    benchmark::DoNotOptimize(op.c.data());
  }
  set_flops(state, n);
}

BENCHMARK(bm_matmul_naive)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_matmul_interchanged)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_matmul_tiled)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_matmul_parallel)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_matmul_parallel_packed)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
