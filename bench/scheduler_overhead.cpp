// Scheduler dispatch-overhead experiment: per-task cost of the legacy
// submit/future path vs the bulk parallel_for path, on the work-stealing
// pool (docs/parallel.md).
//
// The interesting number is the *ratio*: absolute dispatch times vary
// wildly across hosts and CI runners, but the bulk path should always be
// several times cheaper than a packaged_task + future per task. `--check`
// exits non-zero when bulk dispatch costs more than half a legacy submit,
// which is the regression guard CI runs; `--json <path>` writes the
// snapshot checked in at bench/snapshots/BENCH_scheduler.json in the
// uniform pe-bench-v1 schema (machine hash + full sample distributions).
#include <cstdio>
#include <cstring>
#include <string>

#include "perfeng/common/table.hpp"
#include "perfeng/machine/machine.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/measure/bench_json.hpp"
#include "perfeng/microbench/scheduler.hpp"

int main(int argc, char** argv) {
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 5;
  cfg.min_batch_seconds = 2e-3;
  const pe::BenchmarkRunner runner(cfg);

  std::puts("== Scheduler dispatch overhead: submit/future vs bulk ==\n");

  const auto probe = pe::microbench::probe_scheduler(runner);
  std::printf("%s\n\n", probe.summary().c_str());

  pe::Table table({"path", "ns per task", "relative"});
  table.add_row({"submit (packaged_task + future)",
                 pe::format_sig(probe.submit_ns, 3), "1.00x"});
  table.add_row({"bulk parallel_for (chunk = 1)",
                 pe::format_sig(probe.bulk_ns, 3),
                 pe::format_fixed(probe.bulk_ns / probe.submit_ns, 3) + "x"});
  std::fputs(table.render().c_str(), stdout);

  // Record the calibration in a machine description so the numbers travel
  // with a provenance hash, the way every other probe result does.
  pe::machine::Machine m = pe::machine::resolve_or_preset("laptop-x86");
  pe::microbench::apply_scheduler_probe(m, probe);
  std::printf("\ncalibration hash (%s + scheduler): %s\n", m.name.c_str(),
              m.calibration_hash().c_str());

  if (!json_path.empty()) {
    pe::BenchReport report("scheduler_overhead");
    report.set_machine(m);
    report.set_context("pool_threads",
                       static_cast<double>(probe.pool_threads));
    report.set_context("tasks_per_batch", static_cast<double>(probe.tasks));
    report.add_metric("submit_ns_per_task", "ns", probe.submit_samples_ns);
    report.add_metric("bulk_ns_per_chunk", "ns", probe.bulk_samples_ns);
    report.add_scalar("bulk_over_submit", "ratio",
                      probe.bulk_ns / probe.submit_ns);
    try {
      report.save_file(json_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot write '%s': %s\n", json_path.c_str(),
                   e.what());
      return 2;
    }
    std::printf("snapshot written to %s\n", json_path.c_str());
  }

  if (check) {
    // Generous threshold: bulk dispatch must cost at most half a legacy
    // submit. Real hosts show far larger gaps; this only catches a bulk
    // path that regressed into per-chunk allocation or lock handoffs.
    const double ratio = probe.bulk_ns / probe.submit_ns;
    if (!(ratio <= 0.5)) {
      std::printf("\nCHECK FAILED: bulk/submit = %.3f > 0.5\n", ratio);
      return 1;
    }
    std::printf("\nCHECK OK: bulk/submit = %.3f <= 0.5\n", ratio);
  }
  return 0;
}
