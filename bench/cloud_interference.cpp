// Shared-systems extension (the paper's future-work topic 3): predicted
// multi-tenant slowdown by kernel intensity, the immunity frontier, and
// model inversion as a noisy-neighbour detector.
#include <cstdio>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/models/interference.hpp"

using pe::models::SharedSystemModel;

int main() {
  std::puts("== Cloud / shared-system interference model ==\n");
  const pe::machine::Machine desc =
      pe::machine::resolve_or_preset("cloud-smt");
  const SharedSystemModel node = SharedSystemModel::from_machine(desc);
  std::printf("machine: %s  [calibration %s; override with %s]\n",
              desc.name.c_str(), desc.calibration_hash().c_str(),
              pe::machine::kMachineEnv);
  std::printf("node: %s per tenant, %s shared; ridge alone at %.2f "
              "FLOP/B\n\n",
              pe::format_flops(node.peak_flops).c_str(),
              pe::format_bandwidth(node.total_bandwidth).c_str(),
              node.immunity_intensity(1));

  // Representative kernels across the intensity axis.
  struct Kernel {
    const char* name;
    double flops;
    double bytes;
  };
  const Kernel kernels[] = {
      {"STREAM triad (AI 0.08)", 2e8, 2.4e9},
      {"SpMV (AI ~0.17)", 2e8, 1.2e9},
      {"stencil (AI ~0.3)", 3e8, 1e9},
      {"FFT (AI ~1.7)", 1.7e9, 1e9},
      {"matmul n=2048 (AI ~170)", 1.7e10, 1e8},
  };

  pe::Table t({"kernel", "x1", "x2 tenants", "x4", "x8", "x16"});
  for (const Kernel& k : kernels) {
    t.add_row({k.name, "1.00",
               pe::format_fixed(node.slowdown(k.flops, k.bytes, 2), 2),
               pe::format_fixed(node.slowdown(k.flops, k.bytes, 4), 2),
               pe::format_fixed(node.slowdown(k.flops, k.bytes, 8), 2),
               pe::format_fixed(node.slowdown(k.flops, k.bytes, 16), 2)});
  }
  std::puts("Predicted slowdown by co-runner count:");
  std::fputs(t.render().c_str(), stdout);

  pe::Table frontier({"tenants", "immunity intensity (FLOP/B)"});
  for (unsigned tenants : {1u, 2u, 4u, 8u, 16u, 32u}) {
    frontier.add_row({std::to_string(tenants),
                      pe::format_fixed(node.immunity_intensity(tenants),
                                       2)});
  }
  std::puts("\nImmunity frontier (kernels above it never notice "
            "neighbours):");
  std::fputs(frontier.render().c_str(), stdout);

  std::puts("\nNoisy-neighbour detection: observed STREAM slowdowns "
            "inverted to tenant counts:");
  for (double observed : {1.0, 2.1, 3.9, 7.8}) {
    std::printf("  slowdown %.1fx -> ~%u tenant(s)\n", observed,
                node.estimate_tenants(2e8, 2.4e9, observed));
  }
  std::puts(
      "\nExpected shape: memory-bound kernels degrade linearly with "
      "tenants while\ncompute-bound ones are immune — why cloud noisy "
      "neighbours hurt STREAM-like\nworkloads first, and why a streaming "
      "canary detects them.");
  return 0;
}
