// Benchmark-as-a-service load experiment: drive `pe::service` with a
// seeded synthetic multi-tenant arrival stream and validate its behaviour
// against the course's own queuing theory (perfeng/models) and
// discrete-event simulator (perfeng/sim).
//
// Three campaigns:
//   1. underload (rho ~ 0.5): nothing sheds; the measured queue wait is
//      compared against the M/M/c closed form and `simulate_mmc`. The
//      models bound the *queuing* wait; the measured wait also carries
//      the pool's dispatch latency (park/unpark, visible as the traced
//      sched p99), so agreement within a small factor — not equality —
//      is the claim, and the trace explains the gap.
//   2. overload (rho ~ 2, tiny queue): the service answers with explicit
//      backpressure; the accepted throughput saturates at c*mu, so the
//      shed fraction converges on 1 - 1/rho. `models::mmc` refuses
//      rho >= 1 (steady state does not exist), which is exactly why the
//      bound is computed by hand here.
//   3. chaos: injected faults at every service fault site plus a bounded
//      kernel-fault budget, impossible deadlines on a third of the work,
//      and a small key space (coalescing + cache under fire).
//
// Every campaign runs under a `pe::observe` scheduler trace and asserts
// the service's terminal-state ledger: every submission resolves, and
//   submitted == admitted + coalesced + cache_hits + shed_at_admission
//   admitted  == completed + failed + shed_deadline + shed_shutdown
//
// `--check` is the CI gate: smaller campaigns, non-zero exit if any
// ledger identity breaks, any future is lost, underload sheds, overload
// fails to shed near the predicted fraction, or chaos never completes
// anything.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/models/queuing.hpp"
#include "perfeng/observe/analysis.hpp"
#include "perfeng/observe/tracer.hpp"
#include "perfeng/resilience/fault_injection.hpp"
#include "perfeng/service/service.hpp"
#include "perfeng/sim/queue_sim.hpp"

namespace {

using pe::service::BenchmarkService;
using pe::service::ServiceConfig;
using pe::service::ServiceStats;
using pe::service::SubmissionRequest;
using pe::service::SubmitResult;
using pe::service::TerminalState;

int g_violations = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what);
    ++g_violations;
  }
}

/// A kernel that busy-spins for a fixed wall time: the service time is a
/// controlled variable, not a property of some workload.
std::function<void()> spin_kernel(double seconds) {
  return [seconds] {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
}

/// Service tuning shared by every campaign: one repetition, no warmup, a
/// tiny batch floor — the run cost is dominated by the spin kernel, so
/// the per-submission service time is predictable.
ServiceConfig base_config(std::size_t workers, std::size_t queue_capacity) {
  ServiceConfig config;
  config.workers = workers;
  config.queue.capacity = queue_capacity;
  config.queue.tenant_capacity = queue_capacity;  // fairness not under test
  config.measurement.warmup_runs = 0;
  config.measurement.repetitions = 1;
  config.measurement.min_batch_seconds = 1e-5;
  config.calibration_hash = "service-load";
  return config;
}

/// Everything one campaign produced, plus the arrival rate it actually
/// achieved (sleep overshoot makes the offered rate lower than asked;
/// models are fed the measured rate, not the intended one).
struct CampaignResult {
  ServiceStats stats;
  std::size_t resolved = 0;       ///< futures that reached a terminal state
  std::size_t outstanding = 0;    ///< futures that did not (must be 0)
  double lambda_effective = 0.0;  ///< measured arrivals/s
  double mean_wait = 0.0;         ///< mean queue_seconds over completed
  double mean_response = 0.0;     ///< mean queue+run over completed
  double shed_fraction = 0.0;     ///< shed_total / submitted
  pe::observe::TraceSummary sched;  ///< scheduler-trace aggregate
};

struct CampaignConfig {
  ServiceConfig service;
  double arrival_rate = 0.0;    ///< intended lambda (jobs/s)
  std::size_t jobs = 0;
  std::uint64_t seed = 1;
  double kernel_seconds = 0.0;
  std::size_t tenants = 4;
  std::size_t key_space = 0;    ///< 0 = every job a distinct key
  double deadline_seconds = 0.0;
  int deadline_every = 0;       ///< 0 = never; n = every nth job
};

CampaignResult run_campaign(const CampaignConfig& cc) {
  pe::observe::Tracer tracer;
  CampaignResult out;
  std::vector<SubmitResult> results;
  results.reserve(cc.jobs);
  {
    pe::observe::ScopedTrace scope(tracer);
    BenchmarkService service(cc.service);
    pe::Rng rng(cc.seed);
    const auto start = std::chrono::steady_clock::now();
    auto next_arrival = start;
    for (std::size_t i = 0; i < cc.jobs; ++i) {
      // Open-loop Poisson arrivals on an absolute schedule: a slow
      // submission does not delay later arrivals.
      next_arrival += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              rng.next_exponential(cc.arrival_rate)));
      std::this_thread::sleep_until(next_arrival);
      SubmissionRequest request;
      request.tenant = "tenant" + std::to_string(i % cc.tenants);
      request.workload_key =
          "job-" + std::to_string(cc.key_space == 0 ? i : i % cc.key_space);
      request.kernel = spin_kernel(cc.kernel_seconds);
      if (cc.deadline_every > 0 &&
          i % static_cast<std::size_t>(cc.deadline_every) == 0) {
        request.deadline_seconds = cc.deadline_seconds;
      }
      results.push_back(service.submit(std::move(request)));
    }
    const std::chrono::duration<double> span =
        std::chrono::steady_clock::now() - start;
    out.lambda_effective =
        span.count() > 0.0 ? static_cast<double>(cc.jobs) / span.count()
                           : 0.0;

    // Drain: every future must resolve to exactly one terminal state.
    double wait_sum = 0.0, response_sum = 0.0;
    std::size_t completed = 0;
    for (const SubmitResult& r : results) {
      if (!r.outcome.valid()) {
        ++out.outstanding;
        continue;
      }
      const pe::service::Outcome outcome = r.outcome.get();
      ++out.resolved;
      if (outcome.state == TerminalState::kCompleted && r.admitted) {
        wait_sum += outcome.queue_seconds;
        response_sum += outcome.queue_seconds + outcome.run_seconds;
        ++completed;
      }
    }
    if (completed > 0) {
      out.mean_wait = wait_sum / static_cast<double>(completed);
      out.mean_response = response_sum / static_cast<double>(completed);
    }
    out.stats = service.stats();
  }  // trace scope closes with the pool quiesced
  out.shed_fraction =
      out.stats.submitted > 0
          ? static_cast<double>(out.stats.shed_total()) /
                static_cast<double>(out.stats.submitted)
          : 0.0;
  out.sched = pe::observe::summarize(tracer.take());
  return out;
}

/// Assert the terminal-state ledger of one campaign.
void check_ledger(const char* name, const CampaignResult& r) {
  const ServiceStats& s = r.stats;
  std::string label;
  label = std::string(name) + ": outstanding futures";
  check(r.outstanding == 0, label.c_str());
  label = std::string(name) + ": terminal() covers every submission";
  check(s.terminal() == s.submitted, label.c_str());
  label = std::string(name) + ": admission ledger identity";
  check(s.submitted == s.admitted + s.coalesced + s.cache_hits +
                           s.shed_at_admission(),
        label.c_str());
  label = std::string(name) + ": retirement ledger identity";
  check(s.admitted == s.completed + s.failed + s.shed_deadline +
                          s.shed_shutdown_queued,
        label.c_str());
  label = std::string(name) + ": cache never causes extra runs";
  check(s.workloads_run <= s.admitted, label.c_str());
}

void print_stats_row(pe::Table& t, const char* name,
                     const CampaignResult& r) {
  const ServiceStats& s = r.stats;
  t.add_row({name, std::to_string(s.submitted), std::to_string(s.completed),
             std::to_string(s.failed), std::to_string(s.shed_total()),
             std::to_string(s.coalesced + s.cache_hits),
             pe::format_time(r.mean_wait), pe::format_time(r.mean_response),
             pe::format_time(r.sched.latency_p99_ns * 1e-9)});
}

/// Mean service time of one submission, measured on an idle service: the
/// spin kernel plus the runner's calibration overhead. Feeding models a
/// measured mu (instead of the nominal spin time) is the difference
/// between validating the service and validating the sleep loop.
double calibrate_service_seconds(double kernel_seconds) {
  ServiceConfig config = base_config(1, 64);
  BenchmarkService service(config);
  constexpr int kProbes = 20;
  double total = 0.0;
  for (int i = 0; i < kProbes; ++i) {
    SubmissionRequest request;
    request.tenant = "calibrate";
    request.workload_key = "probe-" + std::to_string(i);
    request.kernel = spin_kernel(kernel_seconds);
    total += service.submit(std::move(request)).outcome.get().run_seconds;
  }
  return total / kProbes;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check_mode = true;
    } else {
      std::fprintf(stderr, "usage: %s [--check]\n", argv[0]);
      return 2;
    }
  }

  std::puts("== pe::service under synthetic multi-tenant load ==\n");

  const double kernel_seconds = 300e-6;
  const std::size_t workers = 2;
  const double service_seconds = calibrate_service_seconds(kernel_seconds);
  const double mu = 1.0 / service_seconds;
  std::printf("calibration: service time %s per submission (mu = %.0f/s "
              "per worker, %zu workers)\n\n",
              pe::format_time(service_seconds).c_str(), mu, workers);

  const std::size_t jobs = check_mode ? 200 : 400;
  pe::Table table({"campaign", "submitted", "completed", "failed", "shed",
                   "coalesced+hits", "mean wait", "mean response",
                   "sched p99"});

  // ---- 1. underload: rho ~ 0.5, queue never fills ----
  CampaignConfig under;
  under.service = base_config(workers, 1024);
  under.arrival_rate = 0.5 * static_cast<double>(workers) * mu;
  under.jobs = jobs;
  under.seed = 42;
  under.kernel_seconds = kernel_seconds;
  const CampaignResult u = run_campaign(under);
  print_stats_row(table, "underload", u);
  check_ledger("underload", u);
  check(u.stats.shed_total() == 0, "underload: nothing sheds");

  const double rho_eff =
      u.lambda_effective / (static_cast<double>(workers) * mu);
  std::printf("underload: offered %.0f/s, achieved %.0f/s (rho_eff %.2f)\n",
              under.arrival_rate, u.lambda_effective, rho_eff);
  if (rho_eff < 0.95) {
    // Closed form and simulator at the *measured* arrival rate.
    const pe::models::QueueMetrics model = pe::models::mmc(
        u.lambda_effective, mu, static_cast<unsigned>(workers));
    pe::sim::QueueSimConfig sim_config;
    sim_config.arrival_rate = u.lambda_effective;
    sim_config.service_rate = mu;
    sim_config.servers = static_cast<unsigned>(workers);
    sim_config.jobs = 200000;
    sim_config.seed = 7;
    const pe::sim::QueueSimResult sim = pe::sim::simulate_mmc(sim_config);
    pe::Table waits({"source", "mean wait Wq", "mean response W"});
    waits.add_row({"measured (service)", pe::format_time(u.mean_wait),
                   pe::format_time(u.mean_response)});
    waits.add_row({"M/M/c closed form", pe::format_time(model.mean_wait),
                   pe::format_time(model.mean_response)});
    waits.add_row({"M/M/c simulation", pe::format_time(sim.mean_wait),
                   pe::format_time(sim.mean_response)});
    std::fputs(waits.render().c_str(), stdout);
    std::puts("(the measured wait adds the pool's dispatch latency on top "
              "of pure queuing delay; the traced sched p99 quantifies it)\n");
    // Generous CI bound: the measured wait must be in the model's orbit,
    // not equal to it — scheduler jitter and near-deterministic service
    // both push it around.
    check(u.mean_wait <= model.mean_wait * 20.0 + 10e-3,
          "underload: measured wait within 20x of M/M/c prediction");
    check(u.mean_response >= service_seconds * 0.5,
          "underload: response at least one service time");
  } else {
    std::puts("underload: achieved rate too close to saturation; "
              "skipping model comparison");
  }

  // ---- 2. overload: rho ~ 2, tiny queue, explicit backpressure ----
  CampaignConfig over;
  over.service = base_config(workers, 8);
  over.arrival_rate = 2.0 * static_cast<double>(workers) * mu;
  over.jobs = jobs;
  over.seed = 43;
  over.kernel_seconds = kernel_seconds;
  const CampaignResult o = run_campaign(over);
  print_stats_row(table, "overload", o);
  check_ledger("overload", o);

  const double rho_over =
      o.lambda_effective / (static_cast<double>(workers) * mu);
  // Steady state does not exist at rho >= 1 (models::mmc refuses it); the
  // asymptotic accepted throughput is c*mu, so shed -> 1 - 1/rho.
  const double shed_bound = rho_over > 1.0 ? 1.0 - 1.0 / rho_over : 0.0;
  std::printf("overload: achieved %.0f/s (rho_eff %.2f); model shed "
              "fraction 1 - 1/rho = %.2f, measured %.2f\n\n",
              o.lambda_effective, rho_over, shed_bound, o.shed_fraction);
  check(o.stats.shed_total() > 0, "overload: backpressure engaged");
  // 1 - 1/rho is the fluid *lower* bound (accepted throughput <= c*mu);
  // Poisson burstiness against a tiny queue always sheds somewhat more,
  // so the tolerance is asymmetric.
  check(o.shed_fraction >= shed_bound - 0.10 &&
            o.shed_fraction <= shed_bound + 0.35,
        "overload: shed fraction within [-0.10, +0.35] of 1 - 1/rho");

  // ---- 3. chaos: faults at every service site, deadlines, small keys ----
  {
    pe::resilience::FaultPlan plan;
    plan.seed = 2026;
    plan.faults.push_back(
        {.site = std::string(pe::fault_sites::kServiceAdmit),
         .probability = 0.10});
    plan.faults.push_back(
        {.site = std::string(pe::fault_sites::kServiceDequeue),
         .probability = 0.10});
    plan.faults.push_back(
        {.site = std::string(pe::fault_sites::kServiceCache),
         .probability = 0.25});
    // kernel.call is visited per batch iteration, so bound kernel chaos
    // by fire budget rather than probability (see tests/test_service_chaos).
    plan.faults.push_back(
        {.site = std::string(pe::fault_sites::kKernelCall),
         .probability = 0.02,
         .max_fires = 5});
    pe::resilience::ScopedFaultInjection scope(std::move(plan));

    CampaignConfig chaos;
    chaos.service = base_config(workers, 16);
    chaos.service.breaker.failure_threshold = 8;
    chaos.arrival_rate = 1.2 * static_cast<double>(workers) * mu;
    chaos.jobs = jobs;
    chaos.seed = 44;
    chaos.kernel_seconds = kernel_seconds;
    chaos.key_space = 25;          // coalescing + cache under fire
    chaos.deadline_seconds = 1e-9; // expires in any queue
    chaos.deadline_every = 3;
    const CampaignResult c = run_campaign(chaos);
    print_stats_row(table, "chaos", c);
    check_ledger("chaos", c);
    check(c.stats.completed > 0, "chaos: service still completes work");
    check(c.stats.shed_total() > 0, "chaos: faults and deadlines shed");
  }

  std::fputs(table.render().c_str(), stdout);

  if (check_mode) {
    if (g_violations > 0) {
      std::fprintf(stderr, "\n%d check(s) failed\n", g_violations);
      return 1;
    }
    std::puts("\nall checks passed: no lost submissions, ledger exact, "
              "shed rates within model bounds");
  }
  return g_violations > 0 ? 1 : 0;
}
